"""IR values: the base class, constants, arguments, globals."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ir.types import FloatType, IntType, IRType, ptr

if TYPE_CHECKING:
    from repro.ir.module import Function


class Value:
    """Anything usable as an instruction operand."""

    def __init__(self, type: IRType, name: str = "") -> None:
        self.type = type
        self.name = name

    def ref(self) -> str:
        """How the value is referenced as an operand in printed IR."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    pass


class ConstantInt(Constant):
    def __init__(self, type: IntType, value: int) -> None:
        super().__init__(type)
        self.value = type.wrap(value)

    @property
    def signed_value(self) -> int:
        return self.type.to_signed(self.value)

    def ref(self) -> str:
        if self.type.bits == 1:
            return "true" if self.value else "false"
        return str(self.signed_value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type.bits, self.value))


class ConstantFP(Constant):
    def __init__(self, type: FloatType, value: float) -> None:
        super().__init__(type)
        import struct

        if type.bits == 32:
            # Round-trip through single precision.
            value = struct.unpack("f", struct.pack("f", value))[0]
        self.value = value

    def ref(self) -> str:
        return f"{self.value:e}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantFP)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type.bits, self.value))


class ConstantPointerNull(Constant):
    def __init__(self) -> None:
        super().__init__(ptr)

    def ref(self) -> str:
        return "null"


class UndefValue(Constant):
    def __init__(self, type: IRType) -> None:
        super().__init__(type)

    def ref(self) -> str:
        return "undef"


class Argument(Value):
    """A formal function parameter."""

    def __init__(self, type: IRType, name: str, index: int) -> None:
        super().__init__(type, name)
        self.index = index


class GlobalValue(Value):
    """Named module-level entity; referenced as ``@name``."""

    def __init__(self, type: IRType, name: str) -> None:
        super().__init__(type, name)

    def ref(self) -> str:
        return f"@{self.name}"


class GlobalVariable(GlobalValue):
    """A module global; its value is the *address*, hence type ``ptr``."""

    def __init__(
        self,
        name: str,
        value_type: IRType,
        initializer: Optional[Constant] = None,
        is_constant: bool = False,
    ) -> None:
        super().__init__(ptr, name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant
        #: raw bytes initializer for string/array data (examples use it)
        self.initializer_bytes: bytes | None = None


def const_int(type: IntType, value: int) -> ConstantInt:
    return ConstantInt(type, value)


def const_fp(type: FloatType, value: float) -> ConstantFP:
    return ConstantFP(type, value)
