"""Textual IR printer (``.ll``-style).

Output is fully deterministic for a given module: functions, globals and
blocks print in their (stable) insertion order, value names come from
per-function counters, and metadata nodes are numbered *locally* in
first-reference order (``!0``, ``!1``, ...) rather than by their
process-global creation id.  Local numbering is what makes two prints of
structurally identical modules byte-equal even when unrelated metadata
was created in between — the property ``-print-changed`` diffs and
snapshot tests rely on.
"""

from __future__ import annotations

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.metadata import MDNode
from repro.ir.module import BasicBlock, Function, Module


class ModulePrinter:
    def __init__(self) -> None:
        #: referenced metadata nodes, in first-reference order; the list
        #: index is the node's local print id
        self._md_nodes: list[MDNode] = []
        self._md_ids: dict[int, int] = {}  # id(node) -> local id

    # ------------------------------------------------------------------
    def print_module(self, module: Module) -> str:
        lines: list[str] = [f"; ModuleID = '{module.name}'", ""]
        for gv in module.globals.values():
            init = "zeroinitializer"
            if gv.initializer is not None:
                init = gv.initializer.ref()
            elif gv.initializer_bytes is not None:
                escaped = "".join(
                    chr(b) if 32 <= b < 127 and b not in (34, 92)
                    else f"\\{b:02X}"
                    for b in gv.initializer_bytes
                )
                init = f'c"{escaped}"'
            kind = "constant" if gv.is_constant else "global"
            lines.append(
                f"@{gv.name} = {kind} {gv.value_type} {init}"
            )
        if module.globals:
            lines.append("")
        for fn in module.functions.values():
            if fn.is_declaration:
                lines.append(self._print_declaration(fn))
        lines.append("")
        for fn in module.functions.values():
            if not fn.is_declaration and fn.blocks:
                lines.append(self.print_function(fn))
                lines.append("")
        # _md_body may discover further nodes; iterate the growing list.
        i = 0
        while i < len(self._md_nodes):
            lines.append(f"!{i} = {self._md_body(self._md_nodes[i])}")
            i += 1
        return "\n".join(lines)

    def _print_declaration(self, fn: Function) -> str:
        params = ", ".join(str(p) for p in fn.fn_type.params)
        if fn.fn_type.is_variadic:
            params = f"{params}, ..." if params else "..."
        return f"declare {fn.return_type} @{fn.name}({params})"

    def print_function(self, fn: Function) -> str:
        params = ", ".join(
            f"{arg.type} %{arg.name}" for arg in fn.args
        )
        lines = [f"define {fn.return_type} @{fn.name}({params}) {{"]
        for block in fn.blocks:
            preds = ", ".join(
                f"%{p.name}" for p in block.predecessors()
            )
            header = f"{block.name}:"
            if preds:
                header = f"{header:50s}; preds = {preds}"
            lines.append(header)
            for inst in block.instructions:
                lines.append(f"  {self.print_instruction(inst)}")
        lines.append("}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _md_ref(self, node: MDNode) -> str:
        local = self._md_ids.get(id(node))
        if local is None:
            local = len(self._md_nodes)
            self._md_ids[id(node)] = local
            self._md_nodes.append(node)
            for op in node.operands:
                if isinstance(op, MDNode) and op is not node:
                    self._md_ref(op)
        return f"!{local}"

    def _md_body(self, node: MDNode) -> str:
        parts = []
        for op in node.operands:
            if op is None:
                parts.append("null")
            elif isinstance(op, MDNode):
                parts.append(self._md_ref(op))
            elif isinstance(op, int):
                parts.append(f"i32 {op}")
            else:
                parts.append(str(op))
        prefix = "distinct " if node.distinct else ""
        return prefix + "!{" + ", ".join(parts) + "}"

    def _metadata_suffix(self, inst: Instruction) -> str:
        if not inst.metadata:
            return ""
        parts = [
            f"!{key} {self._md_ref(node)}"
            for key, node in inst.metadata.items()
        ]
        return ", " + ", ".join(parts)

    # ------------------------------------------------------------------
    def print_instruction(self, inst: Instruction) -> str:
        md = self._metadata_suffix(inst)
        if isinstance(inst, BinaryInst):
            return (
                f"%{inst.name} = {inst.op.value} {inst.lhs.type} "
                f"{inst.lhs.ref()}, {inst.rhs.ref()}{md}"
            )
        if isinstance(inst, ICmpInst):
            return (
                f"%{inst.name} = icmp {inst.pred.value} "
                f"{inst.lhs.type} {inst.lhs.ref()}, {inst.rhs.ref()}{md}"
            )
        if isinstance(inst, FCmpInst):
            return (
                f"%{inst.name} = fcmp {inst.pred.value} "
                f"{inst.lhs.type} {inst.lhs.ref()}, {inst.rhs.ref()}{md}"
            )
        if isinstance(inst, CastInst):
            return (
                f"%{inst.name} = {inst.op.value} {inst.value.type} "
                f"{inst.value.ref()} to {inst.type}{md}"
            )
        if isinstance(inst, AllocaInst):
            size = (
                f", {inst.array_size.type} {inst.array_size.ref()}"
                if inst.array_size is not None
                else ""
            )
            return f"%{inst.name} = alloca {inst.allocated_type}{size}{md}"
        if isinstance(inst, LoadInst):
            return (
                f"%{inst.name} = load {inst.type}, ptr "
                f"{inst.pointer.ref()}{md}"
            )
        if isinstance(inst, StoreInst):
            return (
                f"store {inst.value.type} {inst.value.ref()}, ptr "
                f"{inst.pointer.ref()}{md}"
            )
        if isinstance(inst, GEPInst):
            indices = ", ".join(
                f"{idx.type} {idx.ref()}" for idx in inst.indices
            )
            return (
                f"%{inst.name} = getelementptr {inst.element_type}, "
                f"ptr {inst.pointer.ref()}, {indices}{md}"
            )
        if isinstance(inst, BranchInst):
            return f"br label %{inst.target.name}{md}"
        if isinstance(inst, CondBranchInst):
            return (
                f"br i1 {inst.condition.ref()}, "
                f"label %{inst.true_block.name}, "
                f"label %{inst.false_block.name}{md}"
            )
        if isinstance(inst, SwitchInst):
            cases = " ".join(
                f"i64 {value}, label %{block.name}"
                for value, block in inst.cases
            )
            return (
                f"switch {inst.condition.type} {inst.condition.ref()}, "
                f"label %{inst.default.name} [ {cases} ]{md}"
            )
        if isinstance(inst, ReturnInst):
            if inst.value is None:
                return f"ret void{md}"
            return f"ret {inst.value.type} {inst.value.ref()}{md}"
        if isinstance(inst, UnreachableInst):
            return f"unreachable{md}"
        if isinstance(inst, PhiInst):
            incoming = ", ".join(
                f"[ {value.ref()}, %{block.name} ]"
                for value, block in inst.incoming
            )
            return f"%{inst.name} = phi {inst.type} {incoming}{md}"
        if isinstance(inst, SelectInst):
            return (
                f"%{inst.name} = select i1 {inst.condition.ref()}, "
                f"{inst.true_value.type} {inst.true_value.ref()}, "
                f"{inst.false_value.type} {inst.false_value.ref()}{md}"
            )
        if isinstance(inst, CallInst):
            args = ", ".join(
                f"{a.type} {a.ref()}" for a in inst.args
            )
            callee = inst.callee.ref()
            if inst.type.is_void:
                return f"call void {callee}({args}){md}"
            return (
                f"%{inst.name} = call {inst.type} {callee}({args}){md}"
            )
        raise NotImplementedError(type(inst).__name__)


def print_module(module: Module) -> str:
    return ModulePrinter().print_module(module)


def print_function(fn: Function) -> str:
    return ModulePrinter().print_function(fn)
