"""IR surgery utilities shared by the OpenMPIRBuilder and mid-end passes."""

from __future__ import annotations

from repro.ir.instructions import Instruction, PhiInst
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Value


def replace_all_uses(fn: Function, old: Value, new: Value) -> int:
    """Replace every operand use of *old* with *new* in *fn*.

    Returns the number of instructions updated.  (Our IR keeps no use
    lists; a full scan is O(instructions), fine at this scale.)
    """
    count = 0
    for inst in fn.instructions():
        if inst is new:
            continue
        if any(op is old for op in inst.operands()):
            inst.replace_operand(old, new)
            count += 1
    return count


def reachable_blocks(fn: Function) -> set[int]:
    """ids of blocks reachable from the entry block."""
    if not fn.blocks:
        return set()
    seen: set[int] = set()
    stack = [fn.entry_block]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        stack.extend(block.successors())
    return seen


def remove_unreachable_blocks(fn: Function) -> int:
    """Delete blocks not reachable from entry; fix up phis of survivors.

    Returns the number of blocks removed.
    """
    reachable = reachable_blocks(fn)
    dead = [b for b in fn.blocks if id(b) not in reachable]
    if not dead:
        return 0
    dead_ids = {id(b) for b in dead}
    for block in fn.blocks:
        if id(block) not in reachable:
            continue
        for phi in block.phis():
            phi.incoming = [
                (v, b) for v, b in phi.incoming if id(b) not in dead_ids
            ]
    for block in dead:
        fn.remove_block(block)
    return len(dead)


def redirect_branch(
    block: BasicBlock, old_target: BasicBlock, new_target: BasicBlock
) -> bool:
    """Retarget *block*'s terminator edges from *old_target* to
    *new_target*; updates phis in both targets.  Returns whether any edge
    changed."""
    term = block.terminator
    if term is None:
        return False
    changed = False
    from repro.ir.instructions import (
        BranchInst,
        CondBranchInst,
        SwitchInst,
    )

    if isinstance(term, BranchInst) and term.target is old_target:
        term.target = new_target
        changed = True
    elif isinstance(term, CondBranchInst):
        if term.true_block is old_target:
            term.true_block = new_target
            changed = True
        if term.false_block is old_target:
            term.false_block = new_target
            changed = True
    elif isinstance(term, SwitchInst):
        if term.default is old_target:
            term.default = new_target
            changed = True
        new_cases = []
        for value, target in term.cases:
            if target is old_target:
                target = new_target
                changed = True
            new_cases.append((value, target))
        term.cases = new_cases
    if changed:
        for phi in old_target.phis():
            phi.incoming = [
                (v, b) for v, b in phi.incoming if b is not block
            ]
        for phi in new_target.phis():
            # The caller is responsible for adding correct incoming
            # values for the new edge when the target has phis.
            pass
    return changed


def split_block_before(
    fn: Function, inst: Instruction, name: str = "split"
) -> BasicBlock:
    """Split *inst*'s block before *inst*; the new block receives *inst*
    and everything after it.  The original block gets an unconditional
    branch to the new block.  Returns the new block."""
    from repro.ir.instructions import BranchInst

    block = inst.parent
    assert block is not None and block.parent is fn
    idx = block.instructions.index(inst)
    new_block = fn.append_block(name, after=block)
    moved = block.instructions[idx:]
    del block.instructions[idx:]
    for m in moved:
        new_block.append(m)
    br = BranchInst(new_block)
    block.append(br)
    # Phis in successors that referenced `block` must now reference the
    # new block (it owns the terminator that reaches them).
    for succ in new_block.successors():
        for phi in succ.phis():
            phi.replace_incoming_block(block, new_block)
    return new_block
