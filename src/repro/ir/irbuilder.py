"""The IRBuilder (paper §1.3).

Offers convenience functions to create any instruction, inserts them after
the previously inserted instruction, and simplifies expressions on the fly
— constant folding "avoids creating instructions that would later be
optimized away anyway".  The OpenMPIRBuilder (:mod:`repro.ompirbuilder`)
builds on top of it.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BinOp,
    BranchInst,
    CallInst,
    CastInst,
    CastOp,
    CondBranchInst,
    FCmpInst,
    FCmpPred,
    GEPInst,
    ICmpInst,
    ICmpPred,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    FloatType,
    FunctionType,
    IntType,
    IRType,
    i1,
    ptr,
    void_t,
)
from repro.ir.values import (
    Constant,
    ConstantFP,
    ConstantInt,
    ConstantPointerNull,
    UndefValue,
    Value,
)


class InsertPoint:
    """A (block, index) position; index == len(instructions) is 'end'."""

    def __init__(self, block: BasicBlock | None, index: int = -1) -> None:
        self.block = block
        self.index = index

    @classmethod
    def at_end(cls, block: BasicBlock) -> "InsertPoint":
        return cls(block, len(block.instructions))

    @classmethod
    def before_terminator(cls, block: BasicBlock) -> "InsertPoint":
        if block.terminator is not None:
            return cls(block, len(block.instructions) - 1)
        return cls.at_end(block)


class IRBuilder:
    def __init__(self, module: Module) -> None:
        self.module = module
        self._block: BasicBlock | None = None
        self._index = 0
        #: optional hook invoked on every inserted instruction (clang's
        #: IRBuilder "offers a callback interface that can make
        #: modifications on just inserted instructions")
        self.insertion_callback: Optional[
            Callable[[Instruction], None]
        ] = None
        self.folding_enabled = True

    # ==================================================================
    # Insertion point management
    # ==================================================================
    def set_insert_point(
        self, block: BasicBlock, index: int | None = None
    ) -> None:
        self._block = block
        self._index = (
            len(block.instructions) if index is None else index
        )

    def set_insert_point_before(self, inst: Instruction) -> None:
        assert inst.parent is not None
        self._block = inst.parent
        self._index = inst.parent.instructions.index(inst)

    def save_ip(self) -> InsertPoint:
        return InsertPoint(self._block, self._index)

    def restore_ip(self, ip: InsertPoint) -> None:
        self._block = ip.block
        self._index = ip.index

    @property
    def insert_block(self) -> BasicBlock | None:
        return self._block

    @property
    def current_function(self) -> Function | None:
        return self._block.parent if self._block is not None else None

    def _insert(self, inst: Instruction) -> Instruction:
        assert self._block is not None, "no insertion point set"
        name_base = inst.name
        if name_base and self._block.parent is not None:
            inst.name = self._block.parent.unique_name(name_base)
        self._block.insert(self._index, inst)
        self._index += 1
        if self.insertion_callback is not None:
            self.insertion_callback(inst)
        return inst

    # ==================================================================
    # Constants
    # ==================================================================
    def const_int(self, type: IntType, value: int) -> ConstantInt:
        return ConstantInt(type, value)

    def const_fp(self, type: FloatType, value: float) -> ConstantFP:
        return ConstantFP(type, value)

    def const_null(self) -> ConstantPointerNull:
        return ConstantPointerNull()

    def undef(self, type: IRType) -> UndefValue:
        return UndefValue(type)

    def true(self) -> ConstantInt:
        return ConstantInt(i1, 1)

    def false(self) -> ConstantInt:
        return ConstantInt(i1, 0)

    # ==================================================================
    # Arithmetic with on-the-fly folding
    # ==================================================================
    def binop(
        self, op: BinOp, lhs: Value, rhs: Value, name: str = ""
    ) -> Value:
        folded = self._fold_binop(op, lhs, rhs)
        if folded is not None:
            return folded
        return self._insert(BinaryInst(op, lhs, rhs, name or op.value))

    def _fold_binop(
        self, op: BinOp, lhs: Value, rhs: Value
    ) -> Value | None:
        if not self.folding_enabled:
            return None
        # Constant-constant folding.
        if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
            ty = lhs.type
            a, b = lhs.value, rhs.value
            sa, sb = lhs.signed_value, rhs.signed_value
            try:
                result = {
                    BinOp.ADD: lambda: a + b,
                    BinOp.SUB: lambda: a - b,
                    BinOp.MUL: lambda: a * b,
                    BinOp.AND: lambda: a & b,
                    BinOp.OR: lambda: a | b,
                    BinOp.XOR: lambda: a ^ b,
                    BinOp.SHL: lambda: a << (b % ty.bits),
                    BinOp.LSHR: lambda: a >> (b % ty.bits),
                    BinOp.ASHR: lambda: sa >> (b % ty.bits),
                    BinOp.UDIV: lambda: a // b if b else None,
                    BinOp.UREM: lambda: a % b if b else None,
                    BinOp.SDIV: lambda: _sdiv(sa, sb) if b else None,
                    BinOp.SREM: lambda: _srem(sa, sb) if b else None,
                }[op]()
            except KeyError:
                return None
            if result is None:
                return None
            return ConstantInt(ty, result)
        if isinstance(lhs, ConstantFP) and isinstance(rhs, ConstantFP):
            a, b = lhs.value, rhs.value
            table = {
                BinOp.FADD: lambda: a + b,
                BinOp.FSUB: lambda: a - b,
                BinOp.FMUL: lambda: a * b,
                BinOp.FDIV: lambda: a / b if b else None,
            }
            fn = table.get(op)
            if fn is not None:
                result = fn()
                if result is not None:
                    return ConstantFP(lhs.type, result)
            return None
        # Algebraic identities.
        if isinstance(rhs, ConstantInt):
            if rhs.value == 0 and op in (
                BinOp.ADD,
                BinOp.SUB,
                BinOp.OR,
                BinOp.XOR,
                BinOp.SHL,
                BinOp.LSHR,
                BinOp.ASHR,
            ):
                return lhs
            if rhs.value == 1 and op in (
                BinOp.MUL,
                BinOp.SDIV,
                BinOp.UDIV,
            ):
                return lhs
            if rhs.value == 0 and op == BinOp.MUL:
                return rhs
        if isinstance(lhs, ConstantInt):
            if lhs.value == 0 and op in (BinOp.ADD, BinOp.OR, BinOp.XOR):
                return rhs
            if lhs.value == 1 and op == BinOp.MUL:
                return rhs
            if lhs.value == 0 and op == BinOp.MUL:
                return lhs
        return None

    # Shorthands ---------------------------------------------------------
    def add(self, lhs: Value, rhs: Value, name: str = "add") -> Value:
        return self.binop(BinOp.ADD, lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "sub") -> Value:
        return self.binop(BinOp.SUB, lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "mul") -> Value:
        return self.binop(BinOp.MUL, lhs, rhs, name)

    def udiv(self, lhs: Value, rhs: Value, name: str = "udiv") -> Value:
        return self.binop(BinOp.UDIV, lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "sdiv") -> Value:
        return self.binop(BinOp.SDIV, lhs, rhs, name)

    def icmp(
        self, pred: ICmpPred, lhs: Value, rhs: Value, name: str = "cmp"
    ) -> Value:
        if (
            self.folding_enabled
            and isinstance(lhs, ConstantInt)
            and isinstance(rhs, ConstantInt)
        ):
            a, b = (
                (lhs.signed_value, rhs.signed_value)
                if pred.is_signed
                else (lhs.value, rhs.value)
            )
            result = {
                ICmpPred.EQ: a == b,
                ICmpPred.NE: a != b,
                ICmpPred.SLT: a < b,
                ICmpPred.SLE: a <= b,
                ICmpPred.SGT: a > b,
                ICmpPred.SGE: a >= b,
                ICmpPred.ULT: a < b,
                ICmpPred.ULE: a <= b,
                ICmpPred.UGT: a > b,
                ICmpPred.UGE: a >= b,
            }[pred]
            return ConstantInt(i1, int(result))
        return self._insert(ICmpInst(pred, lhs, rhs, name))

    def fcmp(
        self, pred: FCmpPred, lhs: Value, rhs: Value, name: str = "fcmp"
    ) -> Value:
        return self._insert(FCmpInst(pred, lhs, rhs, name))

    # ==================================================================
    # Casts
    # ==================================================================
    def cast(
        self, op: CastOp, value: Value, to_type: IRType, name: str = ""
    ) -> Value:
        if value.type is to_type and op in (
            CastOp.BITCAST,
            CastOp.TRUNC,
            CastOp.ZEXT,
            CastOp.SEXT,
        ):
            return value
        if self.folding_enabled and isinstance(value, ConstantInt):
            if op == CastOp.TRUNC and isinstance(to_type, IntType):
                return ConstantInt(to_type, value.value)
            if op == CastOp.ZEXT and isinstance(to_type, IntType):
                return ConstantInt(to_type, value.value)
            if op == CastOp.SEXT and isinstance(to_type, IntType):
                return ConstantInt(to_type, value.signed_value)
            if op in (CastOp.SITOFP, CastOp.UITOFP) and isinstance(
                to_type, FloatType
            ):
                src = (
                    value.signed_value
                    if op == CastOp.SITOFP
                    else value.value
                )
                return ConstantFP(to_type, float(src))
        if self.folding_enabled and isinstance(value, ConstantFP):
            if op in (CastOp.FPEXT, CastOp.FPTRUNC) and isinstance(
                to_type, FloatType
            ):
                return ConstantFP(to_type, value.value)
            if op == CastOp.FPTOSI and isinstance(to_type, IntType):
                return ConstantInt(to_type, int(value.value))
        return self._insert(
            CastInst(op, value, to_type, name or op.value)
        )

    def int_cast(
        self, value: Value, to_type: IntType, signed: bool, name: str = ""
    ) -> Value:
        assert isinstance(value.type, IntType)
        if value.type.bits == to_type.bits:
            return value
        if value.type.bits > to_type.bits:
            return self.cast(CastOp.TRUNC, value, to_type, name or "trunc")
        op = CastOp.SEXT if signed else CastOp.ZEXT
        return self.cast(op, value, to_type, name or op.value)

    # ==================================================================
    # Memory
    # ==================================================================
    def alloca(
        self,
        allocated_type: IRType,
        array_size: Value | None = None,
        name: str = "alloca",
    ) -> AllocaInst:
        return self._insert(
            AllocaInst(allocated_type, array_size, name)
        )  # type: ignore[return-value]

    def load(
        self, loaded_type: IRType, pointer: Value, name: str = "load"
    ) -> Value:
        return self._insert(LoadInst(loaded_type, pointer, name))

    def store(self, value: Value, pointer: Value) -> Instruction:
        return self._insert(StoreInst(value, pointer))

    def gep(
        self,
        element_type: IRType,
        pointer: Value,
        indices: Sequence[Value],
        name: str = "gep",
    ) -> Value:
        return self._insert(
            GEPInst(element_type, pointer, indices, name)
        )

    # ==================================================================
    # Control flow
    # ==================================================================
    def br(self, target: BasicBlock) -> BranchInst:
        return self._insert(BranchInst(target))  # type: ignore

    def cond_br(
        self,
        condition: Value,
        true_block: BasicBlock,
        false_block: BasicBlock,
    ) -> Instruction:
        if self.folding_enabled and isinstance(condition, ConstantInt):
            return self.br(
                true_block if condition.value else false_block
            )
        return self._insert(
            CondBranchInst(condition, true_block, false_block)
        )

    def switch(
        self, condition: Value, default: BasicBlock
    ) -> SwitchInst:
        return self._insert(SwitchInst(condition, default))  # type: ignore

    def ret(self, value: Value | None = None) -> Instruction:
        return self._insert(ReturnInst(value))

    def unreachable(self) -> Instruction:
        return self._insert(UnreachableInst())

    # ==================================================================
    # Other
    # ==================================================================
    def phi(self, type: IRType, name: str = "phi") -> PhiInst:
        return self._insert(PhiInst(type, name))  # type: ignore

    def select(
        self,
        condition: Value,
        true_value: Value,
        false_value: Value,
        name: str = "select",
    ) -> Value:
        if self.folding_enabled and isinstance(condition, ConstantInt):
            return true_value if condition.value else false_value
        return self._insert(
            SelectInst(condition, true_value, false_value, name)
        )

    def call(
        self,
        callee: Function | Value,
        args: Sequence[Value],
        name: str = "",
    ) -> Value:
        if isinstance(callee, Function):
            return_type = callee.return_type
        else:
            return_type = void_t
        if name == "" and not return_type.is_void:
            name = "call"
        return self._insert(
            CallInst(callee, args, return_type, name)
        )


def _sdiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _srem(a: int, b: int) -> int:
    return a - _sdiv(a, b) * b
