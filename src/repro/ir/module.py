"""Module / Function / BasicBlock containers."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.ir.instructions import Instruction, PhiInst
from repro.ir.types import FunctionType, IRType, label_t, ptr
from repro.ir.values import Argument, GlobalValue, GlobalVariable, Value


class BasicBlock(Value):
    """A straight-line instruction sequence ending in one terminator."""

    def __init__(self, name: str = "") -> None:
        super().__init__(label_t, name)
        self.parent: Optional["Function"] = None
        self.instructions: list[Instruction] = []

    # ------------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors() if term is not None else []

    def predecessors(self) -> list["BasicBlock"]:
        assert self.parent is not None
        return [
            block
            for block in self.parent.blocks
            if self in block.successors()
        ]

    def phis(self) -> list[PhiInst]:
        return [
            inst
            for inst in self.instructions
            if isinstance(inst, PhiInst)
        ]

    def non_phi_begin(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, PhiInst):
                return i
        return len(self.instructions)

    def ref(self) -> str:
        return f"%{self.name}"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name}>"


class Function(GlobalValue):
    """A function definition or declaration."""

    def __init__(
        self,
        name: str,
        fn_type: FunctionType,
        module: Optional["Module"] = None,
    ) -> None:
        super().__init__(ptr, name)
        self.fn_type = fn_type
        self.module = module
        self.args: list[Argument] = [
            Argument(pty, f"arg{i}", i)
            for i, pty in enumerate(fn_type.params)
        ]
        self.blocks: list[BasicBlock] = []
        self._name_counter: dict[str, int] = {}
        #: native implementation hook: the interpreter calls this instead
        #: of interpreting blocks (used for runtime/libc builtins)
        self.native_impl = None

    # ------------------------------------------------------------------
    @property
    def is_declaration(self) -> bool:
        return not self.blocks and self.native_impl is None

    @property
    def return_type(self) -> IRType:
        return self.fn_type.return_type

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[0]

    def append_block(
        self, name: str = "", after: BasicBlock | None = None
    ) -> BasicBlock:
        block = BasicBlock(self.unique_name(name or "bb"))
        block.parent = self
        if after is not None:
            idx = self.blocks.index(after)
            self.blocks.insert(idx + 1, block)
        else:
            self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def unique_name(self, base: str) -> str:
        count = self._name_counter.get(base)
        if count is None:
            self._name_counter[base] = 1
            return base
        self._name_counter[base] = count + 1
        return f"{base}.{count}"

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} @{self.name}>"


class Module:
    """One translation unit's IR."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}
        #: named metadata (e.g. distinct loop IDs); informational
        self.named_metadata: dict[str, object] = {}

    def add_function(
        self, name: str, fn_type: FunctionType
    ) -> Function:
        existing = self.functions.get(name)
        if existing is not None:
            return existing
        fn = Function(name, fn_type, self)
        self.functions[name] = fn
        return fn

    def get_function(self, name: str) -> Function | None:
        return self.functions.get(name)

    def add_global(
        self,
        name: str,
        value_type: IRType,
        initializer=None,
        is_constant: bool = False,
    ) -> GlobalVariable:
        existing = self.globals.get(name)
        if existing is not None:
            return existing
        gv = GlobalVariable(name, value_type, initializer, is_constant)
        self.globals[name] = gv
        return gv

    def unique_global_name(self, base: str) -> str:
        if base not in self.globals and base not in self.functions:
            return base
        i = 1
        while f"{base}.{i}" in self.globals or f"{base}.{i}" in self.functions:
            i += 1
        return f"{base}.{i}"

    def defined_functions(self) -> Iterable[Function]:
        return (
            f for f in self.functions.values() if not f.is_declaration
        )

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
