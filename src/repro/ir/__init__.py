"""A miniature LLVM-like IR (paper Fig. 1: the layer below CodeGen).

The subset needed to make the paper's code-generation story *executable*:

* typed SSA-ish instructions grouped into explicit basic blocks — the loop
  skeleton invariants of ``CanonicalLoopInfo`` (paper Fig. 7) require
  "explicit basic blocks for preheader, header, condition check, body
  entry, latch, exit and after",
* loop metadata (``llvm.loop.unroll.count`` etc.) attached to the latch
  terminator, consumed by the mid-end ``LoopUnroll`` pass,
* an :class:`~repro.ir.irbuilder.IRBuilder` that inserts after the
  previously inserted instruction and simplifies expressions on the fly
  (constant folding), as described in §1.3,
* a verifier and a ``.ll``-style printer.
"""

from repro.ir.types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    IRType,
    LabelType,
    PointerType,
    StructType,
    VoidType,
    double_t,
    float_t,
    i1,
    i8,
    i16,
    i32,
    i64,
    ptr,
    void_t,
)
from repro.ir.values import (
    Argument,
    Constant,
    ConstantFP,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.metadata import MDNode, MDString, loop_metadata
from repro.ir.irbuilder import IRBuilder
from repro.ir.printer import print_module
from repro.ir.verifier import VerificationError, verify_module

__all__ = [
    "Argument",
    "ArrayType",
    "BasicBlock",
    "Constant",
    "ConstantFP",
    "ConstantInt",
    "ConstantPointerNull",
    "FloatType",
    "Function",
    "FunctionType",
    "GlobalVariable",
    "IRBuilder",
    "IRType",
    "IntType",
    "LabelType",
    "MDNode",
    "MDString",
    "Module",
    "PointerType",
    "StructType",
    "UndefValue",
    "Value",
    "VerificationError",
    "VoidType",
    "double_t",
    "float_t",
    "i1",
    "i16",
    "i32",
    "i64",
    "i8",
    "loop_metadata",
    "print_module",
    "ptr",
    "verify_module",
    "void_t",
]
