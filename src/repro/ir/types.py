"""IR types (LLVM-style).  Pointers are opaque, as in modern LLVM."""

from __future__ import annotations

from typing import Sequence


class IRType:
    def __str__(self) -> str:  # pragma: no cover - subclasses override
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<irtype {self}>"

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def size_bytes(self) -> int:
        """Store size in bytes (LP64 layout)."""
        raise NotImplementedError(f"{self} has no size")

    # Types are interned immutables (LLVM context-uniqued analogue):
    # cloning a module must alias them, never duplicate them —
    # duplication would both break identity comparisons and trip the
    # interning ``__new__`` signatures under ``copy.deepcopy``.
    def __copy__(self) -> "IRType":
        return self

    def __deepcopy__(self, memo: dict) -> "IRType":
        memo[id(self)] = self
        return self


class VoidType(IRType):
    def __str__(self) -> str:
        return "void"


class LabelType(IRType):
    def __str__(self) -> str:
        return "label"


class IntType(IRType):
    _cache: dict[int, "IntType"] = {}

    def __new__(cls, bits: int) -> "IntType":
        cached = cls._cache.get(bits)
        if cached is None:
            cached = super().__new__(cls)
            cached.bits = bits
            cls._cache[bits] = cached
        return cached

    def __str__(self) -> str:
        return f"i{self.bits}"

    def size_bytes(self) -> int:
        return max(1, (self.bits + 7) // 8)

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap to the unsigned 2's-complement bit pattern."""
        return value & self.mask

    def to_signed(self, value: int) -> int:
        value &= self.mask
        if value >= 1 << (self.bits - 1):
            value -= 1 << self.bits
        return value


class FloatType(IRType):
    _cache: dict[int, "FloatType"] = {}

    def __new__(cls, bits: int) -> "FloatType":
        assert bits in (32, 64)
        cached = cls._cache.get(bits)
        if cached is None:
            cached = super().__new__(cls)
            cached.bits = bits
            cls._cache[bits] = cached
        return cached

    def __str__(self) -> str:
        return "float" if self.bits == 32 else "double"

    def size_bytes(self) -> int:
        return self.bits // 8


class PointerType(IRType):
    _instance: "PointerType | None" = None

    def __new__(cls) -> "PointerType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "ptr"

    def size_bytes(self) -> int:
        return 8


class ArrayType(IRType):
    _cache: dict[tuple, "ArrayType"] = {}

    def __new__(cls, element: IRType, count: int) -> "ArrayType":
        key = (element, count)
        cached = cls._cache.get(key)
        if cached is None:
            cached = super().__new__(cls)
            cached.element = element
            cached.count = count
            cls._cache[key] = cached
        return cached

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def size_bytes(self) -> int:
        return self.count * self.element.size_bytes()


class StructType(IRType):
    """A (possibly named) struct with precomputed byte offsets."""

    def __init__(
        self,
        elements: Sequence[IRType],
        name: str = "",
        offsets: Sequence[int] | None = None,
        size: int | None = None,
    ) -> None:
        self.elements = tuple(elements)
        self.name = name
        if offsets is None:
            offsets = []
            off = 0
            for el in self.elements:
                align = _natural_align(el)
                off = (off + align - 1) // align * align
                offsets.append(off)
                off += el.size_bytes()
            align = max(
                (_natural_align(el) for el in self.elements), default=1
            )
            size = max(1, (off + align - 1) // align * align)
        self.offsets = tuple(offsets)
        self._size = size if size is not None else 1

    def __str__(self) -> str:
        if self.name:
            return f"%{self.name}"
        inner = ", ".join(str(el) for el in self.elements)
        return "{ " + inner + " }"

    def size_bytes(self) -> int:
        return self._size

    def offset_of(self, index: int) -> int:
        return self.offsets[index]


def _natural_align(ty: IRType) -> int:
    if isinstance(ty, ArrayType):
        return _natural_align(ty.element)
    if isinstance(ty, StructType):
        return max(
            (_natural_align(el) for el in ty.elements), default=1
        )
    return max(1, ty.size_bytes())


class FunctionType(IRType):
    def __init__(
        self,
        return_type: IRType,
        params: Sequence[IRType],
        is_variadic: bool = False,
    ) -> None:
        self.return_type = return_type
        self.params = tuple(params)
        self.is_variadic = is_variadic

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.is_variadic:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type} ({params})"


# Common singletons -----------------------------------------------------
void_t = VoidType()
label_t = LabelType()
i1 = IntType(1)
i8 = IntType(8)
i16 = IntType(16)
i32 = IntType(32)
i64 = IntType(64)
float_t = FloatType(32)
double_t = FloatType(64)
ptr = PointerType()
