"""Loop metadata (``llvm.loop.*``).

The shadow-AST unroll implementation does not duplicate any code in the
front-end: it attaches ``llvm.loop.unroll.count`` metadata to the loop (via
``LoopHintAttr``) and the mid-end ``LoopUnroll`` pass performs the
expansion (paper §2.1/§2.2).  As in LLVM, the metadata node is attached to
the loop latch's branch instruction under the ``llvm.loop`` key.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

_md_ids = itertools.count()


@dataclass(frozen=True)
class MDString:
    text: str

    def __str__(self) -> str:
        return f'!"{self.text}"'


class MDNode:
    """A metadata tuple; ``distinct`` nodes get a unique identity (loop
    IDs must be distinct so transformed loops are distinguishable)."""

    def __init__(
        self,
        operands: Sequence[Union["MDNode", MDString, int, None]] = (),
        distinct: bool = False,
    ) -> None:
        self.operands = list(operands)
        self.distinct = distinct
        self.id = next(_md_ids)

    def __str__(self) -> str:
        inner = ", ".join(
            str(op) if op is not None else "null" for op in self.operands
        )
        prefix = "distinct " if self.distinct else ""
        return f"{prefix}!{{{inner}}}"

    def __repr__(self) -> str:
        return f"<MDNode !{self.id}>"


# ---------------------------------------------------------------------------
# llvm.loop helpers
# ---------------------------------------------------------------------------
UNROLL_COUNT = "llvm.loop.unroll.count"
UNROLL_ENABLE = "llvm.loop.unroll.enable"
UNROLL_FULL = "llvm.loop.unroll.full"
UNROLL_DISABLE = "llvm.loop.unroll.disable"
MUSTPROGRESS = "llvm.loop.mustprogress"


def loop_metadata(
    unroll_count: int | None = None,
    unroll_enable: bool = False,
    unroll_full: bool = False,
    unroll_disable: bool = False,
    extra: Sequence[MDNode] = (),
) -> MDNode:
    """Build a distinct ``llvm.loop`` metadata node.

    Matches LLVM's convention: the first operand is a self-reference (the
    loop ID), followed by property nodes.
    """
    node = MDNode([], distinct=True)
    node.operands.append(node)  # self-referential loop id
    if unroll_count is not None:
        node.operands.append(
            MDNode([MDString(UNROLL_COUNT), unroll_count])
        )
    if unroll_enable:
        node.operands.append(MDNode([MDString(UNROLL_ENABLE)]))
    if unroll_full:
        node.operands.append(MDNode([MDString(UNROLL_FULL)]))
    if unroll_disable:
        node.operands.append(MDNode([MDString(UNROLL_DISABLE)]))
    node.operands.extend(extra)
    return node


def _find_property(md: MDNode, name: str) -> MDNode | None:
    for op in md.operands[1:]:
        if (
            isinstance(op, MDNode)
            and op.operands
            and isinstance(op.operands[0], MDString)
            and op.operands[0].text == name
        ):
            return op
    return None


def get_unroll_count(md: MDNode) -> int | None:
    """Read ``llvm.loop.unroll.count`` from a loop metadata node."""
    prop = _find_property(md, UNROLL_COUNT)
    if prop is not None and len(prop.operands) >= 2:
        value = prop.operands[1]
        if isinstance(value, int):
            return value
    return None


def has_flag(md: MDNode, name: str) -> bool:
    return _find_property(md, name) is not None
