"""IR instructions.

Operands are plain attributes (no use-lists); the mid-end passes that need
value replacement walk instructions explicitly via
:meth:`Instruction.operands` / :meth:`Instruction.replace_operand`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.ir.types import IRType, IntType, i1, void_t
from repro.ir.values import Value

if TYPE_CHECKING:
    from repro.ir.metadata import MDNode
    from repro.ir.module import BasicBlock, Function


class Instruction(Value):
    """Base class; also a Value (its result)."""

    opcode = "<instr>"

    def __init__(self, type: IRType, name: str = "") -> None:
        super().__init__(type, name)
        self.parent: Optional["BasicBlock"] = None
        self.metadata: dict[str, "MDNode"] = {}

    # Operand access (overridden) ---------------------------------------
    def operands(self) -> list[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        """Replace every occurrence of *old* among the operands."""
        raise NotImplementedError

    @property
    def is_terminator(self) -> bool:
        return isinstance(
            self, (BranchInst, CondBranchInst, SwitchInst, ReturnInst,
                   UnreachableInst)
        )

    def successors(self) -> list["BasicBlock"]:
        return []

    def erase(self) -> None:
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------
class BinOp(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    SREM = "srem"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FREM = "frem"

    @property
    def is_float_op(self) -> bool:
        return self.value.startswith("f")


class BinaryInst(Instruction):
    def __init__(
        self, op: BinOp, lhs: Value, rhs: Value, name: str = ""
    ) -> None:
        super().__init__(lhs.type, name)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    opcode = "binop"

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.lhs is old:
            self.lhs = new
        if self.rhs is old:
            self.rhs = new


class ICmpPred(enum.Enum):
    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"

    @property
    def is_signed(self) -> bool:
        return self.value.startswith("s")


class ICmpInst(Instruction):
    opcode = "icmp"

    def __init__(
        self, pred: ICmpPred, lhs: Value, rhs: Value, name: str = ""
    ) -> None:
        super().__init__(i1, name)
        self.pred = pred
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.lhs is old:
            self.lhs = new
        if self.rhs is old:
            self.rhs = new


class FCmpPred(enum.Enum):
    OEQ = "oeq"
    ONE = "one"
    OLT = "olt"
    OLE = "ole"
    OGT = "ogt"
    OGE = "oge"


class FCmpInst(Instruction):
    opcode = "fcmp"

    def __init__(
        self, pred: FCmpPred, lhs: Value, rhs: Value, name: str = ""
    ) -> None:
        super().__init__(i1, name)
        self.pred = pred
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.lhs is old:
            self.lhs = new
        if self.rhs is old:
            self.rhs = new


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------
class CastOp(enum.Enum):
    TRUNC = "trunc"
    ZEXT = "zext"
    SEXT = "sext"
    FPTOSI = "fptosi"
    FPTOUI = "fptoui"
    SITOFP = "sitofp"
    UITOFP = "uitofp"
    FPTRUNC = "fptrunc"
    FPEXT = "fpext"
    PTRTOINT = "ptrtoint"
    INTTOPTR = "inttoptr"
    BITCAST = "bitcast"


class CastInst(Instruction):
    opcode = "cast"

    def __init__(
        self, op: CastOp, value: Value, to_type: IRType, name: str = ""
    ) -> None:
        super().__init__(to_type, name)
        self.op = op
        self.value = value

    def operands(self) -> list[Value]:
        return [self.value]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------
class AllocaInst(Instruction):
    opcode = "alloca"

    def __init__(
        self,
        allocated_type: IRType,
        array_size: Value | None = None,
        name: str = "",
    ) -> None:
        from repro.ir.types import ptr

        super().__init__(ptr, name)
        self.allocated_type = allocated_type
        self.array_size = array_size

    def operands(self) -> list[Value]:
        return [self.array_size] if self.array_size is not None else []

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.array_size is old:
            self.array_size = new


class LoadInst(Instruction):
    opcode = "load"

    def __init__(
        self, loaded_type: IRType, pointer: Value, name: str = ""
    ) -> None:
        super().__init__(loaded_type, name)
        self.pointer = pointer

    def operands(self) -> list[Value]:
        return [self.pointer]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.pointer is old:
            self.pointer = new


class StoreInst(Instruction):
    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        super().__init__(void_t)
        self.value = value
        self.pointer = pointer

    def operands(self) -> list[Value]:
        return [self.value, self.pointer]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new
        if self.pointer is old:
            self.pointer = new


class GEPInst(Instruction):
    """``getelementptr`` restricted to the two forms CodeGen emits:
    pointer + index scaling over *element_type*, and struct field access
    (struct index list)."""

    opcode = "getelementptr"

    def __init__(
        self,
        element_type: IRType,
        pointer: Value,
        indices: Sequence[Value],
        name: str = "",
    ) -> None:
        from repro.ir.types import ptr

        super().__init__(ptr, name)
        self.element_type = element_type
        self.pointer = pointer
        self.indices = list(indices)

    def operands(self) -> list[Value]:
        return [self.pointer, *self.indices]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.pointer is old:
            self.pointer = new
        self.indices = [
            new if idx is old else idx for idx in self.indices
        ]


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------
class BranchInst(Instruction):
    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(void_t)
        self.target = target

    def successors(self) -> list["BasicBlock"]:
        return [self.target]

    def operands(self) -> list[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        pass


class CondBranchInst(Instruction):
    opcode = "br"

    def __init__(
        self,
        condition: Value,
        true_block: "BasicBlock",
        false_block: "BasicBlock",
    ) -> None:
        super().__init__(void_t)
        self.condition = condition
        self.true_block = true_block
        self.false_block = false_block

    def successors(self) -> list["BasicBlock"]:
        return [self.true_block, self.false_block]

    def operands(self) -> list[Value]:
        return [self.condition]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.condition is old:
            self.condition = new


class SwitchInst(Instruction):
    opcode = "switch"

    def __init__(
        self,
        condition: Value,
        default: "BasicBlock",
        cases: Sequence[tuple[int, "BasicBlock"]] = (),
    ) -> None:
        super().__init__(void_t)
        self.condition = condition
        self.default = default
        self.cases: list[tuple[int, "BasicBlock"]] = list(cases)

    def add_case(self, value: int, block: "BasicBlock") -> None:
        self.cases.append((value, block))

    def successors(self) -> list["BasicBlock"]:
        return [self.default, *(b for _, b in self.cases)]

    def operands(self) -> list[Value]:
        return [self.condition]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.condition is old:
            self.condition = new


class ReturnInst(Instruction):
    opcode = "ret"

    def __init__(self, value: Value | None = None) -> None:
        super().__init__(void_t)
        self.value = value

    def operands(self) -> list[Value]:
        return [self.value] if self.value is not None else []

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new


class UnreachableInst(Instruction):
    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__(void_t)

    def replace_operand(self, old: Value, new: Value) -> None:
        pass


# ---------------------------------------------------------------------------
# Other
# ---------------------------------------------------------------------------
class PhiInst(Instruction):
    opcode = "phi"

    def __init__(self, type: IRType, name: str = "") -> None:
        super().__init__(type, name)
        self.incoming: list[tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self.incoming.append((value, block))

    def incoming_for(self, block: "BasicBlock") -> Value | None:
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def operands(self) -> list[Value]:
        return [v for v, _ in self.incoming]

    def replace_operand(self, old: Value, new: Value) -> None:
        self.incoming = [
            (new if v is old else v, b) for v, b in self.incoming
        ]

    def replace_incoming_block(
        self, old: "BasicBlock", new: "BasicBlock"
    ) -> None:
        self.incoming = [
            (v, new if b is old else b) for v, b in self.incoming
        ]


class SelectInst(Instruction):
    opcode = "select"

    def __init__(
        self,
        condition: Value,
        true_value: Value,
        false_value: Value,
        name: str = "",
    ) -> None:
        super().__init__(true_value.type, name)
        self.condition = condition
        self.true_value = true_value
        self.false_value = false_value

    def operands(self) -> list[Value]:
        return [self.condition, self.true_value, self.false_value]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.condition is old:
            self.condition = new
        if self.true_value is old:
            self.true_value = new
        if self.false_value is old:
            self.false_value = new


class CallInst(Instruction):
    opcode = "call"

    def __init__(
        self,
        callee: Value,
        args: Sequence[Value],
        return_type: IRType,
        name: str = "",
    ) -> None:
        super().__init__(return_type, name)
        self.callee = callee
        self.args = list(args)

    def operands(self) -> list[Value]:
        return [self.callee, *self.args]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.callee is old:
            self.callee = new
        self.args = [new if a is old else a for a in self.args]
