"""IR verifier.

Checks the structural invariants the interpreter and the mid-end passes
rely on; the CanonicalLoopInfo skeleton invariants (paper §3.2) are checked
separately by :meth:`repro.ompirbuilder.CanonicalLoopInfo.assert_ok`.
"""

from __future__ import annotations

from repro.ir.instructions import (
    BranchInst,
    CallInst,
    CondBranchInst,
    Instruction,
    PhiInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import IntType
from repro.ir.values import Argument, Constant, Value


class VerificationError(Exception):
    pass


def verify_module(module: Module) -> None:
    for fn in module.functions.values():
        if not fn.is_declaration and fn.blocks:
            verify_function(fn)


def verify_function(fn: Function) -> None:
    if not fn.blocks:
        return
    defined: set[int] = set()
    for arg in fn.args:
        defined.add(id(arg))
    block_set = set(id(b) for b in fn.blocks)

    # Pass 1: every block has exactly one terminator at the end, and
    # instruction results are recorded.
    for block in fn.blocks:
        if block.parent is not fn:
            raise VerificationError(
                f"{fn.name}: block {block.name} has wrong parent"
            )
        if not block.instructions:
            raise VerificationError(
                f"{fn.name}: block {block.name} is empty"
            )
        term = block.instructions[-1]
        if not term.is_terminator:
            raise VerificationError(
                f"{fn.name}: block {block.name} does not end in a "
                f"terminator (ends in {term.opcode})"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise VerificationError(
                    f"{fn.name}: terminator in the middle of block "
                    f"{block.name}"
                )
        for inst in block.instructions:
            defined.add(id(inst))
        for succ in block.successors():
            if id(succ) not in block_set:
                raise VerificationError(
                    f"{fn.name}: block {block.name} branches to a block "
                    f"outside the function ({succ.name})"
                )

    # Pass 2: operands are constants, arguments, blocks or instructions
    # of this function; phis agree with predecessors.
    for block in fn.blocks:
        preds = block.predecessors()
        pred_ids = set(id(p) for p in preds)
        for inst in block.instructions:
            for op in inst.operands():
                if op is None:
                    raise VerificationError(
                        f"{fn.name}: {inst.opcode} has a None operand"
                    )
                if isinstance(op, (Constant, Argument, BasicBlock)):
                    continue
                if isinstance(op, Function):
                    continue
                from repro.ir.values import GlobalValue

                if isinstance(op, GlobalValue):
                    continue
                if isinstance(op, Instruction):
                    if id(op) not in defined:
                        raise VerificationError(
                            f"{fn.name}: {inst.opcode} uses an "
                            "instruction from another function"
                        )
                    continue
                raise VerificationError(
                    f"{fn.name}: {inst.opcode} has invalid operand "
                    f"{op!r}"
                )
            if isinstance(inst, PhiInst):
                if block.instructions.index(inst) > block.non_phi_begin():
                    raise VerificationError(
                        f"{fn.name}: phi after non-phi in {block.name}"
                    )
                incoming_ids = set(id(b) for _, b in inst.incoming)
                if incoming_ids != pred_ids:
                    pred_names = sorted(p.name for p in preds)
                    inc_names = sorted(
                        b.name for _, b in inst.incoming
                    )
                    raise VerificationError(
                        f"{fn.name}: phi %{inst.name} in {block.name} "
                        f"incoming blocks {inc_names} != predecessors "
                        f"{pred_names}"
                    )
                for value, _ in inst.incoming:
                    if value.type is not inst.type:
                        raise VerificationError(
                            f"{fn.name}: phi %{inst.name} incoming type "
                            f"mismatch: {value.type} vs {inst.type}"
                        )
            if isinstance(inst, CondBranchInst):
                cond_ty = inst.condition.type
                if not (
                    isinstance(cond_ty, IntType) and cond_ty.bits == 1
                ):
                    raise VerificationError(
                        f"{fn.name}: conditional branch condition is "
                        f"{cond_ty}, expected i1"
                    )

    # Pass 3: entry block has no predecessors.
    if fn.entry_block.predecessors():
        raise VerificationError(
            f"{fn.name}: entry block has predecessors"
        )
