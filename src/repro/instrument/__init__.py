"""Compiler observability: the four pillars mirroring clang/LLVM.

=================  =====================================  ==============
Pillar             Clang/LLVM counterpart                 Module
=================  =====================================  ==============
time-trace         ``-ftime-trace`` (TimeProfiler)        ``timetrace``
statistics         ``-stats`` (``STATISTIC`` macro)       ``stats``
remarks            ``-Rpass{,-missed,-analysis}=``        ``remarks``
execution profile  profiling runtimes / ``perf`` views    ``profile``
=================  =====================================  ==============

All four are zero-dependency and cheap when their driver flag is off;
see each module's docstring for the cost model.
"""

from repro.instrument.profile import (
    ExecutionProfile,
    LoopProfile,
    ThreadProfile,
)
from repro.instrument.remarks import Remark, RemarkEmitter, RemarkKind
from repro.instrument.stats import STATS, Statistic, StatsRegistry, get_statistic
from repro.instrument.timetrace import (
    TimeTraceProfiler,
    TimeTraceScope,
    active_time_trace,
    disable_time_trace,
    enable_time_trace,
    time_trace_scope,
)

__all__ = [
    "ExecutionProfile",
    "LoopProfile",
    "ThreadProfile",
    "Remark",
    "RemarkEmitter",
    "RemarkKind",
    "STATS",
    "Statistic",
    "StatsRegistry",
    "get_statistic",
    "TimeTraceProfiler",
    "TimeTraceScope",
    "active_time_trace",
    "disable_time_trace",
    "enable_time_trace",
    "time_trace_scope",
]
