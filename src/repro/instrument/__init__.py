"""Compiler observability: the four pillars mirroring clang/LLVM.

=================  =====================================  ==============
Pillar             Clang/LLVM counterpart                 Module
=================  =====================================  ==============
time-trace         ``-ftime-trace`` (TimeProfiler)        ``timetrace``
statistics         ``-stats`` (``STATISTIC`` macro)       ``stats``
remarks            ``-Rpass{,-missed,-analysis}=``        ``remarks``
execution profile  profiling runtimes / ``perf`` views    ``profile``
=================  =====================================  ==============

PR 2 adds the pipeline-introspection pillar on top::

    pass instrumentation  -print-before/-after[-all], -print-changed,
                          -verify-each, -opt-bisect-limit
                          (PassInstrumentationCallbacks /
                          StandardInstrumentations / OptBisect)   ``passinstrument``
    debug counters        -debug-counter=NAME=SKIP[,COUNT]
                          (DEBUG_COUNTER / DebugCounter.h)        ``debugcounter``
    unified diffs         pure-python Myers diff backing
                          -print-changed                          ``udiff``

All are zero-dependency and cheap when their driver flag is off;
see each module's docstring for the cost model.
"""

from repro.instrument.debugcounter import (
    DEBUG_COUNTERS,
    DebugCounter,
    DebugCounterRegistry,
    get_debug_counter,
)
from repro.instrument.faultinject import (
    FAULTS,
    FaultRegistry,
    InjectedFault,
)
from repro.instrument.profile import (
    ExecutionProfile,
    LoopProfile,
    ThreadProfile,
)
from repro.instrument.remarks import Remark, RemarkEmitter, RemarkKind
from repro.instrument.stats import STATS, Statistic, StatsRegistry, get_statistic
from repro.instrument.timetrace import (
    TimeTraceProfiler,
    TimeTraceScope,
    active_time_trace,
    disable_time_trace,
    enable_time_trace,
    time_trace_scope,
)
from repro.instrument.passinstrument import (
    PassExecution,
    PassInstrumentation,
    PassVerificationError,
)
from repro.instrument.udiff import unified_diff

__all__ = [
    "DEBUG_COUNTERS",
    "DebugCounter",
    "DebugCounterRegistry",
    "get_debug_counter",
    "FAULTS",
    "FaultRegistry",
    "InjectedFault",
    "PassExecution",
    "PassInstrumentation",
    "PassVerificationError",
    "unified_diff",
    "ExecutionProfile",
    "LoopProfile",
    "ThreadProfile",
    "Remark",
    "RemarkEmitter",
    "RemarkKind",
    "STATS",
    "Statistic",
    "StatsRegistry",
    "get_statistic",
    "TimeTraceProfiler",
    "TimeTraceScope",
    "active_time_trace",
    "disable_time_trace",
    "enable_time_trace",
    "time_trace_scope",
]
