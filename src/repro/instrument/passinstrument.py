"""Pass-pipeline introspection (LLVM's ``PassInstrumentationCallbacks``
plus the relevant ``StandardInstrumentations``).

One :class:`PassInstrumentation` object is threaded through
:meth:`repro.midend.pass_manager.PassManager.run`; the manager calls
:meth:`~PassInstrumentation.start` before and
:meth:`~PassInstrumentation.finish` after every pass-on-function
execution.  The instrumentation combines four LLVM debugging facilities:

========================  =============================================
Facility                  LLVM counterpart
========================  =============================================
IR printing/diffing       ``-print-before[-all]`` / ``-print-after
                          [-all]`` / ``-print-changed``
                          (PrintIRInstrumentation / ChangeReporter)
verify-each               ``-verify-each`` (VerifyInstrumentation)
opt-bisect                ``-opt-bisect-limit=N`` (``OptBisect``)
execution record          ``PassInstrumentationCallbacks`` analysis
                          invalidation bookkeeping (we keep the full
                          per-execution log for ``bisect_pipeline``)
========================  =============================================

Pass executions are numbered from 1 in pipeline order exactly like
LLVM's ``OptBisect``; ``-opt-bisect-limit=N`` runs executions 1..N and
skips the rest (``-1`` = run everything, but still log the ``BISECT:``
lines).  Skipped executions are reported as ``-Rpass-missed`` remarks so
the existing remark plumbing shows *why* a transformation is missing
from a bisected build.

IR snapshots use :func:`repro.ir.printer.print_function`, whose output
is deterministic (stable local metadata numbering), so ``-print-changed``
diffs are byte-stable and usable in snapshot tests.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, TextIO

from repro.instrument.stats import get_statistic
from repro.instrument.udiff import unified_diff

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instrument.remarks import RemarkEmitter
    from repro.ir.module import Function

_SNAPSHOTS_TAKEN = get_statistic(
    "pass-instrument",
    "ir-snapshots-taken",
    "IR snapshots taken before pass executions",
)
_DIFFS_EMITTED = get_statistic(
    "pass-instrument",
    "diffs-emitted",
    "Non-empty -print-changed diffs emitted",
)
_EXECUTIONS_SKIPPED = get_statistic(
    "pass-instrument",
    "executions-skipped",
    "Pass executions skipped by -opt-bisect-limit",
)
_VERIFY_RUNS = get_statistic(
    "pass-instrument",
    "verify-each-runs",
    "Module verifications run by -verify-each",
)


@dataclass
class PassExecution:
    """One numbered pass-on-function execution (the OptBisect unit)."""

    index: int
    pass_name: str
    function: str
    #: False when -opt-bisect-limit suppressed this execution
    ran: bool = True
    #: filled in by :meth:`PassInstrumentation.finish`
    changed: Optional[bool] = None

    def describe(self) -> str:
        return f"({self.index}) {self.pass_name} on function ({self.function})"


class PassVerificationError(Exception):
    """``-verify-each`` found broken IR and knows which pass broke it."""

    def __init__(
        self,
        execution: PassExecution,
        cause: Exception,
        reproducer_dir: str | None = None,
    ) -> None:
        self.execution = execution
        self.pass_name = execution.pass_name
        self.function = execution.function
        self.index = execution.index
        self.cause = cause
        self.reproducer_dir = reproducer_dir
        message = (
            f"IR verification failed after pass '{execution.pass_name}' "
            f"on function '{execution.function}' "
            f"(execution {execution.index}): {cause}"
        )
        if reproducer_dir is not None:
            message += f" [reproducer IR written to {reproducer_dir}]"
        super().__init__(message)


class PassInstrumentation:
    """Before/after hooks around every pass-on-function execution."""

    def __init__(
        self,
        *,
        print_before: Iterable[str] = (),
        print_after: Iterable[str] = (),
        print_before_all: bool = False,
        print_after_all: bool = False,
        print_changed: bool = False,
        verify_each: bool = False,
        opt_bisect_limit: int | None = None,
        reproducer_dir: str = "miniclang-crashes",
        remarks: Optional["RemarkEmitter"] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.print_before = set(print_before)
        self.print_after = set(print_after)
        self.print_before_all = print_before_all
        self.print_after_all = print_after_all
        self.print_changed = print_changed
        self.verify_each = verify_each
        self.opt_bisect_limit = opt_bisect_limit
        self.reproducer_dir = reproducer_dir
        #: remark sink for skipped executions; assignable after
        #: construction (the emitter is born with the DiagnosticsEngine)
        self.remarks = remarks
        self.stream = stream
        #: complete log, one entry per execution, in pipeline order
        self.executions: list[PassExecution] = []
        self._next_index = 1
        self._snapshot: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Does any facility actually observe executions?"""
        return bool(
            self.print_before
            or self.print_after
            or self.print_before_all
            or self.print_after_all
            or self.print_changed
            or self.verify_each
            or self.opt_bisect_limit is not None
        )

    def _out(self, text: str) -> None:
        print(text, file=self.stream if self.stream is not None else sys.stderr)

    def _wants_before(self, pass_name: str) -> bool:
        return self.print_before_all or pass_name in self.print_before

    def _wants_after(self, pass_name: str) -> bool:
        return self.print_after_all or pass_name in self.print_after

    def _needs_snapshot(self, pass_name: str) -> bool:
        return self.print_changed or self.verify_each

    # ------------------------------------------------------------------
    def start(self, pass_name: str, fn: "Function") -> PassExecution:
        """Number the execution, apply the bisect gate, snapshot IR.

        The caller must not run the pass when ``execution.ran`` is
        False.
        """
        execution = PassExecution(self._next_index, pass_name, fn.name)
        self._next_index += 1
        self.executions.append(execution)
        if self.opt_bisect_limit is not None:
            limit = self.opt_bisect_limit
            execution.ran = limit < 0 or execution.index <= limit
            verb = "running" if execution.ran else "NOT running"
            self._out(f"BISECT: {verb} pass {execution.describe()}")
            if not execution.ran:
                _EXECUTIONS_SKIPPED.inc()
                if self.remarks is not None:
                    self.remarks.missed(
                        pass_name,
                        f"pass execution {execution.index} skipped by "
                        f"-opt-bisect-limit={limit}",
                        function=fn.name,
                    )
                return execution
        from repro.ir.printer import print_function

        if self._wants_before(pass_name):
            self._out(
                f"*** IR Dump Before {pass_name} on {fn.name} ***\n"
                + print_function(fn)
            )
        if self._needs_snapshot(pass_name):
            self._snapshot = print_function(fn)
            _SNAPSHOTS_TAKEN.inc()
        else:
            self._snapshot = None
        return execution

    # ------------------------------------------------------------------
    def finish(
        self, execution: PassExecution, fn: "Function", changed: bool
    ) -> None:
        """Report the finished execution: dumps, diffs, verification."""
        execution.changed = changed
        pass_name = execution.pass_name
        from repro.ir.printer import print_function

        after_text: Optional[str] = None
        if self._wants_after(pass_name):
            after_text = print_function(fn)
            self._out(
                f"*** IR Dump After {pass_name} on {fn.name} ***\n"
                + after_text
            )
        if self.print_changed and self._snapshot is not None:
            if after_text is None:
                after_text = print_function(fn)
            if after_text != self._snapshot:
                diff = unified_diff(
                    self._snapshot.splitlines(),
                    after_text.splitlines(),
                    fromfile=f"{fn.name} before {pass_name}",
                    tofile=f"{fn.name} after {pass_name}",
                )
                self._out(
                    f"*** IR Diff After {pass_name} on {fn.name} ***\n"
                    + diff
                )
                _DIFFS_EMITTED.inc()
        if self.verify_each:
            self._verify(execution, fn, after_text)

    # ------------------------------------------------------------------
    def _verify(
        self,
        execution: PassExecution,
        fn: "Function",
        after_text: Optional[str],
    ) -> None:
        from repro.ir.printer import print_function, print_module
        from repro.ir.verifier import VerificationError, verify_function, verify_module

        _VERIFY_RUNS.inc()
        try:
            if fn.module is not None:
                verify_module(fn.module)
            else:
                verify_function(fn)
        except VerificationError as err:
            reproducer: str | None = None
            try:
                os.makedirs(self.reproducer_dir, exist_ok=True)
                stem = (
                    f"{execution.index:04d}-{execution.pass_name}"
                    f"-{execution.function}"
                )
                if self._snapshot is not None:
                    before_path = os.path.join(
                        self.reproducer_dir, f"{stem}.before.ll"
                    )
                    with open(before_path, "w", encoding="utf-8") as fh:
                        fh.write(self._snapshot + "\n")
                after_path = os.path.join(
                    self.reproducer_dir, f"{stem}.after.ll"
                )
                broken = (
                    print_module(fn.module)
                    if fn.module is not None
                    else (after_text or print_function(fn))
                )
                with open(after_path, "w", encoding="utf-8") as fh:
                    fh.write(broken + "\n")
                reproducer = self.reproducer_dir
            except Exception:
                # Broken IR may not even print; the pass attribution in
                # the raised error still stands.
                reproducer = None
            raise PassVerificationError(execution, err, reproducer) from err
