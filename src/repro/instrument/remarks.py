"""Optimization remarks: which transformations were applied, missed, or
merely analysed — and why.

Models clang's ``-Rpass=`` / ``-Rpass-missed=`` / ``-Rpass-analysis=``
family ("User-Directed Loop-Transformations in Clang" stresses precisely
this transformation feedback).  Every emitting layer — shadow-AST Sema
(:mod:`repro.sema.omp_sema` / :mod:`repro.core.shadow`), the
OpenMPIRBuilder (:mod:`repro.ompirbuilder.builder`) and the mid-end
``LoopUnroll`` pass — reports structured :class:`Remark` objects through
a shared :class:`RemarkEmitter` hanging off the
:class:`~repro.diagnostics.DiagnosticsEngine`, so remarks carry source
locations when the emitting layer still has them (Sema) and function
names when it does not (mid-end IR has no debug locations).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sourcemgr.location import SourceLocation
    from repro.sourcemgr.source_manager import SourceManager


class RemarkKind(enum.Enum):
    """The three clang remark families."""

    PASSED = "passed"
    MISSED = "missed"
    ANALYSIS = "analysis"

    @property
    def flag(self) -> str:
        return {
            RemarkKind.PASSED: "-Rpass",
            RemarkKind.MISSED: "-Rpass-missed",
            RemarkKind.ANALYSIS: "-Rpass-analysis",
        }[self]


@dataclass
class Remark:
    """One structured optimization remark."""

    pass_name: str
    kind: RemarkKind
    message: str
    location: Optional["SourceLocation"] = None
    function: Optional[str] = None
    #: structured payload (e.g. ``{"factor": 4}``) for programmatic use
    args: dict = field(default_factory=dict)

    def render(
        self, source_manager: Optional["SourceManager"] = None
    ) -> str:
        """clang style: ``file:line:col: remark: msg [-Rpass=pass]``."""
        prefix = "<unknown>"
        if self.location is not None and self.location.is_valid():
            if source_manager is not None:
                ploc = source_manager.get_presumed_loc(self.location)
                prefix = f"{ploc.filename}:{ploc.line}:{ploc.column}"
            else:
                prefix = str(self.location)
        elif self.function is not None:
            prefix = f"<{self.function}>"
        return (
            f"{prefix}: remark: {self.message} "
            f"[{self.kind.flag}={self.pass_name}]"
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class RemarkEmitter:
    """Collects remarks; filtering happens at consumption time.

    Unlike clang — which only *generates* remarks matching the ``-Rpass``
    regex — emission here is unconditional (it is a list append) and the
    driver/API filter on output, so ``CompileResult.remarks`` is always
    fully populated for programmatic consumers.
    """

    def __init__(self) -> None:
        self.remarks: list[Remark] = []

    # ------------------------------------------------------------------
    def emit(
        self,
        kind: RemarkKind,
        pass_name: str,
        message: str,
        location: Optional["SourceLocation"] = None,
        function: Optional[str] = None,
        **args,
    ) -> Remark:
        remark = Remark(pass_name, kind, message, location, function, args)
        self.remarks.append(remark)
        return remark

    def passed(self, pass_name: str, message: str, **kw) -> Remark:
        return self.emit(RemarkKind.PASSED, pass_name, message, **kw)

    def missed(self, pass_name: str, message: str, **kw) -> Remark:
        return self.emit(RemarkKind.MISSED, pass_name, message, **kw)

    def analysis(self, pass_name: str, message: str, **kw) -> Remark:
        return self.emit(RemarkKind.ANALYSIS, pass_name, message, **kw)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Remark]:
        return iter(self.remarks)

    def __len__(self) -> int:
        return len(self.remarks)

    def by_kind(self, kind: RemarkKind) -> list[Remark]:
        return [r for r in self.remarks if r.kind == kind]

    def by_pass(self, pass_name: str) -> list[Remark]:
        return [r for r in self.remarks if r.pass_name == pass_name]

    def filtered(
        self,
        passed: str | None = None,
        missed: str | None = None,
        analysis: str | None = None,
    ) -> list[Remark]:
        """Remarks whose pass name matches the per-kind regex (clang's
        ``-Rpass=<regex>`` semantics; ``None`` disables that kind)."""
        patterns = {
            RemarkKind.PASSED: passed,
            RemarkKind.MISSED: missed,
            RemarkKind.ANALYSIS: analysis,
        }
        compiled = {
            kind: re.compile(pattern)
            for kind, pattern in patterns.items()
            if pattern is not None
        }
        return [
            r
            for r in self.remarks
            if r.kind in compiled
            and compiled[r.kind].search(r.pass_name)
        ]

    def render_all(
        self,
        source_manager: Optional["SourceManager"] = None,
        passed: str | None = None,
        missed: str | None = None,
        analysis: str | None = None,
    ) -> str:
        """Render remarks selected by the per-kind regexes; with no
        regex at all, render every remark."""
        if passed is None and missed is None and analysis is None:
            selected = list(self.remarks)
        else:
            selected = self.filtered(passed, missed, analysis)
        return "\n".join(r.render(source_manager) for r in selected)

    def clear(self) -> None:
        self.remarks.clear()
