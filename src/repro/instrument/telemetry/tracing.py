"""Cross-process request tracing for the compile service.

Models OpenTelemetry span/context propagation over the repo's existing
``-ftime-trace`` machinery (clang's per-invocation Chrome JSON is the
rendering target; clangd's request tracing is the shape):

* the service parent mints a ``trace_id`` per admitted request and
  builds parent-side spans (admission, queue wait, each attempt, breaker
  decisions, cache lookups) in a :class:`RequestTrace`;
* the ``trace_id`` + parent span id travel to the worker inside the
  :class:`~repro.service.request.WorkPayload`; the worker runs its
  pipeline under a :class:`~repro.instrument.timetrace.TimeTraceProfiler`
  session and ships the completed scope events back as plain span dicts
  (:func:`events_to_spans`), together with a wall/monotonic clock anchor
  pair;
* the parent aligns worker timestamps onto its own monotonic timeline
  (:func:`clock_offset_ns` — both processes share the machine's wall
  clock, so the offset between their ``perf_counter_ns`` origins is
  observable), clamps children into their parent attempt span, and
  renders ONE Chrome-JSON trace per request with real ``pid`` rows —
  load it in ``about://tracing`` / Perfetto and the request reads
  admission → queue → attempts → worker pipeline stages across
  processes.

Span nesting inside one process is reconstructed from interval
containment (:func:`events_to_spans`): scoped ``with`` instrumentation
guarantees proper nesting, so a stack pass over start-sorted events
recovers the tree exactly.
"""

from __future__ import annotations

import itertools
import json
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Iterable, Optional

_span_counter = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 128-bit-ish trace id (hex, 16 chars is plenty here)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """Process-unique span id: ``<pid hex>.<counter hex>`` — unique
    across the parent/worker fleet without coordination."""
    return f"{os.getpid():x}.{next(_span_counter):x}"


def clock_anchor() -> tuple[int, int]:
    """``(wall_ns, perf_ns)`` sampled back-to-back: the pair that lets
    another process map this process's monotonic timestamps onto its
    own timeline via the shared wall clock."""
    return (time.time_ns(), time.perf_counter_ns())


def clock_offset_ns(
    remote_anchor: tuple[int, int], local_anchor: tuple[int, int]
) -> int:
    """Add this to a remote ``perf_counter_ns`` timestamp to express it
    on the local monotonic timeline."""
    remote_wall, remote_perf = remote_anchor
    local_wall, local_perf = local_anchor
    return (remote_wall - remote_perf) - (local_wall - local_perf)


@dataclass
class SpanRecord:
    """One completed span.  ``start_ns``/``end_ns`` are monotonic
    timestamps on the *recording* process's clock until alignment."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    detail: str
    start_ns: int
    end_ns: int
    pid: int
    tid: int = 0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "detail": self.detail,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(**data)


def events_to_spans(
    events: Iterable,
    trace_id: str,
    parent_span_id: Optional[str],
    pid: Optional[int] = None,
) -> list[SpanRecord]:
    """Convert :class:`~repro.instrument.timetrace.TraceEvent` records
    (scoped, hence properly nested) into a parented span forest.

    Events are sorted by ``(start, -duration)`` so enclosing scopes come
    first; a containment stack then assigns each event the innermost
    still-open scope as parent.  Top-level events get *parent_span_id*
    (the service-side attempt span), which stitches the worker tree into
    the request trace.
    """
    pid = os.getpid() if pid is None else pid
    spans: list[SpanRecord] = []
    stack: list[tuple[int, str]] = []  # (end_ns, span_id)
    ordered = sorted(
        events, key=lambda e: (e.start_ns, -e.duration_ns)
    )
    for ev in ordered:
        end_ns = ev.start_ns + ev.duration_ns
        while stack and end_ns > stack[-1][0]:
            stack.pop()
        parent = stack[-1][1] if stack else parent_span_id
        span_id = new_span_id()
        spans.append(
            SpanRecord(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent,
                name=ev.name,
                detail=ev.detail,
                start_ns=ev.start_ns,
                end_ns=end_ns,
                pid=pid,
                tid=getattr(ev, "tid", 0),
            )
        )
        stack.append((end_ns, span_id))
    return spans


class RequestTrace:
    """Parent-side builder of one request's cross-process trace."""

    def __init__(
        self, trace_id: str, request_id: Optional[str] = None
    ) -> None:
        self.trace_id = trace_id
        self.request_id = request_id
        self.spans: list[SpanRecord] = []
        self.root_span_id = new_span_id()
        self._anchor = clock_anchor()
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        detail: str = "",
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
    ) -> str:
        """Record one parent-process span (monotonic local timestamps);
        defaults to a child of the root request span."""
        sid = span_id or new_span_id()
        self.spans.append(
            SpanRecord(
                trace_id=self.trace_id,
                span_id=sid,
                parent_id=(
                    parent_id
                    if parent_id is not None
                    else self.root_span_id
                ),
                name=name,
                detail=detail,
                start_ns=start_ns,
                end_ns=max(start_ns, end_ns),
                pid=self._pid,
            )
        )
        return sid

    def close(
        self, name: str, start_ns: int, end_ns: int, detail: str = ""
    ) -> None:
        """Record the root span covering the whole request."""
        self.spans.append(
            SpanRecord(
                trace_id=self.trace_id,
                span_id=self.root_span_id,
                parent_id=None,
                name=name,
                detail=detail,
                start_ns=start_ns,
                end_ns=max(start_ns, end_ns),
                pid=self._pid,
            )
        )

    # ------------------------------------------------------------------
    def merge_worker_spans(
        self,
        span_dicts: Iterable[dict],
        worker_anchor: tuple[int, int],
        parent_span_id: str,
        clamp_start_ns: int,
        clamp_end_ns: int,
    ) -> int:
        """Align a worker's spans onto the parent timeline and adopt
        them under *parent_span_id* (the attempt span).

        The wall/monotonic anchor pair shipped in the
        :class:`~repro.service.request.WorkOutcome` gives the clock
        offset; after shifting, spans are clamped into the attempt
        interval so nesting stays monotonic even when the wall clocks
        disagree by more than the pipe latency.  Returns the number of
        spans adopted.
        """
        offset = clock_offset_ns(worker_anchor, self._anchor)
        adopted = 0
        for data in span_dicts:
            span = SpanRecord.from_dict(data)
            span.start_ns += offset
            span.end_ns += offset
            span.start_ns = min(
                max(span.start_ns, clamp_start_ns), clamp_end_ns
            )
            span.end_ns = min(
                max(span.end_ns, span.start_ns), clamp_end_ns
            )
            if span.parent_id is None:
                span.parent_id = parent_span_id
            self.spans.append(span)
            adopted += 1
        return adopted

    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """One ``about://tracing`` / Perfetto JSON object for this
        request, with real OS pids and span ids in ``args`` (the ids are
        what the integration tests verify parentage with)."""
        if not self.spans:
            return {"traceEvents": [], "trace_id": self.trace_id}
        origin = min(s.start_ns for s in self.spans)
        events: list[dict] = []
        pids = []
        for span in sorted(
            self.spans, key=lambda s: (s.start_ns, -(s.end_ns - s.start_ns))
        ):
            if span.pid not in pids:
                pids.append(span.pid)
            entry = {
                "ph": "X",
                "pid": span.pid,
                "tid": span.tid,
                "ts": (span.start_ns - origin) / 1000.0,
                "dur": (span.end_ns - span.start_ns) / 1000.0,
                "name": span.name,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                },
            }
            if span.detail:
                entry["args"]["detail"] = span.detail
            events.append(entry)
        for pid in pids:
            role = (
                "miniclang-serve (parent)"
                if pid == self._pid
                else f"miniclang-worker (pid {pid})"
            )
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": role},
                }
            )
        return {
            "traceEvents": events,
            "trace_id": self.trace_id,
            "request_id": self.request_id,
        }

    def to_chrome_json(self, indent: int | None = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent)


@dataclass
class TraceRecorder:
    """Sink for completed request traces.

    With ``directory`` set (``miniclang-serve -ftrace-requests[=DIR]``)
    every finished request writes ``DIR/<request_id>.trace.json``; the
    in-memory ``traces`` list keeps the most recent ones either way so
    library callers and tests can inspect them without touching disk.
    """

    directory: Optional[str] = None
    keep: int = 64
    traces: list[RequestTrace] = field(default_factory=list)
    written: list[str] = field(default_factory=list)

    def record(self, trace: RequestTrace) -> Optional[str]:
        self.traces.append(trace)
        del self.traces[: -self.keep]
        if self.directory is None:
            return None
        os.makedirs(self.directory, exist_ok=True)
        safe_id = (trace.request_id or trace.trace_id).replace(
            os.sep, "_"
        )
        path = os.path.join(self.directory, f"{safe_id}.trace.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(trace.to_chrome_json(indent=1))
        self.written.append(path)
        return path
