"""End-to-end service telemetry: the three layers the compile service
exports, modelled on the production observability stack around clang
tooling:

==================  =====================================  ============
Layer               Real-world counterpart                 Module
==================  =====================================  ============
request tracing     OpenTelemetry span/context
                    propagation; clang ``-ftime-trace``
                    per-invocation JSON; clangd request
                    tracing                                ``tracing``
metrics registry    Prometheus client library
                    (counters/gauges/histograms, text
                    exposition, fixed-bucket quantiles)    ``metrics``
structured events   JSONL access/lifecycle logs keyed by
                    trace id                               ``events``
==================  =====================================  ============

The package is pure stdlib and import-cheap; the service only pays for
a layer when its flag (``-ftrace-requests``, ``--metrics-json``,
``--log-jsonl``) or config field turns it on — except the metrics
registry, which is always live (bucket increments are too cheap to
gate, the same stance as :mod:`repro.instrument.stats`).
"""

from repro.instrument.telemetry.events import EventLog, read_jsonl
from repro.instrument.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.instrument.telemetry.tracing import (
    RequestTrace,
    SpanRecord,
    TraceRecorder,
    clock_anchor,
    clock_offset_ns,
    events_to_spans,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestTrace",
    "SpanRecord",
    "TraceRecorder",
    "clock_anchor",
    "clock_offset_ns",
    "events_to_spans",
    "new_span_id",
    "new_trace_id",
    "read_jsonl",
]
