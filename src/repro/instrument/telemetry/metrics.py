"""Service metrics: counters, gauges, and log-bucketed histograms.

The :class:`MetricsRegistry` is the Prometheus-client analogue of the
LLVM-style :mod:`repro.instrument.stats` registry: where statistics are
process-global monotone counters for *compiler* work, metrics describe
*service* behaviour — request latency distributions, queue depth, breaker
transitions — with label dimensions and quantile estimates.

Design constraints, in order:

* **exact cross-process merging** — histograms use *fixed* bucket
  boundaries (log-spaced, chosen at registration), so merging two
  histograms is element-wise addition of bucket counts: associative,
  commutative, and lossless.  Workers snapshot their registry into each
  :class:`~repro.service.request.WorkOutcome` and the service parent
  folds it in with :meth:`MetricsRegistry.merge` — the merged p99 is
  exactly the p99 of the union stream (to bucket resolution);
* **bounded error quantiles** — :meth:`Histogram.quantile` returns the
  upper boundary of the bucket holding the target rank, so the estimate
  is within one bucket width of the exact order statistic (the classic
  Prometheus ``histogram_quantile`` guarantee);
* **two export formats** — :meth:`MetricsRegistry.snapshot` (JSON, the
  machine-readable artifact ``--metrics-json`` archives and
  ``tools/service_bench.py`` reads) and
  :meth:`MetricsRegistry.render_prometheus` (text exposition format for
  a scrape endpoint or ``--metrics-prom``).

Everything is single-threaded plain python (the service event loop owns
the registry; workers own their private per-payload registries), so no
locking is needed anywhere.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, Optional, Sequence

#: default latency bucket boundaries in seconds: log-spaced 100us..60s.
#: Fixed at import time so every process buckets identically and
#: histogram merges are exact.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: the quantiles every histogram snapshot precomputes
SNAPSHOT_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def _label_key(
    label_names: tuple[str, ...], values: dict[str, str]
) -> tuple[str, ...]:
    missing = set(label_names) - set(values)
    extra = set(values) - set(label_names)
    if missing or extra:
        raise ValueError(
            f"labels {sorted(values)} do not match declared "
            f"label names {list(label_names)}"
        )
    return tuple(str(values[name]) for name in label_names)


class _Metric:
    """Base: one named metric family with 0+ label dimensions."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._series: dict[tuple[str, ...], object] = {}

    # -- series management ---------------------------------------------
    def labels(self, **values: str):
        """The series cell for one label-value combination (created on
        first use, like prometheus_client)."""
        key = _label_key(self.label_names, values)
        cell = self._series.get(key)
        if cell is None:
            cell = self._make_cell()
            self._series[key] = cell
        return cell

    def _default_cell(self):
        """The single series of a label-free metric."""
        if self.label_names:
            raise ValueError(
                f"metric {self.name} has labels "
                f"{list(self.label_names)}; use .labels(...)"
            )
        return self.labels()

    def _make_cell(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def series(self) -> Iterator[tuple[dict[str, str], object]]:
        for key, cell in sorted(self._series.items()):
            yield dict(zip(self.label_names, key)), cell


class _CounterCell:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Counter(_Metric):
    """Monotonically increasing count (``_total`` convention)."""

    kind = "counter"

    def _make_cell(self) -> _CounterCell:
        return _CounterCell()

    def inc(self, n: float = 1.0) -> None:
        self._default_cell().inc(n)

    @property
    def value(self) -> float:
        return self._default_cell().value


class _GaugeCell:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Gauge(_Metric):
    """A value that goes up and down (queue depth, in-flight work)."""

    kind = "gauge"

    def _make_cell(self) -> _GaugeCell:
        return _GaugeCell()

    def set(self, v: float) -> None:
        self._default_cell().set(v)

    def inc(self, n: float = 1.0) -> None:
        self._default_cell().inc(n)

    def dec(self, n: float = 1.0) -> None:
        self._default_cell().dec(n)

    @property
    def value(self) -> float:
        return self._default_cell().value


class _HistogramCell:
    """One histogram series: fixed boundaries + per-bucket counts.

    ``counts[i]`` counts observations in ``(bounds[i-1], bounds[i]]``;
    ``counts[-1]`` is the overflow bucket ``(bounds[-1], +Inf)``.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    # ------------------------------------------------------------------
    def quantile_bounds(self, q: float) -> tuple[float, float]:
        """The ``(lo, hi]`` bucket interval containing the *q*-quantile
        rank; the exact order statistic is guaranteed to lie within it
        (``hi`` is ``+inf`` for the overflow bucket)."""
        if self.total == 0:
            return (0.0, 0.0)
        rank = max(1, min(self.total, -(-q * self.total // 1)))
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else float("inf")
                )
                return (lo, hi)
        return (self.bounds[-1], float("inf"))  # pragma: no cover

    def quantile(self, q: float) -> float:
        """Upper bucket boundary holding the *q*-quantile rank (the
        estimate is within one bucket width of exact).  The overflow
        bucket reports the largest finite boundary, Prometheus-style."""
        lo, hi = self.quantile_bounds(q)
        if hi == float("inf"):
            return self.bounds[-1]
        return hi

    def percentiles(self) -> dict[str, float]:
        return {
            name: self.quantile(q) for name, q in SNAPSHOT_QUANTILES
        }

    def merge_counts(
        self, counts: Sequence[int], total: int, sum_: float
    ) -> None:
        if len(counts) != len(self.counts):
            raise ValueError(
                "histogram merge with mismatched bucket layout"
            )
        for i, c in enumerate(counts):
            self.counts[i] += c
        self.total += total
        self.sum += sum_


class Histogram(_Metric):
    """Log-bucketed distribution with exact merge semantics."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        if not bounds:
            raise ValueError("at least one bucket boundary required")
        self.bounds = bounds

    def _make_cell(self) -> _HistogramCell:
        return _HistogramCell(self.bounds)

    def observe(self, value: float) -> None:
        self._default_cell().observe(value)

    def quantile(self, q: float) -> float:
        return self._default_cell().quantile(q)


class MetricsRegistry:
    """Registry of every metric family one process (or one service
    instance) exports.  Families are created on first use and reused on
    re-registration (kind and label names must agree)."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- registration ---------------------------------------------------
    def _register(self, cls, name, help, label_names, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, label_names, **kwargs)
            self._metrics[name] = metric
            return metric
        if metric.kind != cls.kind:
            raise ValueError(
                f"metric {name} already registered as {metric.kind}"
            )
        if metric.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name} re-registered with different labels"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._register(
            Histogram, name, help, tuple(labels), buckets=buckets
        )
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name} re-registered with different buckets"
            )
        return metric

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- JSON snapshot --------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable view of every series (the ``--metrics-json``
        artifact and the merge wire format)."""
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry: dict = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
                "series": [],
            }
            if metric.kind == "histogram":
                entry["bounds"] = list(metric.bounds)
            for label_values, cell in metric.series():
                row: dict = {"labels": label_values}
                if metric.kind == "histogram":
                    row["count"] = cell.total
                    row["sum"] = round(cell.sum, 9)
                    row["buckets"] = list(cell.counts)
                    row.update(
                        {
                            k: v
                            for k, v in cell.percentiles().items()
                        }
                    )
                else:
                    row["value"] = cell.value
                entry["series"].append(row)
            out[name] = entry
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counter and histogram series add (histograms require identical
        bucket boundaries — element-wise addition is then *exact*);
        gauges take the maximum (a merged instantaneous value has no
        single truth; max preserves the high-water mark).
        """
        for name, entry in snapshot.items():
            labels = tuple(entry.get("labels", ()))
            kind = entry.get("type")
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""), labels)
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""), labels)
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    entry.get("help", ""),
                    labels,
                    buckets=entry["bounds"],
                )
            else:
                raise ValueError(f"unknown metric type {kind!r}")
            for row in entry.get("series", ()):
                cell = metric.labels(**row.get("labels", {}))
                if kind == "counter":
                    cell.inc(row["value"])
                elif kind == "gauge":
                    cell.set(max(cell.value, row["value"]))
                else:
                    cell.merge_counts(
                        row["buckets"], row["count"], row["sum"]
                    )

    # -- Prometheus text exposition ------------------------------------
    @staticmethod
    def _fmt_labels(label_values: dict[str, str]) -> str:
        if not label_values:
            return ""
        inner = ",".join(
            f'{k}="{v}"' for k, v in sorted(label_values.items())
        )
        return "{" + inner + "}"

    @staticmethod
    def _fmt_number(v: float) -> str:
        if isinstance(v, float) and v.is_integer():
            return str(int(v))
        return repr(v)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for label_values, cell in metric.series():
                if metric.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(
                        metric.bounds, cell.counts
                    ):
                        cumulative += count
                        le = dict(label_values)
                        le["le"] = self._fmt_number(bound)
                        lines.append(
                            f"{name}_bucket{self._fmt_labels(le)} "
                            f"{cumulative}"
                        )
                    le = dict(label_values)
                    le["le"] = "+Inf"
                    lines.append(
                        f"{name}_bucket{self._fmt_labels(le)} "
                        f"{cell.total}"
                    )
                    lines.append(
                        f"{name}_sum{self._fmt_labels(label_values)} "
                        f"{self._fmt_number(round(cell.sum, 9))}"
                    )
                    lines.append(
                        f"{name}_count{self._fmt_labels(label_values)} "
                        f"{cell.total}"
                    )
                else:
                    lines.append(
                        f"{name}{self._fmt_labels(label_values)} "
                        f"{self._fmt_number(cell.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
