"""Structured JSONL event log for the compile service.

One machine-parseable JSON object per line, one line per request
lifecycle event — the greppable correlation layer between the metrics
registry (aggregates, no identities) and the per-request traces (full
detail, heavyweight).  Every record carries the ``request_id`` and, when
tracing is active, the ``trace_id``, so a slow request found in the log
links directly to its merged Chrome trace.

Record shape (stable keys first, event-specific fields after)::

    {"ts": 1723110712.123456, "event": "dispatch", "request_id":
     "r00001", "trace_id": "6f1f...", "attempt": 0, "worker": 3, ...}

The writer is append-only and line-buffered (each record is flushed), so
a crashed service leaves a valid prefix.  ``None``-valued fields are
dropped rather than serialized, keeping lines tight.
"""

from __future__ import annotations

import json
import time
from typing import Callable, IO, Optional


class EventLog:
    """JSONL sink over a path or an open stream.

    ``EventLog(path=...)`` owns and closes the file;
    ``EventLog(stream=...)`` writes to a caller-owned stream (tests use
    ``io.StringIO``).  ``clock`` is injected for deterministic tests.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if (path is None) == (stream is None):
            raise ValueError("exactly one of path/stream is required")
        self._owns = path is not None
        self._stream = (
            open(path, "a", encoding="utf-8") if path else stream
        )
        self._clock = clock
        self.emitted = 0

    def emit(self, event: str, **fields) -> None:
        """Append one event record; ``None`` values are dropped."""
        if self._stream is None:
            return
        record: dict = {"ts": round(self._clock(), 6), "event": event}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        self._stream.write(
            json.dumps(record, separators=(",", ":")) + "\n"
        )
        self._stream.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._stream is not None and self._owns:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str) -> list[dict]:
    """Parse an event-log file back into records (test/tooling helper)."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
