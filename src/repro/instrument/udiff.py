"""Pure-python unified-diff engine for ``-print-changed``.

Implements Myers' greedy O((N+M)D) shortest-edit-script algorithm
("An O(ND) Difference Algorithm and Its Variations", 1986) — the same
algorithm GNU diff and git use — and renders classic unified hunks::

    --- main before mem2reg
    +++ main after mem2reg
    @@ -1,4 +1,3 @@
     entry:
    -  %i = alloca i32
       ...

Deliberately dependency-free (no :mod:`difflib`) so the diff output is
fully under our control: IR dumps are line-oriented and the printer is
deterministic (see :mod:`repro.ir.printer`), which keeps these diffs
byte-stable across runs and usable in snapshot tests.
"""

from __future__ import annotations

from typing import Iterator, Sequence

#: edit-script entry: (tag, old_index | None, new_index | None) where tag
#: is " " (common), "-" (only in old) or "+" (only in new)
EditOp = tuple[str, int | None, int | None]


def _myers_matches(a: Sequence[str], b: Sequence[str]) -> list[tuple[int, int]]:
    """Index pairs (i, j) with ``a[i] == b[j]`` forming a longest common
    subsequence, via Myers' greedy forward search with backtracking."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return []
    v: dict[int, int] = {1: 0}
    trace: list[dict[int, int]] = []
    solution_d = None
    for d in range(n + m + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, 0) < v.get(k + 1, 0)):
                x = v.get(k + 1, 0)
            else:
                x = v.get(k - 1, 0) + 1
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                solution_d = d
                break
        if solution_d is not None:
            break
    assert solution_d is not None
    # Backtrack through the saved V states collecting diagonal moves.
    matches: list[tuple[int, int]] = []
    x, y = n, m
    for d in range(solution_d, -1, -1):
        vd = trace[d]
        k = x - y
        if k == -d or (k != d and vd.get(k - 1, 0) < vd.get(k + 1, 0)):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = vd.get(prev_k, 0)
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:
            matches.append((x - 1, y - 1))
            x -= 1
            y -= 1
        if d > 0:
            x, y = prev_x, prev_y
    matches.reverse()
    return matches


def edit_script(a: Sequence[str], b: Sequence[str]) -> list[EditOp]:
    """The full line-by-line edit script turning *a* into *b*."""
    script: list[EditOp] = []
    ai = bi = 0
    for ma, mb in _myers_matches(a, b):
        while ai < ma:
            script.append(("-", ai, None))
            ai += 1
        while bi < mb:
            script.append(("+", None, bi))
            bi += 1
        script.append((" ", ai, bi))
        ai += 1
        bi += 1
    while ai < len(a):
        script.append(("-", ai, None))
        ai += 1
    while bi < len(b):
        script.append(("+", None, bi))
        bi += 1
    return script


def _hunk_ranges(
    script: list[EditOp], context: int
) -> Iterator[tuple[int, int]]:
    """Half-open script index ranges, each covering a run of changes plus
    *context* common lines, with overlapping/adjacent runs merged."""
    changed = [i for i, (tag, _, _) in enumerate(script) if tag != " "]
    if not changed:
        return
    start = max(0, changed[0] - context)
    end = min(len(script), changed[0] + context + 1)
    for idx in changed[1:]:
        if idx - context <= end:
            end = min(len(script), idx + context + 1)
        else:
            yield start, end
            start = max(0, idx - context)
            end = min(len(script), idx + context + 1)
    yield start, end


def unified_diff(
    a: Sequence[str],
    b: Sequence[str],
    fromfile: str = "before",
    tofile: str = "after",
    context: int = 3,
) -> str:
    """Unified diff of two line sequences; empty string when equal."""
    if list(a) == list(b):
        return ""
    script = edit_script(a, b)
    lines = [f"--- {fromfile}", f"+++ {tofile}"]
    for start, end in _hunk_ranges(script, context):
        hunk = script[start:end]
        old_count = sum(1 for tag, _, _ in hunk if tag in (" ", "-"))
        new_count = sum(1 for tag, _, _ in hunk if tag in (" ", "+"))
        old_start = next(
            (i for tag, i, _ in hunk if i is not None), 0
        ) + (1 if old_count else 0)
        new_start = next(
            (j for tag, _, j in hunk if j is not None), 0
        ) + (1 if new_count else 0)
        lines.append(
            f"@@ -{old_start},{old_count} +{new_start},{new_count} @@"
        )
        for tag, i, j in hunk:
            text = a[i] if i is not None else b[j]  # type: ignore[index]
            lines.append(f"{tag}{text}")
    return "\n".join(lines)
