"""LLVM-style debug counters (``llvm/Support/DebugCounter.h``).

A :class:`DebugCounter` names one *kind* of transformation site inside a
pass (e.g. ``unroll-transform`` — each annotated loop LoopUnroll
considers).  Every site asks :meth:`DebugCounter.should_execute` before
transforming; with no override set the answer is always yes and the call
is one comparison.  ``-debug-counter=NAME=SKIP[,COUNT]`` arms the
counter: the first SKIP occurrences are suppressed, the next COUNT (all
remaining when omitted) execute, and everything after is suppressed
again — LLVM's exact window semantics, which is what lets a bisection
narrow a miscompile to one transformation *site* once ``-opt-bisect``
has narrowed it to a pass.

Counters live in a process-global :data:`DEBUG_COUNTERS` registry (like
:data:`repro.instrument.stats.STATS`).  The registry creates counters on
first mention from either side — pass module import or driver spec
parsing — so flag handling does not depend on import order.
"""

from __future__ import annotations

from typing import Iterator, Optional


class DebugCounter:
    """One named, optionally-windowed transformation-site counter."""

    __slots__ = ("name", "desc", "occurrences", "skip", "limit")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        #: how many times :meth:`should_execute` has been asked
        self.occurrences = 0
        #: suppress the first ``skip`` occurrences; ``None`` = not armed
        self.skip: Optional[int] = None
        #: execute ``limit`` occurrences after the skipped prefix;
        #: ``None`` = all remaining
        self.limit: Optional[int] = None

    @property
    def is_set(self) -> bool:
        return self.skip is not None

    def configure(self, skip: int, limit: int | None = None) -> None:
        if skip < 0 or (limit is not None and limit < 0):
            raise ValueError(
                f"debug counter '{self.name}': skip/count must be >= 0"
            )
        self.skip = skip
        self.limit = limit
        self.occurrences = 0

    def unset(self) -> None:
        self.skip = None
        self.limit = None
        self.occurrences = 0

    def should_execute(self) -> bool:
        """Ask-and-advance: does the current occurrence execute?"""
        index = self.occurrences
        self.occurrences += 1
        if self.skip is None:
            return True
        if index < self.skip:
            return False
        if self.limit is None:
            return True
        return index < self.skip + self.limit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        window = (
            f"skip={self.skip},count={self.limit}" if self.is_set else "unset"
        )
        return f"DebugCounter({self.name}, {window}, seen={self.occurrences})"


class DebugCounterRegistry:
    """Process-global name -> :class:`DebugCounter` map."""

    def __init__(self) -> None:
        self._counters: dict[str, DebugCounter] = {}

    def get(self, name: str, desc: str = "") -> DebugCounter:
        counter = self._counters.get(name)
        if counter is None:
            counter = DebugCounter(name, desc)
            self._counters[name] = counter
        elif desc and not counter.desc:
            counter.desc = desc
        return counter

    def apply_spec(self, spec: str) -> DebugCounter:
        """Parse one ``NAME=SKIP[,COUNT]`` driver spec and arm the
        counter."""
        name, sep, window = spec.partition("=")
        name = name.strip()
        if not sep or not name or not window.strip():
            raise ValueError(
                f"invalid -debug-counter spec '{spec}' "
                "(expected NAME=SKIP[,COUNT])"
            )
        parts = [p.strip() for p in window.split(",")]
        if len(parts) > 2:
            raise ValueError(
                f"invalid -debug-counter spec '{spec}' "
                "(expected NAME=SKIP[,COUNT])"
            )
        try:
            skip = int(parts[0])
            limit = int(parts[1]) if len(parts) == 2 else None
        except ValueError:
            raise ValueError(
                f"invalid -debug-counter spec '{spec}': "
                "SKIP and COUNT must be integers"
            ) from None
        counter = self.get(name)
        counter.configure(skip, limit)
        return counter

    def unset_all(self) -> None:
        """Disarm and rewind every counter (test isolation)."""
        for counter in self._counters.values():
            counter.unset()

    def __iter__(self) -> Iterator[DebugCounter]:
        return iter(self._counters.values())

    def __len__(self) -> int:
        return len(self._counters)


#: the process-wide registry (LLVM keeps one ``DebugCounter`` singleton)
DEBUG_COUNTERS = DebugCounterRegistry()


def get_debug_counter(name: str, desc: str = "") -> DebugCounter:
    """Module-scope registration helper (LLVM's ``DEBUG_COUNTER`` macro)."""
    return DEBUG_COUNTERS.get(name, desc)
