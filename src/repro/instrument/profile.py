"""Execution profiles: dynamic instruction counts, per-thread
utilization and barrier behaviour of interpreted programs.

Replaces the interpreter's former ad-hoc ``instruction_count`` integer
with a structured :class:`ExecutionProfile`:

* every :class:`~repro.interp.interpreter.ExecutionContext` (one logical
  OpenMP thread) registers itself and counts retired instructions
  locally — the hot ``step()`` path stays a single attribute increment;
* with ``detailed=True`` the interpreter additionally attributes each
  retired instruction to its ``(function, basic block)``, from which
  :meth:`ExecutionProfile.loop_report` aggregates *per-loop dynamic
  instruction counts* using the mid-end ``LoopInfo`` analysis;
* the simulated OpenMP runtime records fork/barrier events here
  (:mod:`repro.runtime.kmp` / :mod:`repro.runtime.team`), giving
  per-thread barrier-wait counts and team utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.interp.interpreter import ExecutionContext
    from repro.ir.module import Module


@dataclass
class ThreadProfile:
    """Aggregated per-gtid execution counters."""

    gtid: int
    instructions: int = 0
    barrier_waits: int = 0


@dataclass
class LoopProfile:
    """Dynamic instruction count of one natural loop."""

    function: str
    header: str
    depth: int
    instructions: int
    blocks: int


class ExecutionProfile:
    """All dynamic execution counters of one interpreter instance."""

    def __init__(self, detailed: bool = False) -> None:
        #: when True, per-(function, block) attribution is collected
        self.detailed = detailed
        self.contexts: list["ExecutionContext"] = []
        #: (function name, block name) -> retired instruction count
        self.block_counts: dict[tuple[str, str], int] = {}
        #: completed whole-team barrier release episodes
        self.barrier_episodes = 0
        #: parallel regions forked
        self.fork_count = 0

    # ------------------------------------------------------------------
    # Collection (called from the interpreter / runtime)
    # ------------------------------------------------------------------
    def register(self, ctx: "ExecutionContext") -> None:
        self.contexts.append(ctx)

    def count_block(self, fn_name: str, block_name: str) -> None:
        key = (fn_name, block_name)
        self.block_counts[key] = self.block_counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def total_instructions(self) -> int:
        return sum(ctx.instructions_retired for ctx in self.contexts)

    @property
    def total_barrier_waits(self) -> int:
        return sum(ctx.barrier_waits for ctx in self.contexts)

    def thread_profiles(self) -> list[ThreadProfile]:
        """One entry per gtid (a gtid may have run several contexts)."""
        by_gtid: dict[int, ThreadProfile] = {}
        for ctx in self.contexts:
            tp = by_gtid.setdefault(ctx.gtid, ThreadProfile(ctx.gtid))
            tp.instructions += ctx.instructions_retired
            tp.barrier_waits += ctx.barrier_waits
        return [by_gtid[g] for g in sorted(by_gtid)]

    def utilization(self) -> dict[int, float]:
        """Fraction of all retired instructions executed per gtid — the
        deterministic-interpreter analogue of thread utilization."""
        total = self.total_instructions
        if total == 0:
            return {}
        return {
            tp.gtid: tp.instructions / total
            for tp in self.thread_profiles()
        }

    def function_counts(self) -> dict[str, int]:
        """Per-function dynamic instruction counts (detailed mode)."""
        counts: dict[str, int] = {}
        for (fn_name, _), n in self.block_counts.items():
            counts[fn_name] = counts.get(fn_name, 0) + n
        return counts

    def loop_report(self, module: "Module") -> list[LoopProfile]:
        """Per-loop dynamic instruction counts (detailed mode).

        Attributes each block's count to the innermost natural loop
        containing it, per the mid-end ``LoopInfo`` of the *executed*
        module (so unrolled/tiled loop structure is what is reported).
        """
        from repro.midend.loopinfo import LoopInfo

        report: list[LoopProfile] = []
        for fn in module.functions.values():
            if fn.is_declaration or not fn.blocks:
                continue
            loops = LoopInfo(fn).innermost_first()
            if not loops:
                continue
            claimed: set[str] = set()
            per_loop: list[LoopProfile] = []
            for loop in loops:
                instructions = 0
                blocks = 0
                for block in loop.blocks:
                    if block.name in claimed:
                        continue
                    claimed.add(block.name)
                    blocks += 1
                    instructions += self.block_counts.get(
                        (fn.name, block.name), 0
                    )
                per_loop.append(
                    LoopProfile(
                        function=fn.name,
                        header=loop.header.name,
                        depth=sum(
                            1
                            for other in loops
                            if other is not loop
                            and other.contains(loop.header)
                        )
                        + 1,
                        instructions=instructions,
                        blocks=blocks,
                    )
                )
            # Counts are disjoint: an outer loop's figure covers only the
            # blocks not claimed by its inner loops (innermost first).
            report.extend(per_loop)
        return report

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_json(self, module: "Module" = None) -> dict[str, Any]:
        data: dict[str, Any] = {
            "total_instructions": self.total_instructions,
            "fork_count": self.fork_count,
            "barrier_episodes": self.barrier_episodes,
            "threads": [
                {
                    "gtid": tp.gtid,
                    "instructions": tp.instructions,
                    "barrier_waits": tp.barrier_waits,
                }
                for tp in self.thread_profiles()
            ],
            "utilization": {
                str(gtid): round(share, 6)
                for gtid, share in self.utilization().items()
            },
        }
        if self.detailed:
            data["functions"] = dict(
                sorted(self.function_counts().items())
            )
            if module is not None:
                data["loops"] = [
                    {
                        "function": lp.function,
                        "header": lp.header,
                        "depth": lp.depth,
                        "instructions": lp.instructions,
                    }
                    for lp in self.loop_report(module)
                ]
        return data

    def render_text(self, module: "Module" = None) -> str:
        lines = [
            "=== execution profile ===",
            f"total instructions: {self.total_instructions}",
            f"parallel regions:   {self.fork_count}",
            f"barrier episodes:   {self.barrier_episodes}",
        ]
        threads = self.thread_profiles()
        if threads:
            util = self.utilization()
            lines.append("per-thread:")
            for tp in threads:
                share = util.get(tp.gtid, 0.0)
                lines.append(
                    f"  gtid {tp.gtid}: {tp.instructions} instructions"
                    f" ({share:.1%}), {tp.barrier_waits} barrier waits"
                )
        if self.detailed:
            fn_counts = self.function_counts()
            if fn_counts:
                lines.append("per-function:")
                for name in sorted(fn_counts):
                    lines.append(f"  @{name}: {fn_counts[name]}")
            if module is not None:
                loops = self.loop_report(module)
                if loops:
                    lines.append("per-loop:")
                    for lp in loops:
                        indent = "  " * lp.depth
                        lines.append(
                            f"  {indent}@{lp.function} loop at "
                            f"{lp.header}: {lp.instructions} instructions"
                        )
        return "\n".join(lines)
