"""Hierarchical scoped timing exported as Chrome ``chrome://tracing`` JSON.

Models clang's ``-ftime-trace`` (``llvm/Support/TimeProfiler``): compiler
layers open a :func:`time_trace_scope` around each phase of paper Fig. 1
(preprocess, parse, Sema directive handling, per-function CodeGen, each
mid-end pass, interpretation); nesting is reconstructed by the trace
viewer from the begin/duration intervals of "X" (complete) events.

Profiling is *globally* enabled/disabled so that instrumented modules do
not need a profiler handle threaded through every constructor — exactly
how LLVM's ``TimeTraceProfilerInstance`` works.  When disabled,
:func:`time_trace_scope` returns a shared no-op context manager, keeping
the cost of an instrumented call site to one module-global load.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TraceEvent:
    """One completed scope (Chrome "X" event)."""

    name: str
    detail: str
    start_ns: int
    duration_ns: int
    tid: int = 0


class TimeTraceScope:
    """Context manager recording one hierarchical timing interval."""

    __slots__ = ("profiler", "name", "detail", "_start_ns")

    def __init__(
        self, profiler: "TimeTraceProfiler", name: str, detail: str = ""
    ) -> None:
        self.profiler = profiler
        self.name = name
        self.detail = detail
        self._start_ns = 0

    def __enter__(self) -> "TimeTraceScope":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self.profiler.add_complete_event(
            self.name, self.detail, self._start_ns, time.perf_counter_ns()
        )


class _NullScope:
    """Shared no-op scope returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SCOPE = _NullScope()


@dataclass
class TimeTraceProfiler:
    """Collects :class:`TraceEvent` objects and renders Chrome JSON.

    ``granularity_us`` drops events shorter than the threshold from the
    JSON output (clang's ``-ftime-trace-granularity``, default 500us
    there; 0 here so tests see every scope).
    """

    granularity_us: int = 0
    events: list[TraceEvent] = field(default_factory=list)
    epoch_ns: int = field(default_factory=time.perf_counter_ns)

    def scope(self, name: str, detail: str = "") -> TimeTraceScope:
        return TimeTraceScope(self, name, detail)

    def add_complete_event(
        self, name: str, detail: str, start_ns: int, end_ns: int
    ) -> None:
        self.events.append(
            TraceEvent(name, detail, start_ns, max(0, end_ns - start_ns))
        )

    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """The ``chrome://tracing`` / Perfetto object form."""
        trace_events = []
        for ev in self.events:
            if ev.duration_ns < self.granularity_us * 1000:
                continue
            entry = {
                "ph": "X",
                "pid": 1,
                "tid": ev.tid,
                "ts": (ev.start_ns - self.epoch_ns) / 1000.0,
                "dur": ev.duration_ns / 1000.0,
                "name": ev.name,
            }
            if ev.detail:
                entry["args"] = {"detail": ev.detail}
            trace_events.append(entry)
        trace_events.sort(key=lambda entry: (entry["ts"], -entry["dur"]))
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "miniclang"},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "thread_name",
                "args": {"name": "Compiler"},
            }
        )
        return {
            "traceEvents": trace_events,
            "beginningOfTime": self.epoch_ns // 1000,
        }

    def to_chrome_json(self, indent: int | None = None) -> str:
        return json.dumps(self.chrome_trace(), indent=indent)


#: the active profiler; ``None`` means tracing is off
_active: Optional[TimeTraceProfiler] = None


def enable_time_trace(granularity_us: int = 0) -> TimeTraceProfiler:
    """Turn tracing on (idempotent); returns the active profiler."""
    global _active
    if _active is None:
        _active = TimeTraceProfiler(granularity_us=granularity_us)
    return _active


def disable_time_trace() -> Optional[TimeTraceProfiler]:
    """Turn tracing off; returns the profiler that was collecting (if
    any) so the caller can export its events."""
    global _active
    profiler, _active = _active, None
    return profiler


def active_time_trace() -> Optional[TimeTraceProfiler]:
    return _active


def time_trace_scope(name: str, detail: str = ""):
    """The instrumentation entry point used throughout the compiler."""
    profiler = _active
    if profiler is None:
        return _NULL_SCOPE
    return TimeTraceScope(profiler, name, detail)
