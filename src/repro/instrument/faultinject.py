"""Deterministic fault injection (``-finject-fault=SITE[:N]``).

A *fault site* names one place in a pipeline layer where an internal
compiler bug could strike (lexer token formation, Sema directive
analysis, a mid-end pass body, one interpreter step, ...).  Each layer
calls :meth:`FaultRegistry.hit` at its site; with nothing armed the call
is one attribute check.  Arming a site makes exactly the N-th hit raise
:class:`InjectedFault` — a plain ``Exception`` subclass that no layer
treats as control flow — so tests and the CI sweep can *prove* that an
unexpected exception anywhere in the stack degrades into an internal
compiler error diagnostic with a crash reproducer instead of a raw
Python traceback.

Occurrence windows reuse the PR 2 :class:`~repro.instrument.debugcounter.
DebugCounter` machinery: ``SITE:N`` arms the site's counter with
``skip=N-1, count=1``, i.e. LLVM's exact ``-debug-counter`` window
semantics, which keeps the injection deterministic under round-robin
interleaving and repeatable across runs.

Sites are registered statically below (not lazily at first hit) so the
driver can enumerate them (``-print-fault-sites``) without compiling
anything — that enumeration is what the CI fault-injection sweep loops
over.
"""

from __future__ import annotations

from typing import Iterator

from repro.instrument.debugcounter import DebugCounter
from repro.instrument.stats import get_statistic

_FAULTS_INJECTED = get_statistic(
    "crash-recovery",
    "injected-faults",
    "Faults raised by -finject-fault sites",
)


class InjectedFault(Exception):
    """The deliberately-unexpected exception raised at an armed site."""

    def __init__(self, site: str, occurrence: int) -> None:
        super().__init__(
            f"injected fault at site '{site}' (occurrence {occurrence})"
        )
        self.site = site
        self.occurrence = occurrence


class FaultRegistry:
    """All fault sites in the process, in registration (pipeline) order."""

    def __init__(self) -> None:
        self._sites: dict[str, DebugCounter] = {}
        self._scopes: dict[str, str] = {}
        #: fast-path gate: ``hit`` is free when nothing is armed
        self.armed = False

    # ------------------------------------------------------------------
    def register(
        self, name: str, desc: str = "", scope: str = "pipeline"
    ) -> None:
        """*scope* partitions sites by where they can fire: "pipeline"
        sites are hit by any plain compile/run (the CLI fault sweep
        loops over exactly these); "service" sites only exist inside
        compile-service worker processes."""
        if name not in self._sites:
            self._sites[name] = DebugCounter(f"inject-{name}", desc)
            self._scopes[name] = scope

    def site_names(self, scope: str | None = None) -> list[str]:
        return [
            name
            for name in self._sites
            if scope is None or self._scopes[name] == scope
        ]

    def describe(self, name: str) -> str:
        return self._sites[name].desc

    def scope_of(self, name: str) -> str:
        return self._scopes[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._sites)

    # ------------------------------------------------------------------
    def arm_spec(self, spec: str) -> str:
        """Parse one ``SITE[:N]`` driver spec (N defaults to 1, the first
        hit) and arm the site.  Returns the site name."""
        name, sep, occurrence = spec.partition(":")
        name = name.strip()
        if name not in self._sites:
            valid = ", ".join(self._sites)
            raise ValueError(
                f"unknown fault site '{name}' (valid sites: {valid})"
            )
        if sep and occurrence.strip():
            try:
                n = int(occurrence)
            except ValueError:
                raise ValueError(
                    f"invalid -finject-fault spec '{spec}' "
                    "(expected SITE[:N] with integer N)"
                ) from None
        else:
            n = 1
        if n < 1:
            raise ValueError(
                f"invalid -finject-fault spec '{spec}': N must be >= 1"
            )
        self._sites[name].configure(skip=n - 1, limit=1)
        self.armed = True
        return name

    def disarm_all(self) -> None:
        for counter in self._sites.values():
            counter.unset()
        self.armed = False

    # ------------------------------------------------------------------
    def hit(self, name: str) -> None:
        """Site probe: raises :class:`InjectedFault` when the armed
        window covers this occurrence.  Callers gate on :attr:`armed`
        themselves on hot paths."""
        if not self.armed:
            return
        counter = self._sites.get(name)
        if counter is None or not counter.is_set:
            return
        # The armed window marks the occurrence that *faults*.
        if counter.should_execute():
            _FAULTS_INJECTED.inc()
            raise InjectedFault(name, counter.occurrences)


#: the process-wide registry, one site per pipeline layer
FAULTS = FaultRegistry()

FAULTS.register("lexer", "token formation in repro.lex.lexer.Lexer.lex")
FAULTS.register(
    "preprocessor",
    "preprocessed-token delivery in Preprocessor.lex_all",
)
FAULTS.register(
    "parser", "external-declaration parsing in Parser"
)
FAULTS.register(
    "sema-directive",
    "per-directive OpenMP semantic analysis (OpenMPSema.act_on_directive)",
)
FAULTS.register(
    "codegen-function", "per-function IR emission (CodeGenFunction)"
)
FAULTS.register(
    "midend-pass", "one pass-on-function execution in PassManager.run"
)
FAULTS.register(
    "interp-step", "one interpreter instruction step"
)
# Compile-service sites (repro.service): hit once per request inside a
# worker process, which makes worker-level failure modes — a crash that
# kills the whole process, a hang that overruns the parent's deadline,
# a representation-specific codegen bug — deterministically injectable
# per request/attempt.
FAULTS.register(
    "service-worker",
    "service worker request execution (contained as an ICE outcome)",
    scope="service",
)
FAULTS.register(
    "service-worker-exit",
    "service worker hard death (os._exit, simulating an OOM kill)",
    scope="service",
)
FAULTS.register(
    "service-worker-hang",
    "service worker hang (sleeps past any parent deadline)",
    scope="service",
)
FAULTS.register(
    "service-irbuilder",
    "IRBuilder-path request execution in a service worker",
    scope="service",
)
FAULTS.register(
    "service-shadow",
    "shadow-AST-path request execution in a service worker",
    scope="service",
)
# Storage sites (repro.cache.disk): a deterministic I/O shim inside the
# disk tier.  Each site simulates one physical failure mode — a torn
# write reaching disk, a full filesystem, silent bit rot on read, a
# failed rename or fsync — and is *contained by the tier itself*: the
# InjectedFault never escapes disk.py, so an armed storage site must
# degrade a compile to "slower" (miss / memory-only), never break it.
FAULTS.register(
    "storage-write-torn",
    "disk-tier write persists truncated bytes (torn write reaches disk)",
    scope="storage",
)
FAULTS.register(
    "storage-write-enospc",
    "disk-tier write fails with ENOSPC (filesystem full)",
    scope="storage",
)
FAULTS.register(
    "storage-read-corrupt",
    "disk-tier read returns bit-rotted bytes (checksum must catch it)",
    scope="storage",
)
FAULTS.register(
    "storage-rename-fail",
    "disk-tier atomic rename fails with EIO",
    scope="storage",
)
FAULTS.register(
    "storage-fsync-fail",
    "disk-tier fsync fails with EIO (durable mode only)",
    scope="storage",
)
