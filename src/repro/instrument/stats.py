"""LLVM ``-stats``-style named counters.

Any layer registers a counter once at module scope::

    from repro.instrument import get_statistic

    NODES_BUILT = get_statistic(
        "shadow", "nodes-built", "Shadow AST nodes constructed"
    )
    ...
    NODES_BUILT.inc()

and the registry renders the familiar aligned dump::

    ===-------------------------------------------------------------===
                          ... Statistics Collected ...
    ===-------------------------------------------------------------===
      142 shadow - Shadow AST nodes constructed

Counters are always live (an attribute increment costs nothing worth
gating); *reporting* is what the driver flag controls.  Per-compilation
deltas are taken with :meth:`StatsRegistry.snapshot` /
:meth:`StatsRegistry.delta_since` so library users get the counts of one
``compile_source`` call even though the registry is process-global, the
same way LLVM statistics accumulate per ``llvm::Context``.
"""

from __future__ import annotations

from typing import Iterator


class Statistic:
    """One named counter, owned by a component ("debug type" in LLVM)."""

    __slots__ = ("owner", "name", "desc", "value")

    def __init__(self, owner: str, name: str, desc: str = "") -> None:
        self.owner = owner
        self.name = name
        self.desc = desc
        self.value = 0

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}.{self.name}"

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Statistic({self.qualified_name}={self.value})"


class StatsRegistry:
    """Registry of every :class:`Statistic` in the process."""

    def __init__(self) -> None:
        self._stats: dict[str, Statistic] = {}

    def get(self, owner: str, name: str, desc: str = "") -> Statistic:
        """Return the counter, creating it on first use."""
        key = f"{owner}.{name}"
        stat = self._stats.get(key)
        if stat is None:
            stat = Statistic(owner, name, desc)
            self._stats[key] = stat
        return stat

    def __iter__(self) -> Iterator[Statistic]:
        return iter(self._stats.values())

    def __len__(self) -> int:
        return len(self._stats)

    # ------------------------------------------------------------------
    def values(self, *, nonzero_only: bool = True) -> dict[str, int]:
        return {
            s.qualified_name: s.value
            for s in self._stats.values()
            if s.value or not nonzero_only
        }

    def snapshot(self) -> dict[str, int]:
        """Current value of every counter (including zeros)."""
        return {s.qualified_name: s.value for s in self._stats.values()}

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Counters that advanced since *snapshot* (e.g. one compile)."""
        delta = {}
        for stat in self._stats.values():
            diff = stat.value - snapshot.get(stat.qualified_name, 0)
            if diff:
                delta[stat.qualified_name] = diff
        return delta

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.reset()

    # ------------------------------------------------------------------
    def render_text(self, values: dict[str, int] | None = None) -> str:
        """The LLVM ``-stats`` dump format."""
        if values is None:
            values = self.values()
        if not values:
            return ""
        rows = []
        for key in sorted(values):
            stat = self._stats.get(key)
            owner = stat.owner if stat is not None else key
            desc = (stat.desc or stat.name) if stat is not None else ""
            rows.append((values[key], owner, desc))
        value_width = max(len(str(v)) for v, _, _ in rows)
        owner_width = max(len(o) for _, o, _ in rows)
        lines = [
            "===" + "-" * 61 + "===",
            "                    ... Statistics Collected ...",
            "===" + "-" * 61 + "===",
        ]
        for value, owner, desc in rows:
            lines.append(
                f"{value:>{value_width}} "
                f"{owner:<{owner_width}} - {desc}"
            )
        return "\n".join(lines)

    def render_json(self, values: dict[str, int] | None = None) -> dict:
        if values is None:
            values = self.values()
        return dict(sorted(values.items()))


#: the process-wide registry (LLVM's ``StatisticInfo`` list)
STATS = StatsRegistry()


def get_statistic(owner: str, name: str, desc: str = "") -> Statistic:
    """Module-scope registration helper (LLVM's ``STATISTIC`` macro)."""
    return STATS.get(owner, name, desc)
