"""Source management layer (paper Fig. 1: FileManager + SourceManager).

This package mirrors the bottom two layers of Clang's component stack:

* :class:`~repro.sourcemgr.file_manager.FileManager` resolves file names
  (including an in-memory virtual file system used heavily by the tests) and
  hands out :class:`~repro.sourcemgr.memory_buffer.MemoryBuffer` objects.
* :class:`~repro.sourcemgr.source_manager.SourceManager` assigns each buffer
  a contiguous range of global offsets so that a single integer — a
  :class:`~repro.sourcemgr.location.SourceLocation` — identifies any
  character of any file of the translation unit, exactly like Clang's
  ``SourceLocation`` encoding.
"""

from repro.sourcemgr.location import PresumedLoc, SourceLocation, SourceRange
from repro.sourcemgr.memory_buffer import MemoryBuffer
from repro.sourcemgr.file_manager import FileEntry, FileManager
from repro.sourcemgr.source_manager import FileID, SourceManager

__all__ = [
    "FileEntry",
    "FileID",
    "FileManager",
    "MemoryBuffer",
    "PresumedLoc",
    "SourceLocation",
    "SourceManager",
    "SourceRange",
]
