"""File resolution layer (clang's ``FileManager``).

Supports both the real file system and *virtual files* registered by tests
and the driver (``-include``-style in-memory headers).  Include resolution
follows clang: a quoted include is first looked up relative to the including
file's directory, then along the ``-I`` search path; an angled include skips
the relative step.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.sourcemgr.memory_buffer import MemoryBuffer


@dataclass(frozen=True)
class FileEntry:
    """A resolved file identity: unique name + size."""

    name: str
    size: int
    is_virtual: bool = False


class FileManager:
    """Resolves file names to :class:`FileEntry` / :class:`MemoryBuffer`.

    Parameters
    ----------
    search_paths:
        ``-I`` include directories, tried in order.
    """

    def __init__(self, search_paths: list[str] | None = None) -> None:
        self.search_paths: list[str] = list(search_paths or [])
        self._virtual: dict[str, MemoryBuffer] = {}
        self._buffers: dict[str, MemoryBuffer] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_search_path(self, path: str) -> None:
        self.search_paths.append(path)

    def register_virtual_file(self, name: str, text: str) -> FileEntry:
        """Register an in-memory file; later lookups of *name* find it."""
        buf = MemoryBuffer(name, text)
        self._virtual[name] = buf
        return FileEntry(name, buf.size, is_virtual=True)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_file(self, name: str) -> FileEntry | None:
        """Resolve *name* exactly (virtual first, then the file system)."""
        if name in self._virtual:
            buf = self._virtual[name]
            return FileEntry(name, buf.size, is_virtual=True)
        if os.path.isfile(name):
            return FileEntry(name, os.path.getsize(name))
        return None

    def resolve_include(
        self, name: str, including_file: str | None, angled: bool
    ) -> FileEntry | None:
        """Resolve ``#include "name"`` / ``#include <name>``."""
        candidates: list[str] = []
        if not angled and including_file is not None:
            base = os.path.dirname(including_file)
            candidates.append(os.path.join(base, name) if base else name)
        candidates.append(name)
        candidates.extend(os.path.join(p, name) for p in self.search_paths)
        for candidate in candidates:
            entry = self.get_file(candidate)
            if entry is not None:
                return entry
        return None

    def get_buffer(self, entry: FileEntry) -> MemoryBuffer:
        """Load (and cache) the contents of a resolved file."""
        if entry.is_virtual:
            return self._virtual[entry.name]
        buf = self._buffers.get(entry.name)
        if buf is None:
            with open(entry.name, "r", encoding="utf-8") as fh:
                buf = MemoryBuffer(entry.name, fh.read())
            self._buffers[entry.name] = buf
        return buf

    def get_buffer_for_name(self, name: str) -> MemoryBuffer | None:
        entry = self.get_file(name)
        if entry is None:
            return None
        return self.get_buffer(entry)
