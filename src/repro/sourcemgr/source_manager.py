"""The SourceManager: global offsets <-> (file, line, column).

Each loaded buffer gets a contiguous slice of the *global offset space*;
``SourceLocation(offset)`` then uniquely identifies one character of one
buffer.  Decoding does a binary search over the loaded buffers, then a
binary search over the buffer's line table — the same two-level scheme as
Clang.  ``#line`` overrides are recorded per buffer and applied when
computing :class:`PresumedLoc`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.sourcemgr.location import PresumedLoc, SourceLocation
from repro.sourcemgr.memory_buffer import MemoryBuffer


@dataclass(frozen=True)
class FileID:
    """Identifies one loaded buffer (clang's ``FileID``)."""

    index: int = -1

    def is_valid(self) -> bool:
        return self.index >= 0


@dataclass
class _LoadedBuffer:
    buffer: MemoryBuffer
    start_offset: int  # first global offset belonging to this buffer
    include_loc: SourceLocation  # location of the #include that loaded it
    # (#line directive overrides): list of (local offset, presumed filename,
    # presumed line at that offset)
    line_overrides: list[tuple[int, str, int]] = field(default_factory=list)

    @property
    def end_offset(self) -> int:
        return self.start_offset + self.buffer.size


class SourceManager:
    """Owns all loaded buffers and performs location arithmetic."""

    def __init__(self) -> None:
        self._buffers: list[_LoadedBuffer] = []
        self._starts: list[int] = []  # parallel to _buffers, for bisect
        # Global offset 0 is the invalid location; start handing out at 1.
        self._next_offset = 1
        self._main_file: FileID = FileID()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def create_file_id(
        self,
        buffer: MemoryBuffer,
        include_loc: SourceLocation = SourceLocation(),
    ) -> FileID:
        """Load *buffer* into the global offset space and return its id."""
        loaded = _LoadedBuffer(buffer, self._next_offset, include_loc)
        self._buffers.append(loaded)
        self._starts.append(loaded.start_offset)
        # +1 so that a location one-past-the-end is still attributable.
        self._next_offset += buffer.size + 1
        return FileID(len(self._buffers) - 1)

    def set_main_file_id(self, fid: FileID) -> None:
        self._main_file = fid

    def get_main_file_id(self) -> FileID:
        return self._main_file

    def create_main_file(self, buffer: MemoryBuffer) -> FileID:
        fid = self.create_file_id(buffer)
        self.set_main_file_id(fid)
        return fid

    # ------------------------------------------------------------------
    # Location construction / decomposition
    # ------------------------------------------------------------------
    def get_loc_for_offset(self, fid: FileID, offset: int) -> SourceLocation:
        """Location of 0-based *offset* within the file *fid*."""
        loaded = self._buffers[fid.index]
        if not 0 <= offset <= loaded.buffer.size:
            raise ValueError(
                f"offset {offset} out of range for {loaded.buffer.name}"
            )
        return SourceLocation(loaded.start_offset + offset)

    def get_file_id(self, loc: SourceLocation) -> FileID:
        """The file containing *loc* (invalid FileID for invalid locs)."""
        if loc.is_invalid() or not self._buffers:
            return FileID()
        idx = bisect.bisect_right(self._starts, loc.offset) - 1
        if idx < 0:
            return FileID()
        loaded = self._buffers[idx]
        if loc.offset > loaded.end_offset:
            return FileID()
        return FileID(idx)

    def get_decomposed_loc(self, loc: SourceLocation) -> tuple[FileID, int]:
        fid = self.get_file_id(loc)
        if not fid.is_valid():
            raise ValueError(f"cannot decompose {loc}")
        loaded = self._buffers[fid.index]
        return fid, loc.offset - loaded.start_offset

    def get_buffer(self, fid: FileID) -> MemoryBuffer:
        return self._buffers[fid.index].buffer

    def get_include_loc(self, fid: FileID) -> SourceLocation:
        return self._buffers[fid.index].include_loc

    def get_filename(self, loc: SourceLocation) -> str:
        fid = self.get_file_id(loc)
        if not fid.is_valid():
            return "<unknown>"
        return self._buffers[fid.index].buffer.name

    # ------------------------------------------------------------------
    # #line directive support
    # ------------------------------------------------------------------
    def add_line_override(
        self, loc: SourceLocation, presumed_file: str, presumed_line: int
    ) -> None:
        """Record that from *loc* on, locations present as *presumed_file*
        starting at *presumed_line* (clang's ``#line`` handling)."""
        fid, local = self.get_decomposed_loc(loc)
        self._buffers[fid.index].line_overrides.append(
            (local, presumed_file, presumed_line)
        )
        self._buffers[fid.index].line_overrides.sort()

    # ------------------------------------------------------------------
    # Human-readable decoding
    # ------------------------------------------------------------------
    def get_presumed_loc(self, loc: SourceLocation) -> PresumedLoc:
        fid, local = self.get_decomposed_loc(loc)
        loaded = self._buffers[fid.index]
        line, column = loaded.buffer.line_column(local)
        filename = loaded.buffer.name
        for ov_offset, ov_file, ov_line in loaded.line_overrides:
            if ov_offset <= local:
                ov_physical_line, _ = loaded.buffer.line_column(ov_offset)
                line = ov_line + (line - ov_physical_line)
                filename = ov_file
            else:
                break
        return PresumedLoc(filename, line, column)

    def get_line_number(self, loc: SourceLocation) -> int:
        return self.get_presumed_loc(loc).line

    def get_column_number(self, loc: SourceLocation) -> int:
        return self.get_presumed_loc(loc).column

    def get_line_text(self, loc: SourceLocation) -> str | None:
        """The full physical source line containing *loc*."""
        try:
            fid, local = self.get_decomposed_loc(loc)
        except ValueError:
            return None
        loaded = self._buffers[fid.index]
        line, _ = loaded.buffer.line_column(local)
        return loaded.buffer.line_text(line)

    def get_char_data(self, loc: SourceLocation, length: int = 1) -> str:
        """Raw source characters starting at *loc*."""
        fid, local = self.get_decomposed_loc(loc)
        buf = self._buffers[fid.index].buffer
        return buf.text[local : local + length]

    def is_before(self, a: SourceLocation, b: SourceLocation) -> bool:
        """Translation-unit order comparison (clang's
        ``isBeforeInTranslationUnit``)."""
        return a.offset < b.offset

    def location_description(self, loc: SourceLocation) -> str:
        """``file:line:col`` string, tolerant of invalid locations."""
        if loc.is_invalid():
            return "<invalid loc>"
        try:
            return str(self.get_presumed_loc(loc))
        except ValueError:
            return "<unknown>"

    def num_loaded_buffers(self) -> int:
        return len(self._buffers)
