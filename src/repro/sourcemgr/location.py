"""Source locations, ranges and presumed locations.

Clang encodes a ``SourceLocation`` as a single 32-bit integer offset into the
concatenation of all loaded source buffers; decoding to file/line/column is
done lazily by the ``SourceManager``.  We keep the same design: a location is
one integer, comparisons are integer comparisons, and everything human
readable lives in :class:`PresumedLoc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class SourceLocation:
    """An opaque offset into the translation unit's source character stream.

    Offset 0 is reserved as the *invalid* location (clang does the same),
    hence valid locations start at 1.
    """

    offset: int = 0

    INVALID_OFFSET = 0

    @classmethod
    def invalid(cls) -> "SourceLocation":
        return cls(cls.INVALID_OFFSET)

    def is_valid(self) -> bool:
        return self.offset != self.INVALID_OFFSET

    def is_invalid(self) -> bool:
        return not self.is_valid()

    def with_offset(self, delta: int) -> "SourceLocation":
        """A location *delta* characters further into the same buffer."""
        if self.is_invalid():
            return self
        return SourceLocation(self.offset + delta)

    def __lt__(self, other: "SourceLocation") -> bool:
        return self.offset < other.offset

    def __str__(self) -> str:
        if self.is_invalid():
            return "<invalid loc>"
        return f"loc({self.offset})"


@dataclass(frozen=True)
class SourceRange:
    """A half-open character range ``[begin, end)`` in the source stream."""

    begin: SourceLocation = SourceLocation()
    end: SourceLocation = SourceLocation()

    @classmethod
    def from_location(cls, loc: SourceLocation) -> "SourceRange":
        return cls(loc, loc.with_offset(1))

    def is_valid(self) -> bool:
        return self.begin.is_valid() and self.end.is_valid()

    def contains(self, loc: SourceLocation) -> bool:
        return self.begin.offset <= loc.offset < self.end.offset

    def union(self, other: "SourceRange") -> "SourceRange":
        if not self.is_valid():
            return other
        if not other.is_valid():
            return self
        return SourceRange(
            min(self.begin, other.begin), max(self.end, other.end)
        )

    def __str__(self) -> str:
        return f"<{self.begin}, {self.end}>"


@dataclass(frozen=True)
class PresumedLoc:
    """Human-readable decoded location: filename, 1-based line and column.

    "Presumed" because ``#line`` directives (which the preprocessor honours)
    may override the physical position, as in Clang.
    """

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"
