"""In-memory source buffers (clang's ``llvm::MemoryBuffer``)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryBuffer:
    """An immutable chunk of source text plus its identifying name.

    Line-start offsets are computed lazily and cached; this is the same
    strategy Clang's ``SourceManager`` uses (the ``SourceLineCache``).
    """

    name: str
    text: str
    _line_offsets: list[int] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def size(self) -> int:
        return len(self.text)

    def line_offsets(self) -> list[int]:
        """Offsets (0-based) at which each line begins; computed lazily."""
        if self._line_offsets is None:
            offsets = [0]
            find = self.text.find
            pos = find("\n")
            while pos != -1:
                offsets.append(pos + 1)
                pos = find("\n", pos + 1)
            self._line_offsets = offsets
        return self._line_offsets

    def line_column(self, offset: int) -> tuple[int, int]:
        """Decode a 0-based buffer offset to (1-based line, 1-based column)."""
        offsets = self.line_offsets()
        # Binary search for the greatest line start <= offset.
        lo, hi = 0, len(offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if offsets[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1, offset - offsets[lo] + 1

    def line_text(self, line: int) -> str | None:
        """The text of 1-based *line* without its trailing newline."""
        offsets = self.line_offsets()
        if not 1 <= line <= len(offsets):
            return None
        start = offsets[line - 1]
        end = (
            offsets[line] - 1 if line < len(offsets) else len(self.text)
        )
        return self.text[start:end].rstrip("\r")

    def num_lines(self) -> int:
        return len(self.line_offsets())
