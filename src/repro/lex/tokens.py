"""Token kinds and the Token record.

The kind set mirrors clang's ``TokenKinds.def`` restricted to the MiniC
subset, plus the annotation kinds the preprocessor synthesizes for OpenMP
pragmas (clang: ``annot_pragma_openmp`` / ``annot_pragma_openmp_end``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sourcemgr.location import SourceLocation


class TokenKind(enum.Enum):
    # Special
    EOF = "eof"
    UNKNOWN = "unknown"
    EOD = "eod"  # end-of-directive (preprocessor internal)

    # Literals & identifiers
    IDENTIFIER = "identifier"
    NUMERIC_CONSTANT = "numeric_constant"
    CHAR_CONSTANT = "char_constant"
    STRING_LITERAL = "string_literal"

    # Punctuators
    L_PAREN = "l_paren"
    R_PAREN = "r_paren"
    L_BRACE = "l_brace"
    R_BRACE = "r_brace"
    L_SQUARE = "l_square"
    R_SQUARE = "r_square"
    SEMI = "semi"
    COMMA = "comma"
    PERIOD = "period"
    ELLIPSIS = "ellipsis"
    ARROW = "arrow"
    AMP = "amp"
    AMPAMP = "ampamp"
    AMPEQUAL = "ampequal"
    STAR = "star"
    STAREQUAL = "starequal"
    PLUS = "plus"
    PLUSPLUS = "plusplus"
    PLUSEQUAL = "plusequal"
    MINUS = "minus"
    MINUSMINUS = "minusminus"
    MINUSEQUAL = "minusequal"
    TILDE = "tilde"
    EXCLAIM = "exclaim"
    EXCLAIMEQUAL = "exclaimequal"
    SLASH = "slash"
    SLASHEQUAL = "slashequal"
    PERCENT = "percent"
    PERCENTEQUAL = "percentequal"
    LESS = "less"
    LESSLESS = "lessless"
    LESSEQUAL = "lessequal"
    LESSLESSEQUAL = "lesslessequal"
    GREATER = "greater"
    GREATERGREATER = "greatergreater"
    GREATEREQUAL = "greaterequal"
    GREATERGREATEREQUAL = "greatergreaterequal"
    CARET = "caret"
    CARETEQUAL = "caretequal"
    PIPE = "pipe"
    PIPEPIPE = "pipepipe"
    PIPEEQUAL = "pipeequal"
    QUESTION = "question"
    COLON = "colon"
    COLONCOLON = "coloncolon"
    EQUAL = "equal"
    EQUALEQUAL = "equalequal"
    HASH = "hash"
    HASHHASH = "hashhash"

    # Keywords (C subset)
    KW_VOID = "void"
    KW_BOOL = "bool"
    KW_CHAR = "char"
    KW_SHORT = "short"
    KW_INT = "int"
    KW_LONG = "long"
    KW_FLOAT = "float"
    KW_DOUBLE = "double"
    KW_SIGNED = "signed"
    KW_UNSIGNED = "unsigned"
    KW_CONST = "const"
    KW_VOLATILE = "volatile"
    KW_RESTRICT = "restrict"
    KW_STATIC = "static"
    KW_EXTERN = "extern"
    KW_AUTO = "auto"
    KW_TYPEDEF = "typedef"
    KW_STRUCT = "struct"
    KW_UNION = "union"
    KW_ENUM = "enum"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_RETURN = "return"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_DEFAULT = "default"
    KW_GOTO = "goto"
    KW_SIZEOF = "sizeof"
    KW_INLINE = "inline"
    KW_TRUE = "true"
    KW_FALSE = "false"

    # Annotation tokens synthesized by the preprocessor
    ANNOT_PRAGMA_OPENMP = "annot_pragma_openmp"
    ANNOT_PRAGMA_OPENMP_END = "annot_pragma_openmp_end"
    ANNOT_PRAGMA_LOOPHINT = "annot_pragma_loophint"

    def is_keyword(self) -> bool:
        return self.name.startswith("KW_")

    def is_annotation(self) -> bool:
        return self.name.startswith("ANNOT_")

    def is_literal(self) -> bool:
        return self in (
            TokenKind.NUMERIC_CONSTANT,
            TokenKind.CHAR_CONSTANT,
            TokenKind.STRING_LITERAL,
        )


#: identifier text -> keyword kind (applied by the lexer, like clang's
#: IdentifierTable).  ``_Bool`` maps onto ``bool``.
KEYWORDS: dict[str, TokenKind] = {
    "void": TokenKind.KW_VOID,
    "bool": TokenKind.KW_BOOL,
    "_Bool": TokenKind.KW_BOOL,
    "char": TokenKind.KW_CHAR,
    "short": TokenKind.KW_SHORT,
    "int": TokenKind.KW_INT,
    "long": TokenKind.KW_LONG,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_DOUBLE,
    "signed": TokenKind.KW_SIGNED,
    "unsigned": TokenKind.KW_UNSIGNED,
    "const": TokenKind.KW_CONST,
    "volatile": TokenKind.KW_VOLATILE,
    "restrict": TokenKind.KW_RESTRICT,
    "__restrict": TokenKind.KW_RESTRICT,
    "static": TokenKind.KW_STATIC,
    "extern": TokenKind.KW_EXTERN,
    "auto": TokenKind.KW_AUTO,
    "typedef": TokenKind.KW_TYPEDEF,
    "struct": TokenKind.KW_STRUCT,
    "union": TokenKind.KW_UNION,
    "enum": TokenKind.KW_ENUM,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "return": TokenKind.KW_RETURN,
    "switch": TokenKind.KW_SWITCH,
    "case": TokenKind.KW_CASE,
    "default": TokenKind.KW_DEFAULT,
    "goto": TokenKind.KW_GOTO,
    "sizeof": TokenKind.KW_SIZEOF,
    "inline": TokenKind.KW_INLINE,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
}


#: punctuator spelling -> kind, longest-match-first ordering is handled by
#: the lexer via this table's key lengths.
PUNCTUATORS: dict[str, TokenKind] = {
    "<<=": TokenKind.LESSLESSEQUAL,
    ">>=": TokenKind.GREATERGREATEREQUAL,
    "...": TokenKind.ELLIPSIS,
    "->": TokenKind.ARROW,
    "++": TokenKind.PLUSPLUS,
    "--": TokenKind.MINUSMINUS,
    "<<": TokenKind.LESSLESS,
    ">>": TokenKind.GREATERGREATER,
    "<=": TokenKind.LESSEQUAL,
    ">=": TokenKind.GREATEREQUAL,
    "==": TokenKind.EQUALEQUAL,
    "!=": TokenKind.EXCLAIMEQUAL,
    "&&": TokenKind.AMPAMP,
    "||": TokenKind.PIPEPIPE,
    "+=": TokenKind.PLUSEQUAL,
    "-=": TokenKind.MINUSEQUAL,
    "*=": TokenKind.STAREQUAL,
    "/=": TokenKind.SLASHEQUAL,
    "%=": TokenKind.PERCENTEQUAL,
    "&=": TokenKind.AMPEQUAL,
    "|=": TokenKind.PIPEEQUAL,
    "^=": TokenKind.CARETEQUAL,
    "##": TokenKind.HASHHASH,
    "::": TokenKind.COLONCOLON,
    "(": TokenKind.L_PAREN,
    ")": TokenKind.R_PAREN,
    "{": TokenKind.L_BRACE,
    "}": TokenKind.R_BRACE,
    "[": TokenKind.L_SQUARE,
    "]": TokenKind.R_SQUARE,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.PERIOD,
    "&": TokenKind.AMP,
    "*": TokenKind.STAR,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "~": TokenKind.TILDE,
    "!": TokenKind.EXCLAIM,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LESS,
    ">": TokenKind.GREATER,
    "^": TokenKind.CARET,
    "|": TokenKind.PIPE,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
    "=": TokenKind.EQUAL,
    "#": TokenKind.HASH,
}

_MAX_PUNCT_LEN = max(len(p) for p in PUNCTUATORS)


@dataclass
class Token:
    """One lexed token.

    ``at_line_start`` and ``has_leading_space`` reproduce clang's
    ``Token::isAtStartOfLine`` / ``hasLeadingSpace`` flags, which the
    preprocessor needs for directive recognition and token pasting, and the
    pretty-printers need for faithful spelling reconstruction.
    ``annotation_value`` carries the payload of annotation tokens (for
    ``ANNOT_PRAGMA_OPENMP`` it is the directive's token list).
    """

    kind: TokenKind
    spelling: str = ""
    location: SourceLocation = field(default_factory=SourceLocation)
    at_line_start: bool = False
    has_leading_space: bool = False
    annotation_value: object = None

    def is_(self, kind: TokenKind) -> bool:
        return self.kind == kind

    def is_not(self, kind: TokenKind) -> bool:
        return self.kind != kind

    def is_one_of(self, *kinds: TokenKind) -> bool:
        return self.kind in kinds

    def is_identifier(self, text: str | None = None) -> bool:
        if self.kind != TokenKind.IDENTIFIER:
            return False
        return text is None or self.spelling == text

    @property
    def length(self) -> int:
        return len(self.spelling)

    def end_location(self) -> SourceLocation:
        return self.location.with_offset(self.length)

    def __str__(self) -> str:
        return f"{self.kind.name}({self.spelling!r})"


def max_punctuator_length() -> int:
    return _MAX_PUNCT_LEN
