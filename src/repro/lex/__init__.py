"""Lexer layer (paper Fig. 1): characters -> :class:`Token` stream.

As in Clang, the lexer is *raw*: it knows nothing about macros or pragmas
beyond tokenizing them; ``#`` directives and ``#pragma omp`` handling live
in :mod:`repro.preprocessor`, which turns OpenMP pragmas into the
``ANNOT_PRAGMA_OPENMP`` ... ``ANNOT_PRAGMA_OPENMP_END`` annotation-token
sandwich the parser consumes.
"""

from repro.lex.tokens import KEYWORDS, Token, TokenKind
from repro.lex.lexer import Lexer, LexerError

__all__ = ["KEYWORDS", "Lexer", "LexerError", "Token", "TokenKind"]
