"""The raw lexer: one :class:`MemoryBuffer` -> :class:`Token` stream.

Design notes (mirroring clang's ``Lexer``):

* The lexer is a pull interface — :meth:`Lexer.lex` returns the next token;
  the Preprocessor drives it (paper Fig. 1: the parser pulls tokens through
  the layers below).
* Comments and whitespace are skipped but recorded on the next token via the
  ``has_leading_space`` / ``at_line_start`` flags.
* Line splices (backslash-newline) are handled, which matters for multi-line
  ``#pragma omp`` directives.
* In *keep_comments* mode comments could be returned as tokens; we only need
  the skip behaviour here.
"""

from __future__ import annotations

from repro.diagnostics import DiagnosticsEngine, Severity
from repro.instrument import get_statistic
from repro.instrument.faultinject import FAULTS
from repro.lex.tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind
from repro.sourcemgr.location import SourceLocation
from repro.sourcemgr.source_manager import FileID, SourceManager

_IDENT_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")
_HORIZONTAL_WS = " \t\f\v"

_RAW_TOKENS = get_statistic(
    "lexer", "raw-tokens", "Raw tokens produced from source buffers"
)


class LexerError(Exception):
    """Raised on unrecoverable lexical errors (e.g. unterminated string)."""


class Lexer:
    """Tokenizes a single buffer.

    Parameters
    ----------
    source_manager / fid:
        Identify the buffer and let the lexer mint real
        :class:`SourceLocation` values.
    diags:
        Errors (unterminated literals, stray characters) are reported here.
    keywords_enabled:
        When ``False`` all keywords lex as plain identifiers — used when
        re-lexing pragma bodies where e.g. ``for`` is an OpenMP directive
        name, not the C keyword (the preprocessor does this).
    """

    def __init__(
        self,
        source_manager: SourceManager,
        fid: FileID,
        diags: DiagnosticsEngine,
        keywords_enabled: bool = True,
    ) -> None:
        self.sm = source_manager
        self.fid = fid
        self.diags = diags
        self.keywords_enabled = keywords_enabled
        self.buffer = source_manager.get_buffer(fid)
        self.text = self.buffer.text
        self.pos = 0
        self._at_line_start = True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _loc(self, offset: int | None = None) -> SourceLocation:
        return self.sm.get_loc_for_offset(
            self.fid, self.pos if offset is None else offset
        )

    def _peek(self, ahead: int = 0) -> str:
        idx = self.pos + ahead
        return self.text[idx] if idx < len(self.text) else ""

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    # ------------------------------------------------------------------
    # Whitespace / comments
    # ------------------------------------------------------------------
    def _skip_trivia(self) -> bool:
        """Skip whitespace, comments and line splices.

        Returns whether any horizontal space was skipped (for the
        ``has_leading_space`` flag); newline skipping sets
        ``self._at_line_start``.
        """
        skipped_space = False
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch in _HORIZONTAL_WS:
                self.pos += 1
                skipped_space = True
            elif ch == "\n" or ch == "\r":
                self.pos += 1
                self._at_line_start = True
                skipped_space = True
            elif ch == "\\" and self.pos + 1 < n and text[self.pos + 1] in "\r\n":
                # Line splice: backslash-newline vanishes entirely.
                self.pos += 2
                if (
                    text[self.pos - 1] == "\r"
                    and self.pos < n
                    and text[self.pos] == "\n"
                ):
                    self.pos += 1
                skipped_space = True
            elif ch == "/" and self.pos + 1 < n:
                nxt = text[self.pos + 1]
                if nxt == "/":
                    while self.pos < n and text[self.pos] != "\n":
                        self.pos += 1
                    skipped_space = True
                elif nxt == "*":
                    end = text.find("*/", self.pos + 2)
                    if end == -1:
                        self.diags.report(
                            Severity.ERROR,
                            "unterminated /* comment",
                            self._loc(),
                        )
                        self.pos = n
                    else:
                        if "\n" in text[self.pos : end]:
                            self._at_line_start = True
                        self.pos = end + 2
                    skipped_space = True
                else:
                    break
            else:
                break
        return skipped_space

    # ------------------------------------------------------------------
    # Token producers
    # ------------------------------------------------------------------
    def lex(self) -> Token:
        """Return the next token (EOF token at end of buffer)."""
        if FAULTS.armed:
            FAULTS.hit("lexer")
        leading_space = self._skip_trivia()
        at_line_start = self._at_line_start
        if self.at_end():
            return Token(
                TokenKind.EOF,
                "",
                self._loc(),
                at_line_start=at_line_start,
                has_leading_space=leading_space,
            )
        self._at_line_start = False
        start = self.pos
        ch = self.text[self.pos]

        if ch in _IDENT_START:
            tok = self._lex_identifier()
        elif ch in _DIGITS or (
            ch == "." and self._peek(1) in _DIGITS
        ):
            tok = self._lex_number()
        elif ch == '"':
            tok = self._lex_string()
        elif ch == "'":
            tok = self._lex_char()
        else:
            tok = self._lex_punctuator()

        tok.at_line_start = at_line_start
        tok.has_leading_space = leading_space
        tok.location = self._loc(start)
        return tok

    def _lex_identifier(self) -> Token:
        start = self.pos
        text, n = self.text, len(self.text)
        while self.pos < n and text[self.pos] in _IDENT_CONT:
            self.pos += 1
        spelling = text[start : self.pos]
        if self.keywords_enabled and spelling in KEYWORDS:
            return Token(KEYWORDS[spelling], spelling)
        return Token(TokenKind.IDENTIFIER, spelling)

    def _lex_number(self) -> Token:
        """Lex a pp-number: integers (dec/oct/hex with suffixes) and floats.

        Like clang we lex the *maximal munch* of the pp-number grammar and
        leave validation to the literal parser in Sema.
        """
        start = self.pos
        text, n = self.text, len(self.text)
        self.pos += 1
        while self.pos < n:
            ch = text[self.pos]
            if ch in _IDENT_CONT or ch == ".":
                self.pos += 1
            elif ch in "+-" and text[self.pos - 1] in "eEpP":
                self.pos += 1
            else:
                break
        return Token(TokenKind.NUMERIC_CONSTANT, text[start : self.pos])

    def _lex_string(self) -> Token:
        start = self.pos
        text, n = self.text, len(self.text)
        self.pos += 1  # opening quote
        while self.pos < n:
            ch = text[self.pos]
            if ch == "\\" and self.pos + 1 < n:
                self.pos += 2
                continue
            if ch == '"':
                self.pos += 1
                return Token(
                    TokenKind.STRING_LITERAL, text[start : self.pos]
                )
            if ch == "\n":
                break
            self.pos += 1
        self.diags.report(
            Severity.ERROR, "unterminated string literal", self._loc(start)
        )
        return Token(TokenKind.UNKNOWN, text[start : self.pos])

    def _lex_char(self) -> Token:
        start = self.pos
        text, n = self.text, len(self.text)
        self.pos += 1
        while self.pos < n:
            ch = text[self.pos]
            if ch == "\\" and self.pos + 1 < n:
                self.pos += 2
                continue
            if ch == "'":
                self.pos += 1
                return Token(
                    TokenKind.CHAR_CONSTANT, text[start : self.pos]
                )
            if ch == "\n":
                break
            self.pos += 1
        self.diags.report(
            Severity.ERROR,
            "unterminated character constant",
            self._loc(start),
        )
        return Token(TokenKind.UNKNOWN, text[start : self.pos])

    def _lex_punctuator(self) -> Token:
        text = self.text
        for length in (3, 2, 1):
            cand = text[self.pos : self.pos + length]
            if len(cand) == length and cand in PUNCTUATORS:
                self.pos += length
                return Token(PUNCTUATORS[cand], cand)
        bad = text[self.pos]
        self.pos += 1
        self.diags.report(
            Severity.ERROR,
            f"unexpected character {bad!r} in source",
            self._loc(self.pos - 1),
        )
        return Token(TokenKind.UNKNOWN, bad)

    # ------------------------------------------------------------------
    # Bulk interface
    # ------------------------------------------------------------------
    def lex_all(self) -> list[Token]:
        """All tokens of the buffer up to and including EOF."""
        tokens: list[Token] = []
        while True:
            tok = self.lex()
            tokens.append(tok)
            if tok.kind == TokenKind.EOF:
                _RAW_TOKENS.inc(len(tokens))
                return tokens


def tokenize_string(
    text: str,
    name: str = "<string>",
    diags: DiagnosticsEngine | None = None,
    keywords_enabled: bool = True,
) -> list[Token]:
    """Convenience wrapper: tokenize a standalone string.

    Builds a throwaway SourceManager; intended for tests and for re-lexing
    snippets (not for real compilation, where locations must be shared).
    """
    from repro.sourcemgr.memory_buffer import MemoryBuffer

    sm = SourceManager()
    fid = sm.create_main_file(MemoryBuffer(name, text))
    # NB: not `diags or ...` — an engine with zero diagnostics is falsy
    # (it defines __len__).
    engine = diags if diags is not None else DiagnosticsEngine(sm)
    lexer = Lexer(sm, fid, engine, keywords_enabled=keywords_enabled)
    return lexer.lex_all()
