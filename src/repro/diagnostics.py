"""Diagnostics engine modelled on Clang's ``DiagnosticsEngine``.

The paper (section "Shadow AST Representation") discusses the importance of
diagnostic quality when semantic analysis operates on internal shadow AST
nodes: diagnostics must not leak internal variable names such as
``.capture_expr.`` and should point at a *representative source location* of
the associated literal loop.  This module provides:

* :class:`Severity` — note/remark/warning/error/fatal levels.
* :class:`Diagnostic` — one emitted message with a source location and
  optional attached notes (Clang "note:" diagnostics augmenting a primary
  warning/error, e.g. "template instantiation required here").
* :class:`DiagnosticsEngine` — collects diagnostics, counts errors, renders
  clang-style ``file:line:col: error: message`` text with source snippets and
  caret markers.

The engine is shared by every layer (Lexer, Preprocessor, Parser, Sema,
CodeGen) exactly as in Clang's layered architecture (paper Fig. 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sourcemgr.source_manager import SourceManager
    from repro.sourcemgr.location import SourceLocation


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered from least to most severe."""

    IGNORED = 0
    NOTE = 1
    REMARK = 2
    WARNING = 3
    ERROR = 4
    FATAL = 5

    @property
    def label(self) -> str:
        return _SEVERITY_LABELS[self]


_SEVERITY_LABELS = {
    Severity.IGNORED: "ignored",
    Severity.NOTE: "note",
    Severity.REMARK: "remark",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
    Severity.FATAL: "fatal error",
}


@dataclass
class Diagnostic:
    """A single diagnostic message.

    ``notes`` carries secondary :class:`Diagnostic` objects with
    ``Severity.NOTE`` that explain the primary message, mirroring Clang's
    note diagnostics ("declared here", "required from here", ...).
    """

    severity: Severity
    message: str
    location: Optional["SourceLocation"] = None
    notes: list["Diagnostic"] = field(default_factory=list)
    category: str = ""

    def add_note(
        self, message: str, location: Optional["SourceLocation"] = None
    ) -> "Diagnostic":
        """Attach a note diagnostic and return *self* for chaining."""
        self.notes.append(Diagnostic(Severity.NOTE, message, location))
        return self

    def render(self, source_manager: Optional["SourceManager"] = None) -> str:
        """Render in clang style, optionally with a source snippet + caret."""
        parts = [self._render_one(self, source_manager)]
        for note in self.notes:
            parts.append(self._render_one(note, source_manager))
        return "\n".join(parts)

    @staticmethod
    def _render_one(
        diag: "Diagnostic", source_manager: Optional["SourceManager"]
    ) -> str:
        prefix = "<unknown>"
        snippet = ""
        if diag.location is not None and diag.location.is_valid():
            if source_manager is not None:
                ploc = source_manager.get_presumed_loc(diag.location)
                prefix = f"{ploc.filename}:{ploc.line}:{ploc.column}"
                line_text = source_manager.get_line_text(diag.location)
                if line_text is not None:
                    caret = " " * (ploc.column - 1) + "^"
                    snippet = f"\n{line_text}\n{caret}"
            else:
                prefix = str(diag.location)
        text = f"{prefix}: {diag.severity.label}: {diag.message}"
        return text + snippet

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class FatalErrorOccurred(Exception):
    """Raised when a diagnostic with ``Severity.FATAL`` is emitted."""

    def __init__(self, diagnostic: Diagnostic):
        super().__init__(diagnostic.message)
        self.diagnostic = diagnostic


class TooManyErrors(Exception):
    """Raised when the error limit is exceeded (clang's ``-ferror-limit``)."""


class DiagnosticsEngine:
    """Collects diagnostics emitted by all compiler layers.

    Parameters
    ----------
    source_manager:
        Used to translate :class:`SourceLocation` to file/line/column when
        rendering.  May be attached later via :attr:`source_manager`.
    error_limit:
        Upper bound on the number of errors before aborting, 0 = unlimited.
    warnings_as_errors:
        Clang's ``-Werror``.
    """

    def __init__(
        self,
        source_manager: Optional["SourceManager"] = None,
        error_limit: int = 0,
        warnings_as_errors: bool = False,
    ) -> None:
        from repro.instrument.remarks import RemarkEmitter

        self.source_manager = source_manager
        self.error_limit = error_limit
        self.warnings_as_errors = warnings_as_errors
        self.diagnostics: list[Diagnostic] = []
        self._suppress_depth = 0
        #: structured optimization remarks (``-Rpass`` family); shared by
        #: every layer holding this engine, like the diagnostics list
        self.remarks = RemarkEmitter()

    # ------------------------------------------------------------------
    # Emission API
    # ------------------------------------------------------------------
    def report(
        self,
        severity: Severity,
        message: str,
        location: Optional["SourceLocation"] = None,
        category: str = "",
    ) -> Diagnostic:
        """Emit a diagnostic and return it (so callers can attach notes)."""
        if severity == Severity.WARNING and self.warnings_as_errors:
            severity = Severity.ERROR
        diag = Diagnostic(severity, message, location, category=category)
        if self._suppress_depth > 0 and severity < Severity.FATAL:
            return diag
        if (
            self.error_limit
            and Severity.ERROR <= severity < Severity.FATAL
            and self.error_count >= self.error_limit
        ):
            # Like clang: exactly -ferror-limit=N errors are shown, the
            # N+1'th is replaced by the "too many errors" fatal.
            raise TooManyErrors(f"more than {self.error_limit} errors emitted")
        self.diagnostics.append(diag)
        if severity >= Severity.FATAL:
            raise FatalErrorOccurred(diag)
        return diag

    def error(
        self, message: str, location: Optional["SourceLocation"] = None
    ) -> Diagnostic:
        return self.report(Severity.ERROR, message, location)

    def warning(
        self, message: str, location: Optional["SourceLocation"] = None
    ) -> Diagnostic:
        return self.report(Severity.WARNING, message, location)

    def note(
        self, message: str, location: Optional["SourceLocation"] = None
    ) -> Diagnostic:
        return self.report(Severity.NOTE, message, location)

    def remark(
        self, message: str, location: Optional["SourceLocation"] = None
    ) -> Diagnostic:
        return self.report(Severity.REMARK, message, location)

    def fatal(
        self, message: str, location: Optional["SourceLocation"] = None
    ) -> Diagnostic:
        return self.report(Severity.FATAL, message, location)

    # ------------------------------------------------------------------
    # Suppression (used by Sema for tentative/speculative analysis)
    # ------------------------------------------------------------------
    class _Suppressor:
        def __init__(self, engine: "DiagnosticsEngine"):
            self.engine = engine

        def __enter__(self) -> "DiagnosticsEngine":
            self.engine._suppress_depth += 1
            return self.engine

        def __exit__(self, *exc) -> None:
            self.engine._suppress_depth -= 1

    def suppressed(self) -> "DiagnosticsEngine._Suppressor":
        """Context manager that silences non-fatal diagnostics."""
        return DiagnosticsEngine._Suppressor(self)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def error_count(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity >= Severity.ERROR
        )

    @property
    def warning_count(self) -> int:
        return sum(
            1 for d in self.diagnostics if d.severity == Severity.WARNING
        )

    @property
    def ice_count(self) -> int:
        """Internal compiler errors recovered into diagnostics (category
        ``"ice"``, emitted by :mod:`repro.core.crash_recovery`)."""
        return sum(1 for d in self.diagnostics if d.category == "ice")

    def has_internal_errors(self) -> bool:
        return self.ice_count > 0

    def has_errors(self) -> bool:
        return self.error_count > 0

    def errors(self) -> Iterator[Diagnostic]:
        return (d for d in self.diagnostics if d.severity >= Severity.ERROR)

    def warnings(self) -> Iterator[Diagnostic]:
        return (
            d for d in self.diagnostics if d.severity == Severity.WARNING
        )

    def by_category(self, category: str) -> Iterator[Diagnostic]:
        return (d for d in self.diagnostics if d.category == category)

    def clear(self) -> None:
        self.diagnostics.clear()

    def render_all(self) -> str:
        """Render every diagnostic, clang style, one block per diagnostic."""
        return "\n".join(
            d.render(self.source_manager) for d in self.diagnostics
        )

    def summary(self) -> str:
        """A clang-like trailer, e.g. ``2 warnings and 1 error generated.``"""
        pieces = []
        if self.warning_count:
            plural = "s" if self.warning_count != 1 else ""
            pieces.append(f"{self.warning_count} warning{plural}")
        if self.error_count:
            plural = "s" if self.error_count != 1 else ""
            pieces.append(f"{self.error_count} error{plural}")
        if not pieces:
            return ""
        return " and ".join(pieces) + " generated."

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)


def format_diagnostics(
    diags: Iterable[Diagnostic],
    source_manager: Optional["SourceManager"] = None,
) -> str:
    """Render an arbitrary iterable of diagnostics."""
    return "\n".join(d.render(source_manager) for d in diags)
