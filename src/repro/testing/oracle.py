"""The differential-execution oracle.

Runs one program under several configurations and reports the first
observable divergence.  The *reference* configuration is
``--strip-omp-transforms`` (the directives removed): by the paper's
semantics-preservation claim every transformed configuration must
match it byte-for-byte on stdout and exit code.  When the generator's
python-side simulation is available it is used as an additional,
compiler-independent ground truth (including the ``sum(trip counts)``
invariant carried in the ``trips=N`` stdout line).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.pipeline import CompilationError, run_source
from repro.testing.generator import GeneratedProgram

#: retired-instruction budget per run; generated programs are tiny, so
#: exhausting this means the transformation manufactured a (near-)
#: infinite loop — itself a reportable divergence.
DEFAULT_FUEL = 2_000_000

_TRIPS_RE = re.compile(r"\btrips=(-?\d+)")


@dataclass(frozen=True)
class Config:
    """One way of compiling+running the program under test.

    ``via_service=True`` routes the run through the shared resilient
    compile service (worker-pool isolation) instead of the in-process
    pipeline — the service then becomes a differential configuration of
    its own: its retry/degradation machinery must be semantics-neutral.
    """

    name: str
    enable_irbuilder: bool = False
    optimize: bool = False
    strip_omp_transforms: bool = False
    via_service: bool = False

    def run(self, source: str, num_threads: int, fuel: int):
        return run_source(
            source,
            num_threads=num_threads,
            enable_irbuilder=self.enable_irbuilder,
            optimize=self.optimize,
            strip_omp_transforms=self.strip_omp_transforms,
            fuel=fuel,
        )


#: the standing configuration matrix; "stripped" is the reference and
#: must stay last so its outcome is computed exactly once.
DEFAULT_CONFIGS: tuple[Config, ...] = (
    Config("shadow"),
    Config("irbuilder", enable_irbuilder=True),
    Config("midend-O1", optimize=True),
    Config("stripped", strip_omp_transforms=True),
)


@dataclass
class Divergence:
    """One semantics divergence between configurations."""

    kind: str  # stdout / exit-code / trips / expected-stdout /
    #          # transformed-compile-error / stripped-compile-error /
    #          # timeout / ice
    config: str  # the configuration that disagreed
    detail: str
    source: str
    seed: Optional[int] = None
    features: tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        head = f"[{self.kind}] config '{self.config}'"
        if self.seed is not None:
            head += f" (seed {self.seed})"
        if self.features:
            head += f" features={','.join(self.features)}"
        return head + "\n" + self.detail


@dataclass
class _Outcome:
    stdout: Optional[str] = None
    exit_code: Optional[int] = None
    error: Optional[str] = None  # "compile-error" / "timeout" / "ice"
    error_detail: str = ""


def _run_config(
    config: Config, source: str, num_threads: int, fuel: int
) -> _Outcome:
    from repro.core.crash_recovery import InternalCompilerError
    from repro.interp import ExecutionTimeout

    if config.via_service:
        return _run_config_via_service(config, source, num_threads, fuel)
    try:
        result = config.run(source, num_threads, fuel)
    except CompilationError as exc:
        kind = "ice" if exc.ice else "compile-error"
        return _Outcome(error=kind, error_detail=str(exc))
    except ExecutionTimeout as exc:
        return _Outcome(error="timeout", error_detail=str(exc))
    except InternalCompilerError as exc:
        return _Outcome(error="ice", error_detail=str(exc))
    except Exception as exc:  # any escape is itself a finding
        return _Outcome(
            error="ice",
            error_detail=f"{type(exc).__name__}: {exc}",
        )
    code = result.exit_code if isinstance(result.exit_code, int) else 0
    return _Outcome(stdout=result.stdout, exit_code=code)


def _run_config_via_service(
    config: Config, source: str, num_threads: int, fuel: int
) -> _Outcome:
    """Execute one configuration on the shared compile service and map
    its terminal response onto the oracle's outcome shape."""
    from repro.service import (
        STATUS_ERROR,
        STATUS_TIMEOUT,
        CompileRequest,
        shared_service,
    )

    service = shared_service()
    [response] = service.process_batch(
        [
            CompileRequest(
                source=source,
                action="run",
                mode="irbuilder" if config.enable_irbuilder else "shadow",
                optimize=config.optimize,
                num_threads=num_threads,
                fuel=fuel,
                strip_omp_transforms=config.strip_omp_transforms,
            )
        ]
    )
    if response.ok:
        code = (
            response.exit_code
            if isinstance(response.exit_code, int)
            else 0
        )
        return _Outcome(stdout=response.output, exit_code=code)
    if response.status == STATUS_ERROR:
        kind = "compile-error" if response.diagnostics else "ice"
        return _Outcome(
            error=kind,
            error_detail=response.diagnostics or response.detail,
        )
    if response.status == STATUS_TIMEOUT:
        return _Outcome(error="timeout", error_detail=response.detail)
    # ice, circuit-open, resource-exhausted: all internal failures
    return _Outcome(error="ice", error_detail=response.detail)


def check_source(
    source: str,
    expected_stdout: Optional[str] = None,
    expected_trips: Optional[int] = None,
    configs: tuple[Config, ...] = DEFAULT_CONFIGS,
    num_threads: int = 3,
    fuel: int = DEFAULT_FUEL,
    seed: Optional[int] = None,
    features: tuple[str, ...] = (),
) -> Optional[Divergence]:
    """Differentially execute *source*; return the first divergence or
    None.

    A program that fails to compile in the *reference* (stripped)
    configuration AND in every transformed one is treated as invalid
    input, not as a divergence — that keeps the shrinker from walking
    into garbage programs.
    """
    reference = configs[-1]
    assert reference.strip_omp_transforms, (
        "the last config must be the stripped reference"
    )
    ref = _run_config(reference, source, num_threads, fuel)

    def make(kind: str, config: str, detail: str) -> Divergence:
        return Divergence(
            kind=kind,
            config=config,
            detail=detail,
            source=source,
            seed=seed,
            features=features,
        )

    for config in configs[:-1]:
        out = _run_config(config, source, num_threads, fuel)
        if out.error is not None and ref.error is not None:
            continue  # invalid program everywhere: not interesting
        if out.error is not None:
            kind = (
                "transformed-compile-error"
                if out.error == "compile-error"
                else out.error
            )
            return make(kind, config.name, out.error_detail)
        if ref.error is not None:
            kind = (
                "stripped-compile-error"
                if ref.error == "compile-error"
                else f"stripped-{ref.error}"
            )
            return make(kind, reference.name, ref.error_detail)
        if out.stdout != ref.stdout:
            return make(
                "stdout",
                config.name,
                f"transformed ({config.name}): {out.stdout!r}\n"
                f"stripped reference:          {ref.stdout!r}",
            )
        if out.exit_code != ref.exit_code:
            return make(
                "exit-code",
                config.name,
                f"transformed ({config.name}) exit {out.exit_code}, "
                f"stripped exit {ref.exit_code}",
            )
        if expected_stdout is not None and out.stdout != expected_stdout:
            return make(
                "expected-stdout",
                config.name,
                f"run output:         {out.stdout!r}\n"
                f"simulation expects: {expected_stdout!r}",
            )
        if expected_trips is not None and out.stdout is not None:
            m = _TRIPS_RE.search(out.stdout)
            if m is None or int(m.group(1)) != expected_trips:
                got = m.group(1) if m else "<missing>"
                return make(
                    "trips",
                    config.name,
                    f"sum(trip counts) invariant violated: "
                    f"got trips={got}, simulation expects "
                    f"{expected_trips}",
                )
    if ref.error is not None:
        # every transformed config failed too (we'd have returned
        # otherwise only if one succeeded) — invalid program.
        return None
    if expected_stdout is not None and ref.stdout != expected_stdout:
        return make(
            "expected-stdout",
            reference.name,
            f"run output:         {ref.stdout!r}\n"
            f"simulation expects: {expected_stdout!r}",
        )
    return None


def check_program(
    program: GeneratedProgram,
    configs: tuple[Config, ...] = DEFAULT_CONFIGS,
    num_threads: int = 3,
    fuel: int = DEFAULT_FUEL,
) -> Optional[Divergence]:
    """Oracle entry point for generated programs (adds the simulation
    ground truth and the trip-count invariant)."""
    return check_source(
        program.source,
        expected_stdout=program.expected_stdout,
        expected_trips=program.expected_trips,
        configs=configs,
        num_threads=num_threads,
        fuel=fuel,
        seed=program.seed,
        features=program.features,
    )
