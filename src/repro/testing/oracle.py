"""The differential-execution oracle.

Runs one program under several configurations and reports the first
observable divergence.  The *reference* configuration is
``--strip-omp-transforms`` (the directives removed): by the paper's
semantics-preservation claim every transformed configuration must
match it byte-for-byte on stdout and exit code.  When the generator's
python-side simulation is available it is used as an additional,
compiler-independent ground truth (including the ``sum(trip counts)``
invariant carried in the ``trips=N`` stdout line).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.pipeline import CompilationError, run_source
from repro.testing.generator import GeneratedProgram

#: retired-instruction budget per run; generated programs are tiny, so
#: exhausting this means the transformation manufactured a (near-)
#: infinite loop — itself a reportable divergence.
DEFAULT_FUEL = 2_000_000

_TRIPS_RE = re.compile(r"\btrips=(-?\d+)")


@dataclass(frozen=True)
class Config:
    """One way of compiling+running the program under test.

    ``via_service=True`` routes the run through the shared resilient
    compile service (worker-pool isolation) instead of the in-process
    pipeline — the service then becomes a differential configuration of
    its own: its retry/degradation machinery must be semantics-neutral.

    ``cached=True`` additionally compiles through the content-addressed
    compilation cache — cold, warm, and stage-resumed — and
    byte-compares every cached result against the uncached pipeline
    before running: the cache must be invisible to the semantics.

    ``exec_engine="closures"`` executes on the closure-compiled engine
    *and* races it against the reference interpreter on the same
    program: stdout, exit code, error classification and the execution
    profile (total/per-thread retired instructions, barrier/fork
    accounting, per-block counts) must all match, or the run reports an
    ``exec-divergence``.
    """

    name: str
    enable_irbuilder: bool = False
    optimize: bool = False
    strip_omp_transforms: bool = False
    via_service: bool = False
    cached: bool = False
    exec_engine: str = "interp"

    def run(
        self,
        source: str,
        num_threads: int,
        fuel: int,
        exec_engine: str | None = None,
        profile_detail: bool = False,
    ):
        return run_source(
            source,
            num_threads=num_threads,
            enable_irbuilder=self.enable_irbuilder,
            optimize=self.optimize,
            strip_omp_transforms=self.strip_omp_transforms,
            fuel=fuel,
            exec_engine=(
                self.exec_engine if exec_engine is None else exec_engine
            ),
            profile_detail=profile_detail,
        )


#: the standing configuration matrix; "stripped" is the reference and
#: must stay last so its outcome is computed exactly once.
DEFAULT_CONFIGS: tuple[Config, ...] = (
    Config("shadow"),
    Config("irbuilder", enable_irbuilder=True),
    Config("midend-O1", optimize=True),
    Config("stripped", strip_omp_transforms=True),
)


@dataclass
class Divergence:
    """One semantics divergence between configurations."""

    kind: str  # stdout / exit-code / trips / expected-stdout /
    #          # transformed-compile-error / stripped-compile-error /
    #          # timeout / ice / cache-divergence / exec-divergence
    config: str  # the configuration that disagreed
    detail: str
    source: str
    seed: Optional[int] = None
    features: tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        head = f"[{self.kind}] config '{self.config}'"
        if self.seed is not None:
            head += f" (seed {self.seed})"
        if self.features:
            head += f" features={','.join(self.features)}"
        return head + "\n" + self.detail


@dataclass
class _Outcome:
    stdout: Optional[str] = None
    exit_code: Optional[int] = None
    error: Optional[str] = None  # "compile-error" / "timeout" / "ice"
    error_detail: str = ""


def _run_config(
    config: Config, source: str, num_threads: int, fuel: int
) -> _Outcome:
    from repro.core.crash_recovery import InternalCompilerError
    from repro.interp import ExecutionTimeout

    if config.via_service:
        return _run_config_via_service(config, source, num_threads, fuel)
    if config.exec_engine != "interp":
        return _run_config_dual_engine(config, source, num_threads, fuel)
    try:
        if config.cached:
            mismatch = _cache_identity_mismatch(config, source)
            if mismatch is not None:
                return _Outcome(
                    error="cache-divergence", error_detail=mismatch
                )
        result = config.run(source, num_threads, fuel)
    except CompilationError as exc:
        kind = "ice" if exc.ice else "compile-error"
        return _Outcome(error=kind, error_detail=str(exc))
    except ExecutionTimeout as exc:
        return _Outcome(error="timeout", error_detail=str(exc))
    except InternalCompilerError as exc:
        return _Outcome(error="ice", error_detail=str(exc))
    except Exception as exc:  # any escape is itself a finding
        return _Outcome(
            error="ice",
            error_detail=f"{type(exc).__name__}: {exc}",
        )
    code = result.exit_code if isinstance(result.exit_code, int) else 0
    return _Outcome(stdout=result.stdout, exit_code=code)


def _engine_outcome(
    config: Config,
    source: str,
    num_threads: int,
    fuel: int,
    engine: str,
) -> tuple[_Outcome, Optional[dict]]:
    """Run one configuration on one engine; outcome plus the execution
    profile fingerprint (None unless the run completed)."""
    from repro.core.crash_recovery import InternalCompilerError
    from repro.exec import profile_fingerprint
    from repro.interp import ExecutionTimeout

    try:
        result = config.run(
            source,
            num_threads,
            fuel,
            exec_engine=engine,
            profile_detail=True,
        )
    except CompilationError as exc:
        kind = "ice" if exc.ice else "compile-error"
        return _Outcome(error=kind, error_detail=str(exc)), None
    except ExecutionTimeout as exc:
        return _Outcome(error="timeout", error_detail=str(exc)), None
    except InternalCompilerError as exc:
        return _Outcome(error="ice", error_detail=str(exc)), None
    except Exception as exc:
        return (
            _Outcome(
                error="ice",
                error_detail=f"{type(exc).__name__}: {exc}",
            ),
            None,
        )
    code = result.exit_code if isinstance(result.exit_code, int) else 0
    return (
        _Outcome(stdout=result.stdout, exit_code=code),
        profile_fingerprint(result.interpreter.profile),
    )


def _run_config_dual_engine(
    config: Config, source: str, num_threads: int, fuel: int
) -> _Outcome:
    """The engine oracle: execute the configuration under the reference
    interpreter AND the closure engine; any observable difference —
    stdout, exit code, error classification/detail, or the execution
    profile fingerprint — is an ``exec-divergence``.  When the engines
    agree the closure outcome stands in for the configuration, so it is
    additionally compared against the stripped reference like every
    other transformed config."""
    ref, ref_fp = _engine_outcome(
        config, source, num_threads, fuel, "interp"
    )
    out, out_fp = _engine_outcome(
        config, source, num_threads, fuel, config.exec_engine
    )
    if (ref.error, ref.error_detail) != (out.error, out.error_detail):
        return _Outcome(
            error="exec-divergence",
            error_detail=(
                f"error classification differs:\n"
                f"interp:   {ref.error!r} {ref.error_detail!r}\n"
                f"{config.exec_engine}: {out.error!r} "
                f"{out.error_detail!r}"
            ),
        )
    if out.error is not None:
        # both engines failed identically — report it as the underlying
        # failure so check_source's invalid-program logic applies
        return out
    if out.stdout != ref.stdout:
        return _Outcome(
            error="exec-divergence",
            error_detail=(
                f"stdout differs:\n"
                f"interp:   {ref.stdout!r}\n"
                f"{config.exec_engine}: {out.stdout!r}"
            ),
        )
    if out.exit_code != ref.exit_code:
        return _Outcome(
            error="exec-divergence",
            error_detail=(
                f"exit code differs: interp {ref.exit_code}, "
                f"{config.exec_engine} {out.exit_code}"
            ),
        )
    if out_fp != ref_fp:
        diffs = [
            f"  {key}: interp={ref_fp[key]!r} "
            f"{config.exec_engine}={out_fp[key]!r}"
            for key in ref_fp
            if ref_fp[key] != out_fp[key]
        ]
        return _Outcome(
            error="exec-divergence",
            error_detail="execution profile differs:\n"
            + "\n".join(diffs),
        )
    return out


#: one cache shared across a campaign's seeds, like a developer's
#: long-lived cache directory — keys are content addresses, so reuse
#: across unrelated programs is exactly what must stay sound
_ORACLE_CACHE = None


def _cache_identity_mismatch(
    config: Config, source: str
) -> Optional[str]:
    """The cache oracle: compile *source* through the memoized pipeline
    at both optimization levels, twice each (the second compile must be
    a cache hit), and byte-compare every IR/diagnostics result against
    the uncached pipeline.  Returns a description of the first
    mismatch, None when the cache is byte-invisible.  Compilation
    errors propagate to the caller's normal error mapping.
    """
    import difflib

    global _ORACLE_CACHE
    from repro.cache import CompilationCache
    from repro.ir.verifier import verify_module
    from repro.midend import default_pass_pipeline
    from repro.pipeline import compile_source, compile_source_cached

    if _ORACLE_CACHE is None:
        _ORACLE_CACHE = CompilationCache()
    cache = _ORACLE_CACHE

    def compile_cached(optimize: bool):
        return compile_source_cached(
            source,
            cache,
            enable_irbuilder=config.enable_irbuilder,
            optimize=optimize,
            strip_omp_transforms=config.strip_omp_transforms,
        )

    def compile_cold(optimize: bool) -> tuple[str, str]:
        result = compile_source(
            source,
            enable_irbuilder=config.enable_irbuilder,
            strip_omp_transforms=config.strip_omp_transforms,
            strict=True,
        )
        if optimize:
            default_pass_pipeline(
                remarks=result.diagnostics.remarks
            ).run(result.module)
            verify_module(result.module)
        return result.ir_text(), result.diagnostics_text()

    for optimize in (False, True):
        level = f"O{int(optimize)}"
        first = compile_cached(optimize)
        again = compile_cached(optimize)
        ref_ir, ref_diags = compile_cold(optimize)
        for label, cc in (("first", first), ("repeat", again)):
            if cc.ir_text != ref_ir:
                diff = "\n".join(
                    list(
                        difflib.unified_diff(
                            ref_ir.splitlines(),
                            cc.ir_text.splitlines(),
                            "cold-ir",
                            f"cached-ir[{label}]",
                            lineterm="",
                        )
                    )[:40]
                )
                return (
                    f"[{level} {label} resume={cc.resumed_from} "
                    f"origin={cc.origin}] cached IR differs from the "
                    f"uncached pipeline:\n{diff}"
                )
            if cc.diagnostics_text != ref_diags:
                return (
                    f"[{level} {label} resume={cc.resumed_from}] "
                    f"cached diagnostics differ:\n"
                    f"cached: {cc.diagnostics_text!r}\n"
                    f"cold:   {ref_diags!r}"
                )
        if not again.hit:
            return (
                f"[{level}] repeat compile missed the cache "
                f"(resume={again.resumed_from})"
            )
    return None


def _run_config_via_service(
    config: Config, source: str, num_threads: int, fuel: int
) -> _Outcome:
    """Execute one configuration on the shared compile service and map
    its terminal response onto the oracle's outcome shape."""
    from repro.service import (
        STATUS_ERROR,
        STATUS_TIMEOUT,
        CompileRequest,
        shared_service,
    )

    service = shared_service()
    [response] = service.process_batch(
        [
            CompileRequest(
                source=source,
                action="run",
                mode="irbuilder" if config.enable_irbuilder else "shadow",
                optimize=config.optimize,
                num_threads=num_threads,
                fuel=fuel,
                strip_omp_transforms=config.strip_omp_transforms,
            )
        ]
    )
    if response.ok:
        code = (
            response.exit_code
            if isinstance(response.exit_code, int)
            else 0
        )
        return _Outcome(stdout=response.output, exit_code=code)
    if response.status == STATUS_ERROR:
        kind = "compile-error" if response.diagnostics else "ice"
        return _Outcome(
            error=kind,
            error_detail=response.diagnostics or response.detail,
        )
    if response.status == STATUS_TIMEOUT:
        return _Outcome(error="timeout", error_detail=response.detail)
    # ice, circuit-open, resource-exhausted: all internal failures
    return _Outcome(error="ice", error_detail=response.detail)


def check_source(
    source: str,
    expected_stdout: Optional[str] = None,
    expected_trips: Optional[int] = None,
    configs: tuple[Config, ...] = DEFAULT_CONFIGS,
    num_threads: int = 3,
    fuel: int = DEFAULT_FUEL,
    seed: Optional[int] = None,
    features: tuple[str, ...] = (),
) -> Optional[Divergence]:
    """Differentially execute *source*; return the first divergence or
    None.

    A program that fails to compile in the *reference* (stripped)
    configuration AND in every transformed one is treated as invalid
    input, not as a divergence — that keeps the shrinker from walking
    into garbage programs.
    """
    reference = configs[-1]
    assert reference.strip_omp_transforms, (
        "the last config must be the stripped reference"
    )
    ref = _run_config(reference, source, num_threads, fuel)

    def make(kind: str, config: str, detail: str) -> Divergence:
        return Divergence(
            kind=kind,
            config=config,
            detail=detail,
            source=source,
            seed=seed,
            features=features,
        )

    for config in configs[:-1]:
        out = _run_config(config, source, num_threads, fuel)
        if out.error == "exec-divergence":
            # Engine disagreement is a finding regardless of whether
            # the reference configuration happens to error too.
            return make("exec-divergence", config.name, out.error_detail)
        if out.error is not None and ref.error is not None:
            continue  # invalid program everywhere: not interesting
        if out.error is not None:
            kind = (
                "transformed-compile-error"
                if out.error == "compile-error"
                else out.error
            )
            return make(kind, config.name, out.error_detail)
        if ref.error is not None:
            kind = (
                "stripped-compile-error"
                if ref.error == "compile-error"
                else f"stripped-{ref.error}"
            )
            return make(kind, reference.name, ref.error_detail)
        if out.stdout != ref.stdout:
            return make(
                "stdout",
                config.name,
                f"transformed ({config.name}): {out.stdout!r}\n"
                f"stripped reference:          {ref.stdout!r}",
            )
        if out.exit_code != ref.exit_code:
            return make(
                "exit-code",
                config.name,
                f"transformed ({config.name}) exit {out.exit_code}, "
                f"stripped exit {ref.exit_code}",
            )
        if expected_stdout is not None and out.stdout != expected_stdout:
            return make(
                "expected-stdout",
                config.name,
                f"run output:         {out.stdout!r}\n"
                f"simulation expects: {expected_stdout!r}",
            )
        if expected_trips is not None and out.stdout is not None:
            m = _TRIPS_RE.search(out.stdout)
            if m is None or int(m.group(1)) != expected_trips:
                got = m.group(1) if m else "<missing>"
                return make(
                    "trips",
                    config.name,
                    f"sum(trip counts) invariant violated: "
                    f"got trips={got}, simulation expects "
                    f"{expected_trips}",
                )
    if ref.error is not None:
        # every transformed config failed too (we'd have returned
        # otherwise only if one succeeded) — invalid program.
        return None
    if expected_stdout is not None and ref.stdout != expected_stdout:
        return make(
            "expected-stdout",
            reference.name,
            f"run output:         {ref.stdout!r}\n"
            f"simulation expects: {expected_stdout!r}",
        )
    return None


def check_program(
    program: GeneratedProgram,
    configs: tuple[Config, ...] = DEFAULT_CONFIGS,
    num_threads: int = 3,
    fuel: int = DEFAULT_FUEL,
) -> Optional[Divergence]:
    """Oracle entry point for generated programs (adds the simulation
    ground truth and the trip-count invariant)."""
    return check_source(
        program.source,
        expected_stdout=program.expected_stdout,
        expected_trips=program.expected_trips,
        configs=configs,
        num_threads=num_threads,
        fuel=fuel,
        seed=program.seed,
        features=program.features,
    )
