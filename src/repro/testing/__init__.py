"""Metamorphic differential testing of the loop transformations.

The paper's central claim is *semantics preservation*: a program
annotated with ``#pragma omp unroll`` / ``tile`` (and the 6.0
``reverse`` / ``interchange`` / ``fuse`` extensions) must behave
exactly like the same program with those directives removed.  This
package turns that claim into an executable oracle:

* :mod:`repro.testing.generator` — a seeded generator of canonical
  loop nests (affine bounds, reductions, disjoint keyed writes,
  nested/composed directives) whose observable output is iteration-
  order independent, together with a python-side simulation that
  predicts the exact expected stdout;
* :mod:`repro.testing.oracle` — runs one program under several
  configurations (shadow AST, OpenMPIRBuilder, mid-end ``-O``,
  ``--strip-omp-transforms``) and reports the first divergence in
  stdout / exit code / trip-count invariants;
* :mod:`repro.testing.shrink` — delta-debugging (ddmin over source
  lines plus integer-literal shrinking) to minimize failures;
* :mod:`repro.testing.fuzz` — the campaign driver
  (``python -m repro.testing.fuzz --count 200 --seed 1``), writing
  self-contained reproducers in the ``-crash-reproducer-dir`` layout
  of :mod:`repro.core.crash_recovery`.
"""

from repro.testing.generator import (
    GeneratedProgram,
    LoopSpec,
    generate_program,
)
from repro.testing.oracle import (
    DEFAULT_CONFIGS,
    Config,
    Divergence,
    check_program,
    check_source,
)
from repro.testing.shrink import shrink_source
from repro.testing.fuzz import FuzzReport, run_campaign

__all__ = [
    "GeneratedProgram",
    "LoopSpec",
    "generate_program",
    "Config",
    "DEFAULT_CONFIGS",
    "Divergence",
    "check_program",
    "check_source",
    "shrink_source",
    "FuzzReport",
    "run_campaign",
]
