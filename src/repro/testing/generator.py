"""Seeded generator of loop-transformation test programs.

Every generated program is **metamorphic-oracle friendly**: its
observable output is independent of iteration *order* (only of the
iteration *set*), so any semantics-preserving loop transformation —
including order-permuting ones like ``tile``, ``reverse`` and
``interchange`` — must leave stdout byte-identical.  Three mechanisms
guarantee that:

* array writes are keyed by the (normalized) iteration vector, each
  cell written exactly once;
* scalar accumulation uses commutative/associative reductions
  (``+``, ``^``) only;
* the trip counter sums iterations, so ``sum(trip counts)`` is an
  explicit invariant checked against a python-side simulation.

The generator also *simulates* the nest in python and records the
exact expected stdout, giving the oracle a ground truth that is
independent of the compiler under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

#: keep guest arrays small and interpreter time bounded
_MAX_CELLS = 400


@dataclass(frozen=True)
class LoopSpec:
    """One canonical-form loop level: ``for (int v = lb; v CMP bound;
    v += step)`` with compile-time-constant affine bounds."""

    var: str
    lb: int
    bound: int
    cmp: str  # "<" or "<="
    step: int  # > 0

    @property
    def values(self) -> range:
        stop = self.bound + 1 if self.cmp == "<=" else self.bound
        return range(self.lb, stop, self.step)

    @property
    def extent(self) -> int:
        return len(self.values)

    def header(self) -> str:
        return (
            f"for (int {self.var} = {self.lb}; {self.var} {self.cmp} "
            f"{self.bound}; {self.var} += {self.step})"
        )

    def normalized(self) -> str:
        """C expression for this level's logical iteration number."""
        base = (
            self.var
            if self.lb == 0
            else f"({self.var} - ({self.lb}))"
        )
        return base if self.step == 1 else f"({base} / {self.step})"


@dataclass(frozen=True)
class Poly:
    """A small integer polynomial over loop variables, printable as C
    and evaluable in python with identical (overflow-free) results."""

    terms: tuple[tuple[int, tuple[str, ...]], ...]

    def c_expr(self) -> str:
        parts = []
        for coeff, vars_ in self.terms:
            factors = [f"({coeff})", *vars_]
            parts.append(" * ".join(factors))
        return " + ".join(parts) if parts else "0"

    def evaluate(self, env: dict[str, int]) -> int:
        total = 0
        for coeff, vars_ in self.terms:
            value = coeff
            for v in vars_:
                value *= env[v]
            total += value
        return total


def _random_poly(rng: random.Random, vars_: list[str]) -> Poly:
    terms: list[tuple[int, tuple[str, ...]]] = []
    for _ in range(rng.randint(1, 3)):
        coeff = rng.choice([-5, -3, -2, -1, 1, 2, 3, 4, 5])
        degree = rng.randint(0, min(2, len(vars_)))
        factors = tuple(
            rng.choice(vars_) for _ in range(degree)
        )
        terms.append((coeff, factors))
    return Poly(tuple(terms))


@dataclass(frozen=True)
class GeneratedProgram:
    """A test program plus its python-predicted ground truth."""

    seed: int
    source: str
    expected_stdout: str
    expected_trips: int
    features: tuple[str, ...]
    pragmas: tuple[str, ...]
    uses_parallel: bool


# ----------------------------------------------------------------------
# Loop construction
# ----------------------------------------------------------------------
def _random_loop(
    rng: random.Random, var: str, max_extent: int
) -> LoopSpec:
    extent = rng.randint(1, max(1, max_extent))
    if rng.random() < 0.05:
        extent = 0  # zero-trip nests are legal and bug-prone
    lb = rng.randint(-4, 6)
    step = rng.choice([1, 1, 1, 2, 3])
    cmp = rng.choice(["<", "<="])
    if extent == 0:
        bound = lb - rng.randint(0, 2) if cmp == "<=" else lb
        bound = min(bound, lb if cmp == "<" else lb - 1)
    else:
        last = lb + (extent - 1) * step
        if cmp == "<":
            bound = last + rng.randint(1, step)
        else:
            bound = last + rng.randint(0, step - 1)
    return LoopSpec(var=var, lb=lb, bound=bound, cmp=cmp, step=step)


def _make_nest(rng: random.Random, depth: int) -> list[LoopSpec]:
    loops: list[LoopSpec] = []
    budget = _MAX_CELLS
    for level in range(depth):
        per_level = max(
            1, int(budget ** (1.0 / (depth - level)))
        )
        spec = _random_loop(
            rng, f"i{level}", min(8, per_level)
        )
        loops.append(spec)
        budget = budget // max(1, spec.extent) if spec.extent else budget
    return loops


def _linear_index(loops: list[LoopSpec]) -> str:
    expr = loops[0].normalized()
    for spec in loops[1:]:
        expr = f"({expr}) * {max(spec.extent, 1)} + {spec.normalized()}"
    return expr


def _linear_value(loops: list[LoopSpec], env: dict[str, int]) -> int:
    idx = 0
    for spec in loops:
        n = (env[spec.var] - spec.lb) // spec.step
        idx = idx * max(spec.extent, 1) + n
    return idx


# ----------------------------------------------------------------------
# Directive selection
# ----------------------------------------------------------------------
def _pick_directives(
    rng: random.Random, loops: list[LoopSpec]
) -> tuple[list[str], list[str], bool]:
    """Returns (pragma lines innermost-last, feature tags, uses_parallel).

    Stacked directives apply outside-in: the first line transforms the
    result of the second, etc. (paper Listing 5)."""
    depth = len(loops)
    choices = [
        ("none", 6),
        ("unroll-partial", 14),
        ("unroll-full", 7),
        ("unroll-heuristic", 4),
        ("tile", 18),
        ("unroll-on-unroll", 5),
        ("unroll-on-tile", 7),
        ("tile-on-tile", 3),
    ]
    if depth >= 2:
        choices += [
            ("reverse", 7),
            ("interchange", 7),
            ("reverse-on-tile", 3),
        ]
    names = [c for c, _ in choices]
    weights = [w for _, w in choices]
    kind = rng.choices(names, weights=weights, k=1)[0]

    def tile_sizes(ndims: int) -> str:
        return ", ".join(
            str(rng.randint(1, 4)) for _ in range(ndims)
        )

    pragmas: list[str] = []
    features = [kind]
    if kind == "unroll-partial":
        pragmas = [f"#pragma omp unroll partial({rng.randint(1, 6)})"]
    elif kind == "unroll-full":
        pragmas = ["#pragma omp unroll full"]
    elif kind == "unroll-heuristic":
        pragmas = ["#pragma omp unroll"]
    elif kind == "tile":
        ndims = rng.randint(1, depth)
        pragmas = [f"#pragma omp tile sizes({tile_sizes(ndims)})"]
    elif kind == "unroll-on-unroll":
        pragmas = [
            f"#pragma omp unroll partial({rng.randint(1, 4)})",
            f"#pragma omp unroll partial({rng.randint(1, 4)})",
        ]
    elif kind == "unroll-on-tile":
        ndims = rng.randint(1, depth)
        pragmas = [
            f"#pragma omp unroll partial({rng.randint(1, 4)})",
            f"#pragma omp tile sizes({tile_sizes(ndims)})",
        ]
    elif kind == "tile-on-tile":
        pragmas = [
            f"#pragma omp tile sizes({tile_sizes(1)})",
            f"#pragma omp tile sizes({tile_sizes(1)})",
        ]
    elif kind == "reverse":
        pragmas = ["#pragma omp reverse"]
    elif kind == "interchange":
        ndims = rng.randint(2, depth)
        perm = list(range(1, ndims + 1))
        rng.shuffle(perm)
        if rng.random() < 0.5:
            pragmas = [
                "#pragma omp interchange permutation("
                + ", ".join(map(str, perm))
                + ")"
            ]
        else:
            pragmas = ["#pragma omp interchange"]
    elif kind == "reverse-on-tile":
        pragmas = [
            "#pragma omp reverse",
            f"#pragma omp tile sizes({tile_sizes(1)})",
        ]

    uses_parallel = False
    # A consuming worksharing directive on top (paper §4 composition) —
    # never over `unroll full` (no loop left to distribute) or bare
    # `unroll` (the generated loop's shape is unspecified).
    if (
        pragmas
        and "full" not in pragmas[0]
        and pragmas[0] != "#pragma omp unroll"
        and rng.random() < 0.25
    ):
        pragmas.insert(
            0,
            "#pragma omp parallel for reduction(+: sum0) "
            "reduction(^: acc1) reduction(+: trips)",
        )
        features.append("parallel-for")
        uses_parallel = True
    return pragmas, features, uses_parallel


# ----------------------------------------------------------------------
# Program assembly + simulation
# ----------------------------------------------------------------------
def _epilogue(total: int) -> list[str]:
    return [
        f"  for (int k = 0; k < {total}; k += 1) "
        'printf("%d ", cells[k]);',
        '  printf("\\n");',
        '  printf("sum0=%d acc1=%d trips=%d\\n", sum0, acc1, trips);',
        "  return 0;",
        "}",
    ]


def _expected_output(
    cells: list[int], sum0: int, acc1: int, trips: int
) -> str:
    head = "".join(f"{v} " for v in cells)
    return f"{head}\n" + f"sum0={sum0} acc1={acc1} trips={trips}\n"


def _generate_nest_program(
    rng: random.Random, seed: int
) -> GeneratedProgram:
    depth = rng.choice([1, 1, 2, 2, 2, 3])
    loops = _make_nest(rng, depth)
    total = 1
    for spec in loops:
        total *= spec.extent
    vars_ = [spec.var for spec in loops]

    cell_poly = _random_poly(rng, vars_)
    sum_poly = _random_poly(rng, vars_)
    xor_poly = _random_poly(rng, vars_)
    pragmas, features, uses_parallel = _pick_directives(rng, loops)

    # an imperfect nest (a statement between loop levels) is legal for
    # unroll-only directive stacks; tile/reverse/interchange need the
    # levels perfectly nested.
    perfect_only = any(
        any(w in p for w in ("tile", "reverse", "interchange"))
        for p in pragmas
    )
    imperfect_poly: Optional[Poly] = None
    if (
        depth >= 2
        and not perfect_only
        and not uses_parallel
        and rng.random() < 0.3
    ):
        imperfect_poly = _random_poly(rng, vars_[:1])
        features.append("imperfect-nest")

    lines = [
        f"// fuzz seed {seed}: "
        + ", ".join(features),
        "int main(void) {",
        f"  int cells[{max(total, 1)}];",
        f"  for (int k = 0; k < {total}; k += 1) cells[k] = -1;",
        "  int sum0 = 0;",
        "  int acc1 = 0;",
        "  int trips = 0;",
    ]
    for pragma in pragmas:
        lines.append(f"  {pragma}")
    indent = "  "
    for level, spec in enumerate(loops):
        lines.append(f"{indent}{spec.header()} {{")
        indent += "  "
        if level == 0 and imperfect_poly is not None:
            lines.append(
                f"{indent}acc1 += {imperfect_poly.c_expr()};"
            )
    lines.append(
        f"{indent}cells[{_linear_index(loops)}] = "
        f"{cell_poly.c_expr()};"
    )
    lines.append(f"{indent}sum0 += {sum_poly.c_expr()};")
    lines.append(f"{indent}acc1 ^= {xor_poly.c_expr()};")
    lines.append(f"{indent}trips += 1;")
    for _ in loops:
        indent = indent[:-2]
        lines.append(f"{indent}}}")
    lines.extend(_epilogue(total))

    # --- python-side simulation -------------------------------------
    cells = [-1] * total
    sum0 = acc1 = trips = 0

    def run_level(level: int, env: dict[str, int]) -> None:
        nonlocal sum0, acc1, trips
        if level == len(loops):
            cells[_linear_value(loops, env)] = cell_poly.evaluate(env)
            sum0 += sum_poly.evaluate(env)
            acc1 ^= xor_poly.evaluate(env)
            trips += 1
            return
        for value in loops[level].values:
            env[loops[level].var] = value
            if level == 0 and imperfect_poly is not None:
                acc1 += imperfect_poly.evaluate(env)
            run_level(level + 1, env)

    run_level(0, {})
    expected = _expected_output(cells, sum0, acc1, trips)
    return GeneratedProgram(
        seed=seed,
        source="\n".join(lines) + "\n",
        expected_stdout=expected,
        expected_trips=trips,
        features=tuple(features),
        pragmas=tuple(pragmas),
        uses_parallel=uses_parallel,
    )


def _generate_fuse_program(
    rng: random.Random, seed: int
) -> GeneratedProgram:
    """``#pragma omp fuse`` over a sequence of two independent loops."""
    a = _random_loop(rng, "i", 8)
    b = _random_loop(rng, "j", 8)
    poly_a = _random_poly(rng, ["i"])
    poly_b = _random_poly(rng, ["j"])
    total = a.extent + b.extent
    features = ["fuse"]
    lines = [
        f"// fuzz seed {seed}: fuse",
        "int main(void) {",
        f"  int cells[{max(total, 1)}];",
        f"  for (int k = 0; k < {total}; k += 1) cells[k] = -1;",
        "  int sum0 = 0;",
        "  int acc1 = 0;",
        "  int trips = 0;",
        "  #pragma omp fuse",
        "  {",
        f"    {a.header()} {{",
        f"      cells[{a.normalized()}] = {poly_a.c_expr()};",
        f"      sum0 += {poly_a.c_expr()};",
        "      trips += 1;",
        "    }",
        f"    {b.header()} {{",
        f"      cells[{a.extent} + {b.normalized()}] = "
        f"{poly_b.c_expr()};",
        f"      acc1 ^= {poly_b.c_expr()};",
        "      trips += 1;",
        "    }",
        "  }",
    ]
    lines.extend(_epilogue(total))
    cells = [-1] * total
    sum0 = acc1 = trips = 0
    for i, value in enumerate(a.values):
        cells[i] = poly_a.evaluate({"i": value})
        sum0 += poly_a.evaluate({"i": value})
        trips += 1
    for j, value in enumerate(b.values):
        cells[a.extent + j] = poly_b.evaluate({"j": value})
        acc1 ^= poly_b.evaluate({"j": value})
        trips += 1
    expected = _expected_output(cells, sum0, acc1, trips)
    return GeneratedProgram(
        seed=seed,
        source="\n".join(lines) + "\n",
        expected_stdout=expected,
        expected_trips=trips,
        features=tuple(features),
        pragmas=("#pragma omp fuse",),
        uses_parallel=False,
    )


def generate_program(seed: int) -> GeneratedProgram:
    """Deterministically generate one metamorphic test program."""
    rng = random.Random(seed)
    if rng.random() < 0.08:
        return _generate_fuse_program(rng, seed)
    return _generate_nest_program(rng, seed)
