"""The metamorphic fuzzing campaign driver.

::

    PYTHONPATH=src python -m repro.testing.fuzz --count 200 --seed 1 \
        --reproducer-dir fuzz-reproducers

For each seed the driver generates a program
(:mod:`repro.testing.generator`), differentially executes it
(:mod:`repro.testing.oracle`), auto-shrinks any divergence
(:mod:`repro.testing.shrink`) and drops a self-contained reproducer in
the ``-crash-reproducer-dir`` layout of PR 3's crash-recovery
subsystem (``repro.c`` + ``cmd`` + ``traceback.txt``, plus the
unshrunk ``original.c`` and the oracle's ``report.txt``).

Exit status: 0 when no divergence was found, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.core.crash_recovery import crash_context, write_reproducer
from repro.testing.generator import generate_program
from repro.testing.oracle import (
    DEFAULT_CONFIGS,
    DEFAULT_FUEL,
    Config,
    Divergence,
    check_program,
    check_source,
)


def service_configs() -> tuple[Config, ...]:
    """DEFAULT_CONFIGS plus the resilient-compile-service configuration
    (worker-pool isolation must be semantics-neutral), inserted before
    the stripped reference, which must stay last."""
    return DEFAULT_CONFIGS[:-1] + (
        Config("service", via_service=True),
        DEFAULT_CONFIGS[-1],
    )


def cached_configs() -> tuple[Config, ...]:
    """DEFAULT_CONFIGS plus the compilation-cache oracle configurations
    (cached and cold compiles must be byte-identical, warm and
    stage-resumed included), inserted before the stripped reference."""
    return DEFAULT_CONFIGS[:-1] + (
        Config("cached-shadow", cached=True),
        Config("cached-irbuilder", cached=True, enable_irbuilder=True),
        DEFAULT_CONFIGS[-1],
    )


def closure_configs() -> tuple[Config, ...]:
    """DEFAULT_CONFIGS plus the closure-engine oracle configurations
    (the sixth oracle): each one races the closure-compiled engine
    against the reference interpreter on the same program — stdout,
    exit codes, error classification and execution profiles must all
    match — across shadow, IRBuilder and the optimized pipeline.
    Inserted before the stripped reference, which must stay last."""
    return DEFAULT_CONFIGS[:-1] + (
        Config("closures-shadow", exec_engine="closures"),
        Config(
            "closures-irbuilder",
            enable_irbuilder=True,
            exec_engine="closures",
        ),
        Config(
            "closures-O1", optimize=True, exec_engine="closures"
        ),
        DEFAULT_CONFIGS[-1],
    )


from repro.testing.shrink import shrink_source


class SemanticsDivergenceError(Exception):
    """Exception façade over a Divergence so the PR 3 reproducer
    machinery (which reports exceptions) can be reused verbatim."""

    def __init__(self, divergence: Divergence):
        super().__init__(divergence.describe())
        self.divergence = divergence


@dataclass
class Finding:
    divergence: Divergence
    shrunk_source: Optional[str] = None
    reproducer_path: Optional[str] = None

    @property
    def shrunk(self) -> bool:
        return self.shrunk_source is not None


@dataclass
class FuzzReport:
    count: int = 0
    seeds: tuple[int, int] = (0, 0)  # [first, last]
    findings: list[Finding] = field(default_factory=list)
    feature_counts: Counter = field(default_factory=Counter)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def unshrunk_count(self) -> int:
        return sum(1 for f in self.findings if not f.shrunk)

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.count} programs "
            f"(seeds {self.seeds[0]}..{self.seeds[1]}), "
            f"{len(self.findings)} divergence(s), "
            f"{self.unshrunk_count} unshrunk",
        ]
        top = ", ".join(
            f"{name}:{n}"
            for name, n in self.feature_counts.most_common(12)
        )
        lines.append(f"fuzz: feature coverage: {top}")
        for finding in self.findings:
            d = finding.divergence
            where = finding.reproducer_path or "<not written>"
            lines.append(
                f"fuzz: DIVERGENCE seed={d.seed} kind={d.kind} "
                f"config={d.config} reproducer={where}"
            )
        return "\n".join(lines)


def _write_finding(
    finding: Finding, reproducer_dir: str, num_threads: int
) -> None:
    """Persist one finding in the crash-recovery reproducer layout."""
    divergence = finding.divergence
    source = finding.shrunk_source or divergence.source
    invocation = (
        f"miniclang --run --num-threads {num_threads} repro.c  "
        "# diverges from: miniclang --strip-omp-transforms --run "
        f"--num-threads {num_threads} repro.c"
    )
    with crash_context(
        source,
        f"fuzz-{divergence.seed}.c",
        invocation,
        reproducer_dir,
    ):
        path = write_reproducer(
            "differential",
            SemanticsDivergenceError(divergence),
            divergence.describe(),
        )
    finding.reproducer_path = path
    if path is None:
        return
    with open(
        os.path.join(path, "original.c"), "w", encoding="utf-8"
    ) as fh:
        fh.write(divergence.source)
    with open(
        os.path.join(path, "report.txt"), "w", encoding="utf-8"
    ) as fh:
        fh.write(divergence.describe() + "\n")
        if finding.shrunk:
            fh.write("\nshrunken reproducer (repro.c):\n")
            fh.write(source)


def run_campaign(
    count: int = 200,
    seed: int = 1,
    reproducer_dir: Optional[str] = "fuzz-reproducers",
    shrink: bool = True,
    configs=DEFAULT_CONFIGS,
    num_threads: int = 3,
    fuel: int = DEFAULT_FUEL,
    max_shrink_evaluations: int = 400,
    progress=None,
) -> FuzzReport:
    """Run *count* seeds starting at *seed*; returns the report."""
    report = FuzzReport(
        count=count, seeds=(seed, seed + count - 1)
    )
    for offset in range(count):
        current = seed + offset
        program = generate_program(current)
        report.feature_counts.update(program.features)
        divergence = check_program(
            program,
            configs=configs,
            num_threads=num_threads,
            fuel=fuel,
        )
        if divergence is None:
            if progress and (offset + 1) % 25 == 0:
                progress(
                    f"fuzz: {offset + 1}/{count} programs, "
                    f"{len(report.findings)} divergence(s)"
                )
            continue
        finding = Finding(divergence=divergence)
        if shrink:
            # Pin the failure class: a candidate only counts if it
            # reproduces the *same* kind of divergence in the *same*
            # configuration — otherwise ddmin happily walks into an
            # unrelated (often legitimate-diagnostic) failure and the
            # "minimized" reproducer no longer shows the original bug.
            want_kind = divergence.kind
            want_config = divergence.config

            def still_diverges(candidate: str) -> bool:
                got = check_source(
                    candidate,
                    configs=configs,
                    num_threads=num_threads,
                    fuel=fuel,
                )
                return (
                    got is not None
                    and got.kind == want_kind
                    and got.config == want_config
                )

            try:
                finding.shrunk_source = shrink_source(
                    divergence.source,
                    still_diverges,
                    max_evaluations=max_shrink_evaluations,
                )
            except ValueError:
                # divergence not reproducible without the simulation
                # ground truth (e.g. only the expected-stdout check
                # fired); keep the original as the reproducer.
                finding.shrunk_source = divergence.source
        if reproducer_dir:
            _write_finding(finding, reproducer_dir, num_threads)
        report.findings.append(finding)
        if progress:
            progress(
                f"fuzz: DIVERGENCE at seed {current}: "
                f"{divergence.kind} ({divergence.config})"
            )
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.testing.fuzz",
        description="metamorphic differential fuzzer for the loop-"
        "transformation pipeline",
    )
    parser.add_argument(
        "--count", "-n", type=int, default=200,
        help="number of programs to generate (default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="first seed; seeds run [seed, seed+count)",
    )
    parser.add_argument(
        "--reproducer-dir",
        default="fuzz-reproducers",
        help="where shrunk reproducers are written "
        "(default fuzz-reproducers)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_false",
        dest="shrink",
        help="skip delta-debugging of findings",
    )
    parser.add_argument(
        "--num-threads", type=int, default=3,
        help="simulated team size for parallel programs (default 3)",
    )
    parser.add_argument(
        "--fuel", type=int, default=DEFAULT_FUEL,
        help="per-run retired-instruction budget",
    )
    parser.add_argument(
        "--dump-seed", type=int, default=None, metavar="SEED",
        help="print the program generated for SEED and exit",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="add the resilient compile service as a fifth "
        "differential configuration",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="add the compilation-cache oracle configurations: cached "
        "(cold, warm, stage-resumed) compiles must be byte-identical "
        "to uncached ones",
    )
    parser.add_argument(
        "--exec",
        action="store_true",
        dest="exec_oracle",
        help="add the closure-engine oracle configurations: every run "
        "races -fexec=closures against the reference interpreter and "
        "requires identical output, exit codes and execution profiles",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress progress lines",
    )
    args = parser.parse_args(argv)

    if args.dump_seed is not None:
        program = generate_program(args.dump_seed)
        print(program.source)
        print("// expected stdout:")
        for line in program.expected_stdout.splitlines():
            print(f"//   {line}")
        return 0

    progress = None if args.quiet else (
        lambda msg: print(msg, file=sys.stderr)
    )
    if sum((args.service, args.cache, args.exec_oracle)) > 1:
        parser.error(
            "--service, --cache and --exec are mutually exclusive"
        )
    if args.service:
        configs = service_configs()
    elif args.cache:
        configs = cached_configs()
    elif args.exec_oracle:
        configs = closure_configs()
    else:
        configs = DEFAULT_CONFIGS
    report = run_campaign(
        count=args.count,
        seed=args.seed,
        reproducer_dir=args.reproducer_dir,
        shrink=args.shrink,
        configs=configs,
        num_threads=args.num_threads,
        fuel=args.fuel,
        progress=progress,
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
