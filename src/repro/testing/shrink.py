"""Delta-debugging shrinker for fuzzer findings (llvm-reduce's role).

``shrink_source(source, predicate)`` minimizes a failing program while
``predicate(candidate)`` stays true (predicate = "the oracle still
reports a divergence").  Two alternating phases until fixpoint:

* **ddmin over lines** (Zeller's classic algorithm): remove ever-finer
  line chunks; candidates that no longer fail (e.g. no longer compile)
  are simply rejected by the predicate;
* **integer shrinking**: rewrite each integer literal toward 0/1/half
  to shrink bounds, factors and coefficients.

Every candidate evaluation runs the full differential oracle, so a
budget caps the total number of evaluations.
"""

from __future__ import annotations

import re
from typing import Callable

Predicate = Callable[[str], bool]

_INT_RE = re.compile(r"(?<![\w.])(\d+)")


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        self.spent += 1
        return self.spent <= self.limit


def _ddmin_lines(
    lines: list[str], predicate: Predicate, budget: _Budget
) -> list[str]:
    n = 2
    while len(lines) >= 2:
        chunk_size = max(1, len(lines) // n)
        reduced = False
        start = 0
        while start < len(lines):
            candidate = (
                lines[:start] + lines[start + chunk_size :]
            )
            if not budget.take():
                return lines
            if candidate and predicate("\n".join(candidate) + "\n"):
                lines = candidate
                n = max(n - 1, 2)
                reduced = True
                break
            start += chunk_size
        if not reduced:
            if n >= len(lines):
                break
            n = min(len(lines), n * 2)
    return lines


def _shrink_integers(
    source: str, predicate: Predicate, budget: _Budget
) -> str:
    """Replace integer literals with smaller values where the failure
    persists."""
    changed = True
    while changed:
        changed = False
        matches = list(_INT_RE.finditer(source))
        for m in matches:
            value = int(m.group(1))
            for smaller in (0, 1, 2, value // 2):
                if smaller >= value:
                    continue
                candidate = (
                    source[: m.start(1)]
                    + str(smaller)
                    + source[m.end(1) :]
                )
                if not budget.take():
                    return source
                if predicate(candidate):
                    source = candidate
                    changed = True
                    break
            if changed:
                break  # literal positions moved; re-scan
    return source


def shrink_source(
    source: str,
    predicate: Predicate,
    max_evaluations: int = 400,
) -> str:
    """Minimize *source* while ``predicate`` holds.  Returns the
    smallest failing variant found (at worst the input itself).
    ``predicate(source)`` must be true on entry."""
    if not predicate(source):
        raise ValueError(
            "shrink_source: predicate is false on the initial input"
        )
    budget = _Budget(max_evaluations)
    best = source
    while True:
        lines = _ddmin_lines(
            best.split("\n"), predicate, budget
        )
        candidate = "\n".join(lines)
        if not candidate.endswith("\n"):
            candidate += "\n"
        candidate = _shrink_integers(candidate, predicate, budget)
        if candidate == best or budget.spent >= budget.limit:
            return candidate
        best = candidate
