"""repro — reproduction of "Loop Transformations using Clang's Abstract
Syntax Tree" (Michael Kruse, ICPP 2021 workshops).

A miniature Clang/LLVM pipeline in pure Python implementing OpenMP 5.1's
``tile`` and ``unroll`` loop transformation directives with **both** AST
representations the paper describes:

1. the *shadow AST* (``OMPUnrollDirective``/``OMPTileDirective`` carrying
   a Sema-built transformed statement next to the syntactic tree), and
2. the *canonical loop* representation (``OMPCanonicalLoop`` +
   ``CanonicalLoopInfo``/``OpenMPIRBuilder``).

Quickstart::

    from repro import compile_source, run_source

    result = compile_source(source)
    print(result.ast_dump())   # clang-style -ast-dump
    print(result.ir_text())    # .ll-style IR

    outcome = run_source(source, num_threads=4)
    print(outcome.stdout)

Layer packages (paper Fig. 1): :mod:`repro.sourcemgr`, :mod:`repro.lex`,
:mod:`repro.preprocessor`, :mod:`repro.parse`, :mod:`repro.sema`,
:mod:`repro.codegen`; the paper's contribution in :mod:`repro.core` and
:mod:`repro.ompirbuilder`; execution substrate in :mod:`repro.ir`,
:mod:`repro.midend`, :mod:`repro.runtime`, :mod:`repro.interp`.
"""

from repro.pipeline import (
    CompilationError,
    CompileResult,
    RunResult,
    compile_source,
    run_source,
)

__version__ = "1.0.0"

__all__ = [
    "CompilationError",
    "CompileResult",
    "RunResult",
    "compile_source",
    "run_source",
]
