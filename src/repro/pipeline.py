"""High-level compilation pipeline (the public library API).

Chains the layers of paper Fig. 1 — FileManager, SourceManager, Lexer,
Preprocessor, Parser, Sema, CodeGen — into one call.  This is what the
examples, tests and benchmarks use; the CLI driver
(:mod:`repro.driver.cli`) is a thin argument-parsing wrapper around it.

Typical use::

    from repro.pipeline import compile_source, run_source

    result = compile_source(C_CODE, openmp=True)
    print(result.ast_dump())          # clang-style -ast-dump
    print(result.ir_text())           # .ll-style IR

    outcome = run_source(C_CODE, num_threads=4)
    print(outcome.stdout)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.astlib.context import ASTContext
from repro.astlib.decls import FunctionDecl, TranslationUnitDecl
from repro.astlib.dump import dump_ast
from repro.codegen import CodeGenModule, CodeGenOptions
from repro.core.crash_recovery import (
    crash_context,
    pretty_stack_entry,
    recovery_scope,
)
from repro.diagnostics import (
    Diagnostic,
    DiagnosticsEngine,
    FatalErrorOccurred,
    Severity,
    TooManyErrors,
)
from repro.instrument import (
    STATS,
    ExecutionProfile,
    PassExecution,
    PassInstrumentation,
    RemarkEmitter,
    time_trace_scope,
)
from repro.interp import Interpreter, MemoryError_
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.parse import Parser
from repro.preprocessor import Preprocessor, PreprocessorOptions
from repro.sema import Sema
from repro.sourcemgr import FileManager, SourceManager


class CompilationError(Exception):
    """Raised when compilation produced errors; carries the rendered
    diagnostics.  ``ice=True`` marks that at least one of the errors is
    a *recovered* internal compiler error (category ``"ice"``), which
    the driver maps to the dedicated ICE exit code."""

    def __init__(self, diagnostics_text: str, ice: bool = False):
        super().__init__(diagnostics_text)
        self.diagnostics_text = diagnostics_text
        self.ice = ice


@dataclass
class CompileResult:
    """Everything produced by one compilation."""

    source_manager: SourceManager
    diagnostics: DiagnosticsEngine
    ast_context: ASTContext
    translation_unit: TranslationUnitDecl
    sema: Sema
    module: Optional[Module] = None
    #: statistics deltas attributable to this compilation (counter name
    #: -> increment observed while compiling), see repro.instrument.stats
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diagnostics.has_errors()

    @property
    def remarks(self) -> RemarkEmitter:
        """Optimization remarks collected during this compilation."""
        return self.diagnostics.remarks

    def function(self, name: str) -> FunctionDecl:
        for fn in self.translation_unit.functions():
            if fn.name == name:
                return fn
        raise KeyError(f"no function '{name}'")

    def ast_dump(
        self,
        function: str | None = None,
        dump_shadow: bool = False,
    ) -> str:
        """clang-style ``-ast-dump`` of one function body or the TU."""
        if function is not None:
            fn = self.function(function)
            target = fn.body if fn.body is not None else fn
            return dump_ast(target, dump_shadow=dump_shadow)
        parts = []
        for fn in self.translation_unit.functions():
            if fn.body is not None:
                parts.append(dump_ast(fn.body, dump_shadow=dump_shadow))
        return "\n".join(parts)

    def ir_text(self) -> str:
        assert self.module is not None, "compiled with -syntax-only?"
        return print_module(self.module)

    def diagnostics_text(self) -> str:
        return self.diagnostics.render_all()


@dataclass
class RunResult:
    """Result of executing a compiled program."""

    exit_code: Any
    stdout: str
    instruction_count: int
    interpreter: Interpreter
    compile_result: CompileResult

    @property
    def profile(self) -> ExecutionProfile:
        """Dynamic execution profile (per-thread instruction counts,
        barrier waits, optional per-block attribution)."""
        return self.interpreter.profile


def _front_end(
    source: str,
    filename: str,
    openmp: bool,
    enable_irbuilder: bool,
    defines: dict[str, str] | None,
    include_paths: list[str] | None,
    virtual_files: dict[str, str] | None,
    error_limit: int = 0,
    strip_omp_transforms: bool = False,
) -> CompileResult:
    sm = SourceManager()
    fm = FileManager(include_paths or [])
    if virtual_files:
        for name, text in virtual_files.items():
            fm.register_virtual_file(name, text)
    diags = DiagnosticsEngine(sm, error_limit=error_limit)
    ctx = ASTContext()
    sema = Sema(ctx, diags)
    sema.openmp.use_irbuilder = enable_irbuilder
    try:
        tokens: list = []
        # Constructing the preprocessor already lexes (builtin macros,
        # -D values), so it sits inside the recovery scope too.
        with recovery_scope("preprocess", diags), pretty_stack_entry(
            f"preprocessing '{filename}'"
        ):
            pp = Preprocessor(
                sm,
                fm,
                diags,
                PreprocessorOptions(
                    defines=dict(defines or {}),
                    openmp=openmp,
                    strip_omp_transforms=strip_omp_transforms,
                ),
            )
            pp.enter_source(source, filename)
            tokens = pp.lex_all()
        with recovery_scope("parse", diags), pretty_stack_entry(
            f"parsing '{filename}'"
        ):
            parser = Parser(tokens, sema, diags)
            parser.parse_translation_unit()
    except FatalErrorOccurred:
        pass
    except TooManyErrors:
        # Clang: "fatal error: too many errors emitted, stopping now".
        # Appended directly — report() would re-raise on FATAL.
        diags.diagnostics.append(
            Diagnostic(
                Severity.FATAL,
                "too many errors emitted, stopping now "
                f"[-ferror-limit={error_limit}]",
            )
        )
    return CompileResult(
        source_manager=sm,
        diagnostics=diags,
        ast_context=ctx,
        translation_unit=ctx.translation_unit,
        sema=sema,
    )


def compile_source(
    source: str,
    filename: str = "<input>",
    openmp: bool = True,
    enable_irbuilder: bool = False,
    syntax_only: bool = False,
    defines: dict[str, str] | None = None,
    include_paths: list[str] | None = None,
    virtual_files: dict[str, str] | None = None,
    verify: bool = True,
    strict: bool = True,
    error_limit: int = 0,
    crash_reproducer_dir: str | None = None,
    invocation: str | None = None,
    strip_omp_transforms: bool = False,
) -> CompileResult:
    """Compile C source to IR.

    Parameters mirror the clang flags the paper's workflow uses:
    ``openmp`` = ``-fopenmp``, ``enable_irbuilder`` =
    ``-fopenmp-enable-irbuilder``, ``syntax_only`` = ``-fsyntax-only``,
    ``error_limit`` = ``-ferror-limit=N`` (0 = unlimited),
    ``crash_reproducer_dir`` = ``-crash-reproducer-dir``,
    ``strip_omp_transforms`` = ``--strip-omp-transforms`` (discard
    unroll/tile/reverse/interchange/fuse directives — the
    differential-testing reference configuration).
    With ``strict=True`` a :class:`CompilationError` is raised when any
    error diagnostic was produced.  Every phase runs under a crash
    recovery scope: an unexpected exception either becomes an error
    diagnostic of category ``"ice"`` (per-directive Sema, per-function
    CodeGen) or an :class:`~repro.core.crash_recovery.
    InternalCompilerError` — never a raw Python traceback.
    """
    before = STATS.snapshot()
    with crash_context(
        source, filename, invocation, crash_reproducer_dir
    ):
        result = _front_end(
            source,
            filename,
            openmp,
            enable_irbuilder,
            defines,
            include_paths,
            virtual_files,
            error_limit=error_limit,
            strip_omp_transforms=strip_omp_transforms,
        )
        if result.diagnostics.has_errors():
            result.stats = STATS.delta_since(before)
            if strict:
                raise CompilationError(
                    result.diagnostics_text(),
                    ice=result.diagnostics.has_internal_errors(),
                )
            return result
        if syntax_only:
            result.stats = STATS.delta_since(before)
            return result
        cgm = CodeGenModule(
            result.ast_context,
            result.diagnostics,
            CodeGenOptions(
                enable_irbuilder=enable_irbuilder,
                module_name=filename,
            ),
        )
        result.module = cgm.emit_translation_unit(
            result.translation_unit
        )
        if result.diagnostics.has_errors() and strict:
            result.stats = STATS.delta_since(before)
            raise CompilationError(
                result.diagnostics_text(),
                ice=result.diagnostics.has_internal_errors(),
            )
        if (
            verify
            and result.module is not None
            and not result.diagnostics.has_errors()
        ):
            with time_trace_scope("Verify", filename):
                verify_module(result.module)
        result.stats = STATS.delta_since(before)
        return result


def _lex_for_cache(
    source: str,
    filename: str,
    openmp: bool,
    defines: dict[str, str],
    include_paths: list[str],
    strip_omp_transforms: bool,
):
    """Preprocess *source* in isolation (the cache's stage-1 probe).

    Returns ``(tokens, diags)``; the token stream is what the
    preprocess-stage cache key hashes, so an include-file edit changes
    the key (the stream reflects post-#include content) while a comment
    or whitespace edit does not."""
    sm = SourceManager()
    fm = FileManager(include_paths or [])
    diags = DiagnosticsEngine(sm)
    pp = Preprocessor(
        sm,
        fm,
        diags,
        PreprocessorOptions(
            defines=dict(defines),
            openmp=openmp,
            strip_omp_transforms=strip_omp_transforms,
        ),
    )
    pp.enter_source(source, filename)
    return pp.lex_all(), diags


def compile_source_cached(
    source: str,
    cache,
    *,
    filename: str = "<input>",
    openmp: bool = True,
    enable_irbuilder: bool = False,
    optimize: bool = False,
    defines: dict[str, str] | None = None,
    include_paths: list[str] | None = None,
    strip_omp_transforms: bool = False,
    error_limit: int = 0,
    crash_reproducer_dir: str | None = None,
    invocation: str | None = None,
):
    """:func:`compile_source` with per-stage memoization.

    *cache* is a :class:`repro.cache.CompilationCache`.  The memoization
    hooks sit at the pipeline's stage boundaries, each keyed by a chain
    of content hashes (see :mod:`repro.cache.key`), so recompilation
    resumes downstream of the first divergent input:

    1. **exact** — the raw request (source + flags) matches an alias:
       replay the final artifact, run nothing;
    2. **tokens** — after preprocessing, the token stream matches: the
       final artifact is replayed and parse/sema/codegen/mid-end are
       skipped (comment and whitespace edits land here);
    3. **module** — only the ``optimize`` flag diverged: the memoized
       unoptimized module (deep-copied) feeds the mid-end directly;
    4. **cold** — full compile; every stage artifact is recorded on the
       way out, including per-function codegen hashes.

    Only *successful* compiles are cached (diagnostic-error and ICE
    outcomes raise, exactly like ``compile_source(strict=True)``, and
    leave no cache entry).  Cached diagnostics (warnings) embed source
    locations, so they are only replayed when the raw source text is
    byte-identical — a token-level hit on a comment-shifted file falls
    back to a cold compile rather than replaying stale line numbers.
    Returns a :class:`repro.cache.CachedCompile`; cached and cold
    compiles are byte-identical in ``ir_text`` and
    ``diagnostics_text`` (the differential fuzzer's cache oracle
    enforces this).
    """
    import copy as _copy

    from repro.cache.cache import (
        FUNCTION_HITS,
        STAGE_RESUMES,
        CachedCompile,
    )
    from repro.cache.key import (
        define_items,
        request_fingerprint,
        source_id,
        stage_key,
        token_stream_text,
    )
    from repro.ir.printer import print_function
    from repro.midend import default_pass_pipeline

    defines = dict(defines or {})
    include_paths = list(include_paths or [])
    mode = "irbuilder" if enable_irbuilder else "shadow"
    src_id = source_id(source)

    raw_key = request_fingerprint(
        source,
        filename=filename,
        openmp=openmp,
        enable_irbuilder=enable_irbuilder,
        optimize=optimize,
        strip_omp_transforms=strip_omp_transforms,
        defines=defines,
        include_paths=include_paths,
        error_limit=error_limit,
    )
    # The raw key hashes the main file's bytes but not the bytes of
    # any #included headers; only the token-stream key sees those.
    # With include paths in play the exact-alias fast path could
    # replay a stale artifact after a header edit, so skip it.
    allow_alias = not include_paths

    def _tier_of(key: str) -> str:
        return (
            "memory" if f"artifact:{key}" in cache.memory else "disk"
        )

    def _diags_ok(artifact: dict) -> bool:
        # Rendered diagnostics embed line/column numbers, so they are
        # only valid verbatim against the exact source that produced
        # them.  Clean compiles replay anywhere.
        return (
            artifact.get("diagnostics", "") == ""
            or artifact.get("source_id") == src_id
        )

    if allow_alias:
        target = cache.get_alias(raw_key)
        if target is not None:
            # Tier must be sampled before the lookup: a disk hit is
            # promoted into the memory tier on the way out.
            tier = _tier_of(target)
            artifact = cache.get_artifact(target)
            if artifact is not None and _diags_ok(artifact):
                return CachedCompile(
                    ir_text=artifact["ir"],
                    diagnostics_text=artifact.get("diagnostics", ""),
                    key=target,
                    hit=True,
                    resumed_from="exact",
                    origin=tier,
                    stage_keys={"final": target},
                )

    # Stage 1 probe: preprocess in isolation to derive the chained
    # stage keys.  Any lex-level failure (error diagnostics, fatal
    # include errors) falls through to the uncached pipeline, which
    # owns error rendering and crash recovery — nothing is cached.
    tokens = None
    try:
        tokens, pre_diags = _lex_for_cache(
            source,
            filename,
            openmp,
            defines,
            include_paths,
            strip_omp_transforms,
        )
        if pre_diags.has_errors():
            tokens = None
    except Exception:
        tokens = None

    stage_keys: dict[str, str] = {}
    k_cg = k_opt = final_key = None
    if tokens is not None:
        k_pp = stage_key(
            "preprocess",
            None,
            [
                token_stream_text(tokens),
                filename,
                openmp,
                list(define_items(defines)),
                strip_omp_transforms,
            ],
        )
        k_fe = stage_key("frontend", k_pp, [mode, error_limit])
        k_cg = stage_key("codegen", k_fe, [])
        stage_keys = {
            "preprocess": k_pp,
            "frontend": k_fe,
            "codegen": k_cg,
        }
        if optimize:
            k_opt = stage_key(
                "opt", k_cg, default_pass_pipeline().pass_names()
            )
            stage_keys["opt"] = k_opt
        final_key = k_opt if optimize else k_cg

        tier = _tier_of(final_key)  # sample before the promoting get
        artifact = cache.get_artifact(final_key)
        if artifact is not None and _diags_ok(artifact):
            STAGE_RESUMES.inc()
            if allow_alias:
                cache.put_alias(raw_key, final_key)
            return CachedCompile(
                ir_text=artifact["ir"],
                diagnostics_text=artifact.get("diagnostics", ""),
                key=final_key,
                hit=True,
                resumed_from="tokens",
                origin=tier,
                stage_keys=stage_keys,
            )

        if optimize:
            # Module resume: the unoptimized module for this token
            # stream is memoized in-process — rerun only the mid-end.
            cg_art = cache.get_artifact(k_cg)
            if cg_art is not None and _diags_ok(cg_art):
                module = cache.get_module(k_cg)
                if module is not None:
                    STAGE_RESUMES.inc()
                    with crash_context(
                        source,
                        filename,
                        invocation,
                        crash_reproducer_dir,
                    ):
                        default_pass_pipeline().run(module)
                        with time_trace_scope("Verify", filename):
                            verify_module(module)
                    diag_text = cg_art.get("diagnostics", "")
                    artifact = {
                        "stage": "opt",
                        "ir": print_module(module),
                        "diagnostics": diag_text,
                        "source_id": cg_art.get("source_id", src_id),
                    }
                    cache.put_artifact(k_opt, artifact)
                    if allow_alias:
                        cache.put_alias(raw_key, k_opt)
                    return CachedCompile(
                        ir_text=artifact["ir"],
                        diagnostics_text=diag_text,
                        key=k_opt,
                        hit=False,
                        resumed_from="module",
                        origin="compiled",
                        stage_keys=stage_keys,
                    )

    # Cold: the full pipeline.  strict=True means errors and ICEs
    # raise before any store below, so failures are never cached.
    result = compile_source(
        source,
        filename=filename,
        openmp=openmp,
        enable_irbuilder=enable_irbuilder,
        syntax_only=False,
        defines=defines,
        include_paths=include_paths,
        verify=True,
        strict=True,
        error_limit=error_limit,
        crash_reproducer_dir=crash_reproducer_dir,
        invocation=invocation,
        strip_omp_transforms=strip_omp_transforms,
    )
    assert result.module is not None
    diag_text = result.diagnostics_text()
    unopt_ir = result.ir_text()

    if k_cg is not None:
        cache.put_artifact(
            k_cg,
            {
                "stage": "codegen",
                "ir": unopt_ir,
                "diagnostics": diag_text,
                "source_id": src_id,
            },
        )
        # Per-function codegen memo: keyed by the function body's AST
        # dump, so an edit to one function registers every *other*
        # function as a codegen-level hit.  (Splicing cached function
        # text into a fresh module is unsound — module-level metadata
        # numbering is global — so this memo only feeds accounting
        # and the stored per-function IR snapshots.)
        for fn in result.translation_unit.functions():
            if fn.body is None:
                continue
            fn_key = stage_key(
                "fn-codegen",
                None,
                [mode, fn.name, dump_ast(fn.body, dump_shadow=True)],
            )
            if cache.has_function(fn_key):
                FUNCTION_HITS.inc()
            else:
                ir_fn = result.module.functions.get(fn.name)
                cache.put_function(
                    fn_key,
                    print_function(ir_fn) if ir_fn is not None else "",
                )
        # Memoize the unoptimized module for O0 -> O1 resume.  When
        # the mid-end is about to mutate it, memoize a private copy.
        cache.put_module(
            k_cg,
            _copy.deepcopy(result.module) if optimize else result.module,
        )

    if optimize:
        with crash_context(
            source, filename, invocation, crash_reproducer_dir
        ):
            default_pass_pipeline(
                remarks=result.diagnostics.remarks
            ).run(result.module)
            with time_trace_scope("Verify", filename):
                verify_module(result.module)
        final_ir = result.ir_text()
        if k_opt is not None:
            cache.put_artifact(
                k_opt,
                {
                    "stage": "opt",
                    "ir": final_ir,
                    "diagnostics": diag_text,
                    "source_id": src_id,
                },
            )
    else:
        final_ir = unopt_ir

    if final_key is not None and allow_alias:
        cache.put_alias(raw_key, final_key)
    return CachedCompile(
        ir_text=final_ir,
        diagnostics_text=diag_text,
        key=final_key if final_key is not None else raw_key,
        hit=False,
        resumed_from=None,
        origin="compiled",
        stage_keys=stage_keys,
    )


def run_source(
    source: str,
    entry: str = "main",
    args: list | None = None,
    num_threads: int = 4,
    filename: str = "<input>",
    openmp: bool = True,
    enable_irbuilder: bool = False,
    defines: dict[str, str] | None = None,
    optimize: bool = False,
    fuel: int | None = None,
    profile_detail: bool = False,
    instrument: PassInstrumentation | None = None,
    error_limit: int = 0,
    crash_reproducer_dir: str | None = None,
    invocation: str | None = None,
    timeout_s: float | None = None,
    memory_limit: int | None = None,
    max_call_depth: int = 256,
    strip_omp_transforms: bool = False,
    exec_engine: str = "interp",
) -> RunResult:
    """Compile and execute *source*; returns exit code and captured
    stdout.  ``optimize=True`` additionally runs the mid-end pass
    pipeline (incl. the LoopUnroll pass that consumes the
    ``llvm.loop.unroll.*`` metadata emitted for the paper's unroll
    directive); ``instrument`` threads a
    :class:`~repro.instrument.PassInstrumentation` through it.

    Interpreter guardrails: ``fuel`` bounds retired instructions,
    ``timeout_s`` is a wall-clock deadline (both raise
    :class:`~repro.interp.ExecutionTimeout` carrying a scheduler
    snapshot), ``memory_limit`` caps guest memory and
    ``max_call_depth`` caps guest recursion.

    ``exec_engine`` selects the execution engine (``-fexec=``):
    ``"interp"`` is the reference tree-walking interpreter,
    ``"closures"`` the closure-compiled engine with identical observable
    semantics (see :mod:`repro.exec`)."""
    from repro.exec import create_interpreter
    from repro.interp.interpreter import InterpreterError, Trap
    from repro.runtime.team import TeamError

    result = compile_source(
        source,
        filename=filename,
        openmp=openmp,
        enable_irbuilder=enable_irbuilder,
        defines=defines,
        error_limit=error_limit,
        crash_reproducer_dir=crash_reproducer_dir,
        invocation=invocation,
        strip_omp_transforms=strip_omp_transforms,
    )
    assert result.module is not None
    with crash_context(
        source, filename, invocation, crash_reproducer_dir
    ):
        if optimize:
            from repro.midend import default_pass_pipeline

            default_pass_pipeline(
                remarks=result.diagnostics.remarks,
                instrument=instrument,
            ).run(result.module, instrument)
            verify_module(result.module)
        interp = create_interpreter(
            result.module,
            engine=exec_engine,
            profile_detail=profile_detail,
            memory_limit=memory_limit,
            max_call_depth=max_call_depth,
        )
        interp.omp.num_threads = num_threads
        # Guest-visible failures (traps, guardrails, runtime errors)
        # pass through as themselves; anything else is an ICE.
        with recovery_scope(
            "interpret",
            passthrough=(InterpreterError, Trap, MemoryError_, TeamError),
        ), pretty_stack_entry(f"interpreting '{filename}'"):
            exit_code = interp.run(
                entry, args or [], fuel=fuel, timeout_s=timeout_s
            )
    return RunResult(
        exit_code=exit_code,
        stdout=interp.output(),
        instruction_count=interp.instruction_count,
        interpreter=interp,
        compile_result=result,
    )


@dataclass
class RequestOutcome:
    """Plain-data result of one service-scoped compile/run request.

    Unlike :class:`CompileResult`/:class:`RunResult` this carries no live
    objects (modules, interpreters, source managers), so it can cross a
    process boundary: the compile service executes requests in worker
    processes and ships the outcome back over a pipe.

    ``kind`` classifies the outcome for the service's failure policy:

    ==================  ================================================
    ``ok``              compiled (and ran); ``output`` is the IR text or
                        the guest stdout, ``exit_code`` the guest exit
    ``compile-error``   user diagnostics — deterministic, never retried
    ``guest-error``     guest trap / runtime failure — not retried
    ``ice``             internal compiler error — retry/degrade material
    ``timeout``         guest fuel/wall guardrail fired
    ==================  ================================================
    """

    kind: str
    output: str = ""
    exit_code: Optional[int] = None
    diagnostics: str = ""
    detail: str = ""
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


def execute_request(
    source: str,
    *,
    filename: str = "<request>",
    action: str = "compile",
    mode: str = "shadow",
    optimize: bool = False,
    num_threads: int = 4,
    entry: str = "main",
    defines: dict[str, str] | None = None,
    fuel: int | None = None,
    timeout_s: float | None = None,
    strip_omp_transforms: bool = False,
    exec_engine: str = "interp",
    cache=None,
) -> RequestOutcome:
    """Request-scoped pipeline entry point for the compile service.

    Executes one ``compile`` or ``run`` request on the representation
    selected by *mode* (``"shadow"`` or ``"irbuilder"``, the paper's two
    coexisting implementations) and maps every exception class the
    pipeline can produce onto a :class:`RequestOutcome` kind — the
    caller gets a terminal classification, never an exception.

    *cache* (a :class:`repro.cache.CompilationCache`) routes ``compile``
    actions through :func:`compile_source_cached`; output stays
    byte-identical to the uncached path.
    """
    from repro.core.crash_recovery import InternalCompilerError
    from repro.instrument.faultinject import InjectedFault
    from repro.interp.interpreter import InterpreterError, Trap
    from repro.runtime.team import TeamError

    enable_irbuilder = mode == "irbuilder"
    before = STATS.snapshot()

    def finish(kind: str, **kwargs) -> RequestOutcome:
        return RequestOutcome(
            kind, stats=STATS.delta_since(before), **kwargs
        )

    try:
        if action == "run":
            rr = run_source(
                source,
                entry=entry,
                num_threads=num_threads,
                filename=filename,
                enable_irbuilder=enable_irbuilder,
                defines=defines,
                optimize=optimize,
                fuel=fuel,
                timeout_s=timeout_s,
                strip_omp_transforms=strip_omp_transforms,
                exec_engine=exec_engine,
            )
            code = rr.exit_code if isinstance(rr.exit_code, int) else 0
            return finish("ok", output=rr.stdout, exit_code=code)
        if cache is not None:
            cc = compile_source_cached(
                source,
                cache,
                filename=filename,
                enable_irbuilder=enable_irbuilder,
                optimize=optimize,
                defines=defines,
                strip_omp_transforms=strip_omp_transforms,
            )
            return finish("ok", output=cc.ir_text, exit_code=0)
        result = compile_source(
            source,
            filename=filename,
            enable_irbuilder=enable_irbuilder,
            defines=defines,
            strip_omp_transforms=strip_omp_transforms,
        )
        if optimize and result.module is not None:
            from repro.midend import default_pass_pipeline

            default_pass_pipeline(
                remarks=result.diagnostics.remarks
            ).run(result.module)
            verify_module(result.module)
        return finish("ok", output=result.ir_text(), exit_code=0)
    except CompilationError as exc:
        kind = "ice" if exc.ice else "compile-error"
        return finish(kind, diagnostics=exc.diagnostics_text)
    except InternalCompilerError as exc:
        return finish("ice", detail=exc.render())
    except InjectedFault as exc:
        # A service-level fault site fired outside any recovery scope.
        return finish("ice", detail=str(exc))
    except Exception as exc:
        from repro.interp import ExecutionTimeout

        if isinstance(exc, ExecutionTimeout):
            return finish("timeout", detail=str(exc))
        if isinstance(
            exc, (Trap, InterpreterError, MemoryError_, TeamError)
        ):
            return finish("guest-error", detail=str(exc))
        return finish(
            "ice", detail=f"{type(exc).__name__}: {exc}"
        )


@dataclass
class BisectResult:
    """Outcome of :func:`bisect_pipeline`.

    ``culprit_index`` is the 1-based pass-execution index (LLVM OptBisect
    numbering) of the first execution that makes the predicate fail;
    ``0`` means the predicate fails before any pass runs, ``None`` means
    it never fails.  ``culprit`` names the pass and function of that
    execution.
    """

    total_executions: int
    culprit_index: Optional[int]
    culprit: Optional[PassExecution]
    probes: int

    @property
    def found(self) -> bool:
        return self.culprit is not None

    def describe(self) -> str:
        if self.culprit is not None:
            return (
                f"first failing pass execution: {self.culprit.describe()} "
                f"[{self.probes} probes over "
                f"{self.total_executions} executions]"
            )
        if self.culprit_index == 0:
            return "predicate fails before any pass runs"
        return "predicate never fails; the pipeline is not the culprit"


def bisect_pipeline(
    source: str,
    predicate,
    *,
    filename: str = "<bisect>",
    openmp: bool = True,
    enable_irbuilder: bool = False,
    defines: dict[str, str] | None = None,
    pipeline_factory=None,
    log=None,
) -> BisectResult:
    """Binary-search ``-opt-bisect-limit`` for the first pass execution
    that breaks *predicate*.

    Recompiles *source* from scratch per probe (pass pipelines mutate the
    module in place), runs the pipeline with an increasing bisect limit
    and evaluates ``predicate(compile_result) -> bool`` (True = good).
    ``pipeline_factory(remarks, instrument) -> PassManager`` overrides
    the pipeline under test (defaults to
    :func:`repro.midend.default_pass_pipeline`); ``log`` is an optional
    stream receiving each probe's ``BISECT:`` lines.
    """
    import io

    from repro.midend import default_pass_pipeline

    if pipeline_factory is None:
        pipeline_factory = default_pass_pipeline

    probes = 0

    def probe(limit: int) -> tuple[bool, PassInstrumentation]:
        nonlocal probes
        probes += 1
        if log is not None:
            print(f"BISECT PROBE: -opt-bisect-limit={limit}", file=log)
        instrument = PassInstrumentation(
            opt_bisect_limit=limit,
            stream=log if log is not None else io.StringIO(),
        )
        result = compile_source(
            source,
            filename=filename,
            openmp=openmp,
            enable_irbuilder=enable_irbuilder,
            defines=defines,
        )
        assert result.module is not None
        pipeline_factory(
            remarks=result.diagnostics.remarks, instrument=instrument
        ).run(result.module, instrument)
        return bool(predicate(result)), instrument

    good_all, full_run = probe(-1)
    total = len(full_run.executions)
    if good_all:
        return BisectResult(total, None, None, probes)
    good_none, _ = probe(0)
    if not good_none:
        return BisectResult(total, 0, None, probes)
    lo, hi = 0, total  # invariant: limit=lo good, limit=hi bad
    while hi - lo > 1:
        mid = (lo + hi) // 2
        good, _ = probe(mid)
        if good:
            lo = mid
        else:
            hi = mid
    culprit = full_run.executions[hi - 1]
    return BisectResult(total, hi, culprit, probes)
