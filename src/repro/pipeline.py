"""High-level compilation pipeline (the public library API).

Chains the layers of paper Fig. 1 — FileManager, SourceManager, Lexer,
Preprocessor, Parser, Sema, CodeGen — into one call.  This is what the
examples, tests and benchmarks use; the CLI driver
(:mod:`repro.driver.cli`) is a thin argument-parsing wrapper around it.

Typical use::

    from repro.pipeline import compile_source, run_source

    result = compile_source(C_CODE, openmp=True)
    print(result.ast_dump())          # clang-style -ast-dump
    print(result.ir_text())           # .ll-style IR

    outcome = run_source(C_CODE, num_threads=4)
    print(outcome.stdout)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.astlib.context import ASTContext
from repro.astlib.decls import FunctionDecl, TranslationUnitDecl
from repro.astlib.dump import dump_ast
from repro.codegen import CodeGenModule, CodeGenOptions
from repro.core.crash_recovery import (
    crash_context,
    pretty_stack_entry,
    recovery_scope,
)
from repro.diagnostics import (
    Diagnostic,
    DiagnosticsEngine,
    FatalErrorOccurred,
    Severity,
    TooManyErrors,
)
from repro.instrument import (
    STATS,
    ExecutionProfile,
    PassExecution,
    PassInstrumentation,
    RemarkEmitter,
    time_trace_scope,
)
from repro.interp import Interpreter, MemoryError_
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.ir.verifier import verify_module
from repro.parse import Parser
from repro.preprocessor import Preprocessor, PreprocessorOptions
from repro.sema import Sema
from repro.sourcemgr import FileManager, SourceManager


class CompilationError(Exception):
    """Raised when compilation produced errors; carries the rendered
    diagnostics.  ``ice=True`` marks that at least one of the errors is
    a *recovered* internal compiler error (category ``"ice"``), which
    the driver maps to the dedicated ICE exit code."""

    def __init__(self, diagnostics_text: str, ice: bool = False):
        super().__init__(diagnostics_text)
        self.diagnostics_text = diagnostics_text
        self.ice = ice


@dataclass
class CompileResult:
    """Everything produced by one compilation."""

    source_manager: SourceManager
    diagnostics: DiagnosticsEngine
    ast_context: ASTContext
    translation_unit: TranslationUnitDecl
    sema: Sema
    module: Optional[Module] = None
    #: statistics deltas attributable to this compilation (counter name
    #: -> increment observed while compiling), see repro.instrument.stats
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diagnostics.has_errors()

    @property
    def remarks(self) -> RemarkEmitter:
        """Optimization remarks collected during this compilation."""
        return self.diagnostics.remarks

    def function(self, name: str) -> FunctionDecl:
        for fn in self.translation_unit.functions():
            if fn.name == name:
                return fn
        raise KeyError(f"no function '{name}'")

    def ast_dump(
        self,
        function: str | None = None,
        dump_shadow: bool = False,
    ) -> str:
        """clang-style ``-ast-dump`` of one function body or the TU."""
        if function is not None:
            fn = self.function(function)
            target = fn.body if fn.body is not None else fn
            return dump_ast(target, dump_shadow=dump_shadow)
        parts = []
        for fn in self.translation_unit.functions():
            if fn.body is not None:
                parts.append(dump_ast(fn.body, dump_shadow=dump_shadow))
        return "\n".join(parts)

    def ir_text(self) -> str:
        assert self.module is not None, "compiled with -syntax-only?"
        return print_module(self.module)

    def diagnostics_text(self) -> str:
        return self.diagnostics.render_all()


@dataclass
class RunResult:
    """Result of executing a compiled program."""

    exit_code: Any
    stdout: str
    instruction_count: int
    interpreter: Interpreter
    compile_result: CompileResult

    @property
    def profile(self) -> ExecutionProfile:
        """Dynamic execution profile (per-thread instruction counts,
        barrier waits, optional per-block attribution)."""
        return self.interpreter.profile


def _front_end(
    source: str,
    filename: str,
    openmp: bool,
    enable_irbuilder: bool,
    defines: dict[str, str] | None,
    include_paths: list[str] | None,
    virtual_files: dict[str, str] | None,
    error_limit: int = 0,
    strip_omp_transforms: bool = False,
) -> CompileResult:
    sm = SourceManager()
    fm = FileManager(include_paths or [])
    if virtual_files:
        for name, text in virtual_files.items():
            fm.register_virtual_file(name, text)
    diags = DiagnosticsEngine(sm, error_limit=error_limit)
    ctx = ASTContext()
    sema = Sema(ctx, diags)
    sema.openmp.use_irbuilder = enable_irbuilder
    try:
        tokens: list = []
        # Constructing the preprocessor already lexes (builtin macros,
        # -D values), so it sits inside the recovery scope too.
        with recovery_scope("preprocess", diags), pretty_stack_entry(
            f"preprocessing '{filename}'"
        ):
            pp = Preprocessor(
                sm,
                fm,
                diags,
                PreprocessorOptions(
                    defines=dict(defines or {}),
                    openmp=openmp,
                    strip_omp_transforms=strip_omp_transforms,
                ),
            )
            pp.enter_source(source, filename)
            tokens = pp.lex_all()
        with recovery_scope("parse", diags), pretty_stack_entry(
            f"parsing '{filename}'"
        ):
            parser = Parser(tokens, sema, diags)
            parser.parse_translation_unit()
    except FatalErrorOccurred:
        pass
    except TooManyErrors:
        # Clang: "fatal error: too many errors emitted, stopping now".
        # Appended directly — report() would re-raise on FATAL.
        diags.diagnostics.append(
            Diagnostic(
                Severity.FATAL,
                "too many errors emitted, stopping now "
                f"[-ferror-limit={error_limit}]",
            )
        )
    return CompileResult(
        source_manager=sm,
        diagnostics=diags,
        ast_context=ctx,
        translation_unit=ctx.translation_unit,
        sema=sema,
    )


def compile_source(
    source: str,
    filename: str = "<input>",
    openmp: bool = True,
    enable_irbuilder: bool = False,
    syntax_only: bool = False,
    defines: dict[str, str] | None = None,
    include_paths: list[str] | None = None,
    virtual_files: dict[str, str] | None = None,
    verify: bool = True,
    strict: bool = True,
    error_limit: int = 0,
    crash_reproducer_dir: str | None = None,
    invocation: str | None = None,
    strip_omp_transforms: bool = False,
) -> CompileResult:
    """Compile C source to IR.

    Parameters mirror the clang flags the paper's workflow uses:
    ``openmp`` = ``-fopenmp``, ``enable_irbuilder`` =
    ``-fopenmp-enable-irbuilder``, ``syntax_only`` = ``-fsyntax-only``,
    ``error_limit`` = ``-ferror-limit=N`` (0 = unlimited),
    ``crash_reproducer_dir`` = ``-crash-reproducer-dir``,
    ``strip_omp_transforms`` = ``--strip-omp-transforms`` (discard
    unroll/tile/reverse/interchange/fuse directives — the
    differential-testing reference configuration).
    With ``strict=True`` a :class:`CompilationError` is raised when any
    error diagnostic was produced.  Every phase runs under a crash
    recovery scope: an unexpected exception either becomes an error
    diagnostic of category ``"ice"`` (per-directive Sema, per-function
    CodeGen) or an :class:`~repro.core.crash_recovery.
    InternalCompilerError` — never a raw Python traceback.
    """
    before = STATS.snapshot()
    with crash_context(
        source, filename, invocation, crash_reproducer_dir
    ):
        result = _front_end(
            source,
            filename,
            openmp,
            enable_irbuilder,
            defines,
            include_paths,
            virtual_files,
            error_limit=error_limit,
            strip_omp_transforms=strip_omp_transforms,
        )
        if result.diagnostics.has_errors():
            result.stats = STATS.delta_since(before)
            if strict:
                raise CompilationError(
                    result.diagnostics_text(),
                    ice=result.diagnostics.has_internal_errors(),
                )
            return result
        if syntax_only:
            result.stats = STATS.delta_since(before)
            return result
        cgm = CodeGenModule(
            result.ast_context,
            result.diagnostics,
            CodeGenOptions(
                enable_irbuilder=enable_irbuilder,
                module_name=filename,
            ),
        )
        result.module = cgm.emit_translation_unit(
            result.translation_unit
        )
        if result.diagnostics.has_errors() and strict:
            result.stats = STATS.delta_since(before)
            raise CompilationError(
                result.diagnostics_text(),
                ice=result.diagnostics.has_internal_errors(),
            )
        if (
            verify
            and result.module is not None
            and not result.diagnostics.has_errors()
        ):
            with time_trace_scope("Verify", filename):
                verify_module(result.module)
        result.stats = STATS.delta_since(before)
        return result


def run_source(
    source: str,
    entry: str = "main",
    args: list | None = None,
    num_threads: int = 4,
    filename: str = "<input>",
    openmp: bool = True,
    enable_irbuilder: bool = False,
    defines: dict[str, str] | None = None,
    optimize: bool = False,
    fuel: int | None = None,
    profile_detail: bool = False,
    instrument: PassInstrumentation | None = None,
    error_limit: int = 0,
    crash_reproducer_dir: str | None = None,
    invocation: str | None = None,
    timeout_s: float | None = None,
    memory_limit: int | None = None,
    max_call_depth: int = 256,
    strip_omp_transforms: bool = False,
) -> RunResult:
    """Compile and execute *source*; returns exit code and captured
    stdout.  ``optimize=True`` additionally runs the mid-end pass
    pipeline (incl. the LoopUnroll pass that consumes the
    ``llvm.loop.unroll.*`` metadata emitted for the paper's unroll
    directive); ``instrument`` threads a
    :class:`~repro.instrument.PassInstrumentation` through it.

    Interpreter guardrails: ``fuel`` bounds retired instructions,
    ``timeout_s`` is a wall-clock deadline (both raise
    :class:`~repro.interp.ExecutionTimeout` carrying a scheduler
    snapshot), ``memory_limit`` caps guest memory and
    ``max_call_depth`` caps guest recursion."""
    from repro.interp.interpreter import InterpreterError, Trap
    from repro.runtime.team import TeamError

    result = compile_source(
        source,
        filename=filename,
        openmp=openmp,
        enable_irbuilder=enable_irbuilder,
        defines=defines,
        error_limit=error_limit,
        crash_reproducer_dir=crash_reproducer_dir,
        invocation=invocation,
        strip_omp_transforms=strip_omp_transforms,
    )
    assert result.module is not None
    with crash_context(
        source, filename, invocation, crash_reproducer_dir
    ):
        if optimize:
            from repro.midend import default_pass_pipeline

            default_pass_pipeline(
                remarks=result.diagnostics.remarks,
                instrument=instrument,
            ).run(result.module, instrument)
            verify_module(result.module)
        interp = Interpreter(
            result.module,
            profile_detail=profile_detail,
            memory_limit=memory_limit,
            max_call_depth=max_call_depth,
        )
        interp.omp.num_threads = num_threads
        # Guest-visible failures (traps, guardrails, runtime errors)
        # pass through as themselves; anything else is an ICE.
        with recovery_scope(
            "interpret",
            passthrough=(InterpreterError, Trap, MemoryError_, TeamError),
        ), pretty_stack_entry(f"interpreting '{filename}'"):
            exit_code = interp.run(
                entry, args or [], fuel=fuel, timeout_s=timeout_s
            )
    return RunResult(
        exit_code=exit_code,
        stdout=interp.output(),
        instruction_count=interp.instruction_count,
        interpreter=interp,
        compile_result=result,
    )


@dataclass
class RequestOutcome:
    """Plain-data result of one service-scoped compile/run request.

    Unlike :class:`CompileResult`/:class:`RunResult` this carries no live
    objects (modules, interpreters, source managers), so it can cross a
    process boundary: the compile service executes requests in worker
    processes and ships the outcome back over a pipe.

    ``kind`` classifies the outcome for the service's failure policy:

    ==================  ================================================
    ``ok``              compiled (and ran); ``output`` is the IR text or
                        the guest stdout, ``exit_code`` the guest exit
    ``compile-error``   user diagnostics — deterministic, never retried
    ``guest-error``     guest trap / runtime failure — not retried
    ``ice``             internal compiler error — retry/degrade material
    ``timeout``         guest fuel/wall guardrail fired
    ==================  ================================================
    """

    kind: str
    output: str = ""
    exit_code: Optional[int] = None
    diagnostics: str = ""
    detail: str = ""
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


def execute_request(
    source: str,
    *,
    filename: str = "<request>",
    action: str = "compile",
    mode: str = "shadow",
    optimize: bool = False,
    num_threads: int = 4,
    entry: str = "main",
    defines: dict[str, str] | None = None,
    fuel: int | None = None,
    timeout_s: float | None = None,
    strip_omp_transforms: bool = False,
) -> RequestOutcome:
    """Request-scoped pipeline entry point for the compile service.

    Executes one ``compile`` or ``run`` request on the representation
    selected by *mode* (``"shadow"`` or ``"irbuilder"``, the paper's two
    coexisting implementations) and maps every exception class the
    pipeline can produce onto a :class:`RequestOutcome` kind — the
    caller gets a terminal classification, never an exception.
    """
    from repro.core.crash_recovery import InternalCompilerError
    from repro.instrument.faultinject import InjectedFault
    from repro.interp.interpreter import InterpreterError, Trap
    from repro.runtime.team import TeamError

    enable_irbuilder = mode == "irbuilder"
    before = STATS.snapshot()

    def finish(kind: str, **kwargs) -> RequestOutcome:
        return RequestOutcome(
            kind, stats=STATS.delta_since(before), **kwargs
        )

    try:
        if action == "run":
            rr = run_source(
                source,
                entry=entry,
                num_threads=num_threads,
                filename=filename,
                enable_irbuilder=enable_irbuilder,
                defines=defines,
                optimize=optimize,
                fuel=fuel,
                timeout_s=timeout_s,
                strip_omp_transforms=strip_omp_transforms,
            )
            code = rr.exit_code if isinstance(rr.exit_code, int) else 0
            return finish("ok", output=rr.stdout, exit_code=code)
        result = compile_source(
            source,
            filename=filename,
            enable_irbuilder=enable_irbuilder,
            defines=defines,
            strip_omp_transforms=strip_omp_transforms,
        )
        if optimize and result.module is not None:
            from repro.midend import default_pass_pipeline

            default_pass_pipeline(
                remarks=result.diagnostics.remarks
            ).run(result.module)
            verify_module(result.module)
        return finish("ok", output=result.ir_text(), exit_code=0)
    except CompilationError as exc:
        kind = "ice" if exc.ice else "compile-error"
        return finish(kind, diagnostics=exc.diagnostics_text)
    except InternalCompilerError as exc:
        return finish("ice", detail=exc.render())
    except InjectedFault as exc:
        # A service-level fault site fired outside any recovery scope.
        return finish("ice", detail=str(exc))
    except Exception as exc:
        from repro.interp import ExecutionTimeout

        if isinstance(exc, ExecutionTimeout):
            return finish("timeout", detail=str(exc))
        if isinstance(
            exc, (Trap, InterpreterError, MemoryError_, TeamError)
        ):
            return finish("guest-error", detail=str(exc))
        return finish(
            "ice", detail=f"{type(exc).__name__}: {exc}"
        )


@dataclass
class BisectResult:
    """Outcome of :func:`bisect_pipeline`.

    ``culprit_index`` is the 1-based pass-execution index (LLVM OptBisect
    numbering) of the first execution that makes the predicate fail;
    ``0`` means the predicate fails before any pass runs, ``None`` means
    it never fails.  ``culprit`` names the pass and function of that
    execution.
    """

    total_executions: int
    culprit_index: Optional[int]
    culprit: Optional[PassExecution]
    probes: int

    @property
    def found(self) -> bool:
        return self.culprit is not None

    def describe(self) -> str:
        if self.culprit is not None:
            return (
                f"first failing pass execution: {self.culprit.describe()} "
                f"[{self.probes} probes over "
                f"{self.total_executions} executions]"
            )
        if self.culprit_index == 0:
            return "predicate fails before any pass runs"
        return "predicate never fails; the pipeline is not the culprit"


def bisect_pipeline(
    source: str,
    predicate,
    *,
    filename: str = "<bisect>",
    openmp: bool = True,
    enable_irbuilder: bool = False,
    defines: dict[str, str] | None = None,
    pipeline_factory=None,
    log=None,
) -> BisectResult:
    """Binary-search ``-opt-bisect-limit`` for the first pass execution
    that breaks *predicate*.

    Recompiles *source* from scratch per probe (pass pipelines mutate the
    module in place), runs the pipeline with an increasing bisect limit
    and evaluates ``predicate(compile_result) -> bool`` (True = good).
    ``pipeline_factory(remarks, instrument) -> PassManager`` overrides
    the pipeline under test (defaults to
    :func:`repro.midend.default_pass_pipeline`); ``log`` is an optional
    stream receiving each probe's ``BISECT:`` lines.
    """
    import io

    from repro.midend import default_pass_pipeline

    if pipeline_factory is None:
        pipeline_factory = default_pass_pipeline

    probes = 0

    def probe(limit: int) -> tuple[bool, PassInstrumentation]:
        nonlocal probes
        probes += 1
        if log is not None:
            print(f"BISECT PROBE: -opt-bisect-limit={limit}", file=log)
        instrument = PassInstrumentation(
            opt_bisect_limit=limit,
            stream=log if log is not None else io.StringIO(),
        )
        result = compile_source(
            source,
            filename=filename,
            openmp=openmp,
            enable_irbuilder=enable_irbuilder,
            defines=defines,
        )
        assert result.module is not None
        pipeline_factory(
            remarks=result.diagnostics.remarks, instrument=instrument
        ).run(result.module, instrument)
        return bool(predicate(result)), instrument

    good_all, full_run = probe(-1)
    total = len(full_run.executions)
    if good_all:
        return BisectResult(total, None, None, probes)
    good_none, _ = probe(0)
    if not good_none:
        return BisectResult(total, 0, None, probes)
    lo, hi = 0, total  # invariant: limit=lo good, limit=hi bad
    while hi - lo > 1:
        mid = (lo + hi) // 2
        good, _ = probe(mid)
        if good:
            lo = mid
        else:
            hi = mid
    culprit = full_run.executions[hi - 1]
    return BisectResult(total, hi, culprit, probes)
