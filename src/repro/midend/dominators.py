"""Dominator tree (Cooper–Harvey–Kennedy "simple fast" algorithm)."""

from __future__ import annotations

from repro.ir.module import BasicBlock, Function
from repro.midend.cfg import postorder, predecessor_map


class DominatorTree:
    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self._idom: dict[int, BasicBlock] = {}
        self._order_index: dict[int, int] = {}
        self._compute()

    def _compute(self) -> None:
        fn = self.fn
        if not fn.blocks:
            return
        post = postorder(fn)
        for i, block in enumerate(post):
            self._order_index[id(block)] = i
        entry = fn.entry_block
        preds = predecessor_map(fn)
        idom: dict[int, BasicBlock] = {id(entry): entry}
        rpo = list(reversed(post))
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                new_idom: BasicBlock | None = None
                for pred in preds[id(block)]:
                    if id(pred) not in idom:
                        continue  # not yet processed / unreachable
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(
                            pred, new_idom, idom
                        )
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        self._idom = idom

    def _intersect(
        self,
        a: BasicBlock,
        b: BasicBlock,
        idom: dict[int, BasicBlock],
    ) -> BasicBlock:
        index = self._order_index
        while a is not b:
            while index[id(a)] < index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] < index[id(a)]:
                b = idom[id(b)]
        return a

    # ------------------------------------------------------------------
    def immediate_dominator(
        self, block: BasicBlock
    ) -> BasicBlock | None:
        if block is self.fn.entry_block:
            return None
        return self._idom.get(id(block))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does *a* dominate *b*? (reflexive)"""
        runner: BasicBlock | None = b
        while runner is not None:
            if runner is a:
                return True
            if runner is self.fn.entry_block:
                return False
            runner = self._idom.get(id(runner))
        return False

    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._idom

    def children(self) -> dict[int, list[BasicBlock]]:
        """Dominator-tree children: block id -> immediately dominated."""
        kids: dict[int, list[BasicBlock]] = {
            id(b): [] for b in self.fn.blocks
        }
        for block in self.fn.blocks:
            idom = self.immediate_dominator(block)
            if idom is not None:
                kids[id(idom)].append(block)
        return kids

    def dominance_frontiers(self) -> dict[int, list[BasicBlock]]:
        """Cytron et al.: DF[runner] gains each join block reached while
        walking each predecessor up to the join's immediate dominator."""
        from repro.midend.cfg import predecessor_map

        frontiers: dict[int, list[BasicBlock]] = {
            id(b): [] for b in self.fn.blocks
        }
        preds = predecessor_map(self.fn)
        for block in self.fn.blocks:
            if not self.is_reachable(block):
                continue
            block_preds = [
                p for p in preds[id(block)] if self.is_reachable(p)
            ]
            if len(block_preds) < 2:
                continue
            idom = self.immediate_dominator(block)
            for pred in block_preds:
                runner = pred
                while runner is not idom and runner is not None:
                    frontier = frontiers[id(runner)]
                    if all(b is not block for b in frontier):
                        frontier.append(block)
                    runner = self.immediate_dominator(runner)
        return frontiers
