"""CFG simplification: remove unreachable blocks, thread trivial jumps,
merge straight-line block pairs."""

from __future__ import annotations

from repro.ir.instructions import BranchInst, PhiInst
from repro.ir.module import BasicBlock, Function
from repro.ir.utils import remove_unreachable_blocks
from repro.midend.pass_manager import FunctionPass


from repro.instrument import get_debug_counter, get_statistic

_BLOCKS_SIMPLIFIED = get_statistic(
    "simplify-cfg",
    "blocks-simplified",
    "Simplification iterations that changed the CFG",
)
#: one occurrence per block merge / empty-block-threading site
#: (-debug-counter=simplifycfg-transform=SKIP[,COUNT] suppresses sites)
_SIMPLIFY_SITE = get_debug_counter(
    "simplifycfg-transform",
    "SimplifyCFG: each block-merge or jump-threading site",
)


class SimplifyCFGPass(FunctionPass):
    name = "simplify-cfg"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        for _ in range(64):
            local = False
            if remove_unreachable_blocks(fn):
                local = True
            if self._merge_straight_line(fn):
                local = True
            if self._skip_empty_blocks(fn):
                local = True
            if not local:
                break
            _BLOCKS_SIMPLIFIED.inc()
            changed = True
        return changed

    # ------------------------------------------------------------------
    def _merge_straight_line(self, fn: Function) -> bool:
        """Merge B into A when A ends `br B` and B has only A as pred."""
        changed = False
        for block in list(fn.blocks):
            term = block.terminator
            if not isinstance(term, BranchInst):
                continue
            succ = term.target
            if succ is block or succ is fn.entry_block:
                continue
            preds = succ.predecessors()
            if len(preds) != 1 or preds[0] is not block:
                continue
            if not _SIMPLIFY_SITE.should_execute():
                continue
            if succ.phis():
                # Single-pred phis are resolvable: replace with the value.
                from repro.ir.utils import replace_all_uses

                for phi in list(succ.phis()):
                    incoming = phi.incoming_for(block)
                    if incoming is None:
                        break
                    replace_all_uses(fn, phi, incoming)
                    phi.erase()
                if succ.phis():
                    continue
            term.erase()
            for inst in list(succ.instructions):
                succ.instructions.remove(inst)
                block.append(inst)
            # Phis in the successors of the merged block must point at
            # the merged-into block now.
            for nxt in block.successors():
                for phi in nxt.phis():
                    phi.replace_incoming_block(succ, block)
            fn.remove_block(succ)
            changed = True
        return changed

    def _skip_empty_blocks(self, fn: Function) -> bool:
        """Retarget edges through blocks containing only `br X` (when the
        final target has no phis referencing them)."""
        changed = False
        for block in list(fn.blocks):
            if block is fn.entry_block:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, BranchInst):
                continue
            target = term.target
            if target is block or target.phis():
                continue
            if not _SIMPLIFY_SITE.should_execute():
                continue
            from repro.ir.utils import redirect_branch

            for pred in block.predecessors():
                if redirect_branch(pred, block, target):
                    changed = True
        return changed
