"""CFG traversal utilities."""

from __future__ import annotations

from repro.ir.module import BasicBlock, Function


def successors(block: BasicBlock) -> list[BasicBlock]:
    return block.successors()


def predecessor_map(
    fn: Function,
) -> dict[int, list[BasicBlock]]:
    """block id -> predecessors, in one pass (cheaper than per-block
    ``BasicBlock.predecessors`` when used repeatedly)."""
    preds: dict[int, list[BasicBlock]] = {
        id(b): [] for b in fn.blocks
    }
    for block in fn.blocks:
        for succ in block.successors():
            preds[id(succ)].append(block)
    return preds


def postorder(fn: Function) -> list[BasicBlock]:
    """Iterative DFS postorder from the entry block."""
    if not fn.blocks:
        return []
    seen: set[int] = set()
    order: list[BasicBlock] = []
    stack: list[tuple[BasicBlock, int]] = [(fn.entry_block, 0)]
    seen.add(id(fn.entry_block))
    while stack:
        block, idx = stack[-1]
        succs = block.successors()
        if idx < len(succs):
            stack[-1] = (block, idx + 1)
            succ = succs[idx]
            if id(succ) not in seen:
                seen.add(id(succ))
                stack.append((succ, 0))
        else:
            order.append(block)
            stack.pop()
    return order


def reverse_postorder(fn: Function) -> list[BasicBlock]:
    return list(reversed(postorder(fn)))
