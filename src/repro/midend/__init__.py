"""Mid-end: IR analyses and transformation passes.

The piece of the paper's story that lives *after* the front-end: the
``LoopUnroll`` pass interprets the ``llvm.loop.unroll.*`` metadata that
CodeGen attached for ``LoopHintAttr`` / the OpenMPIRBuilder's
``unroll_loop_*`` — "No duplication takes place until that point"
(paper §2.1) — performing full unrolling, partial unrolling with a
**remainder loop** (paper Listing 2), or heuristic unrolling.

Supporting analyses: CFG utilities, dominator tree, natural-loop
detection.  Supporting cleanups: constant folding, dead-code elimination,
CFG simplification.
"""

from repro.midend.cfg import postorder, reverse_postorder
from repro.midend.dominators import DominatorTree
from repro.midend.loopinfo import Loop, LoopInfo
from repro.midend.pass_manager import (
    FunctionPass,
    PassManager,
    default_pass_pipeline,
)
from repro.midend.loop_unroll import LoopUnrollPass, UnrollStats
from repro.midend.mem2reg import Mem2RegPass
from repro.midend.simplify_cfg import SimplifyCFGPass
from repro.midend.constant_fold import ConstantFoldPass
from repro.midend.dce import DeadCodeEliminationPass

__all__ = [
    "ConstantFoldPass",
    "DeadCodeEliminationPass",
    "DominatorTree",
    "FunctionPass",
    "Loop",
    "LoopInfo",
    "LoopUnrollPass",
    "Mem2RegPass",
    "PassManager",
    "SimplifyCFGPass",
    "UnrollStats",
    "default_pass_pipeline",
    "postorder",
    "reverse_postorder",
]
