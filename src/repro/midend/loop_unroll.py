"""The LoopUnroll pass.

Consumes ``llvm.loop.unroll.*`` metadata attached by the front-end
(shadow-AST ``LoopHintAttr`` lowering, or ``OpenMPIRBuilder.unroll_*``)
and performs the actual duplication the front-end deferred (paper §2.1:
"No duplication takes place until that point.  LoopUnroll will also
handle the case when the iteration count is not a multiple of the unroll
factor.").

Three strategies, chosen per loop:

* **full unroll** — constant trip count: the loop is expanded into a
  straight chain of iteration copies (per-copy exit checks retained;
  later cleanup passes fold them);
* **partial with remainder** — the paper's Listing 2: a *main* loop whose
  guard is strengthened to ``iv + (F-1)*step < bound`` executes ``F``
  body copies per backedge, and the *original* loop survives as the
  remainder loop handling the tail iterations;
* **conditional-exit unroll** — the always-correct fallback (compound
  conditions, phi-based induction): iteration copies keep their own exit
  checks, still reducing backedges by the factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.instrument import RemarkEmitter, get_debug_counter, get_statistic
from repro.ir.instructions import (
    BinaryInst,
    BinOp,
    BranchInst,
    CondBranchInst,
    ICmpInst,
    ICmpPred,
    LoadInst,
    PhiInst,
    StoreInst,
)
from repro.ir.metadata import (
    MDNode,
    UNROLL_DISABLE,
    UNROLL_ENABLE,
    UNROLL_FULL,
    get_unroll_count,
    has_flag,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.utils import remove_unreachable_blocks
from repro.ir.values import ConstantInt, Value
from repro.midend.clone import clone_blocks
from repro.midend.loopinfo import Loop, LoopInfo
from repro.midend.pass_manager import FunctionPass

#: full unroll is refused above this trip count (clang/LLVM use similar
#: thresholds)
FULL_UNROLL_LIMIT = 4096
#: heuristic mode: full unroll when constant trip count is at most this
HEURISTIC_FULL_LIMIT = 16
#: heuristic mode: otherwise partially unroll by this factor
HEURISTIC_FACTOR = 4


@dataclass
class UnrollStats:
    """What the pass did (inspected by tests and benchmarks)."""

    fully_unrolled: int = 0
    partially_unrolled: int = 0
    conditionally_unrolled: int = 0
    remainder_loops_created: int = 0
    skipped: int = 0

    @property
    def total(self) -> int:
        return (
            self.fully_unrolled
            + self.partially_unrolled
            + self.conditionally_unrolled
        )


@dataclass
class _SimpleIV:
    """A memory-form induction pattern:

    header:  %iv = load P ... %cmp = icmp pred %iv, bound ; br %cmp body, exit
    latch:   store (add (load P), step), P
    """

    pointer: Value
    load: LoadInst
    compare: ICmpInst
    bound: Value
    step: int
    pred: ICmpPred
    init_const: int | None  # constant initial value, when known


_LOOPS_UNROLLED = get_statistic(
    "loop-unroll", "loops-unrolled", "Loops unrolled (any strategy)"
)
_COPIES_MADE = get_statistic(
    "loop-unroll", "copies-made", "Loop body copies created by unrolling"
)
_LOOPS_SKIPPED = get_statistic(
    "loop-unroll", "loops-skipped", "Annotated loops left untouched"
)
#: one occurrence per annotated loop considered for unrolling
#: (-debug-counter=unroll-transform=SKIP[,COUNT] suppresses sites)
_UNROLL_SITE = get_debug_counter(
    "unroll-transform",
    "LoopUnroll: each annotated-loop transformation site",
)


class LoopUnrollPass(FunctionPass):
    name = "loop-unroll"

    def __init__(self, remarks: RemarkEmitter | None = None) -> None:
        self.stats = UnrollStats()
        self.remarks = remarks if remarks is not None else RemarkEmitter()

    def _skip(self, fn: Function, why: str) -> bool:
        self.stats.skipped += 1
        _LOOPS_SKIPPED.inc()
        self.remarks.missed(
            self.name, f"loop not unrolled: {why}", function=fn.name
        )
        return False

    # ==================================================================
    def run_on_function(self, fn: Function) -> bool:
        changed = False
        # Unrolling creates new loops; iterate until no annotated loop
        # remains (each transform strips its metadata, guaranteeing
        # termination).
        for _ in range(16):
            loops = LoopInfo(fn).innermost_first()
            todo = None
            for loop in loops:
                md = self._loop_metadata(loop)
                if md is not None:
                    todo = (loop, md)
                    break
            if todo is None:
                break
            loop, md = todo
            if self._unroll_one(fn, loop, md):
                changed = True
                remove_unreachable_blocks(fn)
        return changed

    # ------------------------------------------------------------------
    def _loop_metadata(self, loop: Loop) -> MDNode | None:
        latch = loop.single_latch
        if latch is None or latch.terminator is None:
            return None
        return latch.terminator.metadata.get("llvm.loop")

    def _strip_metadata(self, loop: Loop) -> None:
        latch = loop.single_latch
        if latch is not None and latch.terminator is not None:
            latch.terminator.metadata.pop("llvm.loop", None)

    # ------------------------------------------------------------------
    def _unroll_one(
        self, fn: Function, loop: Loop, md: MDNode
    ) -> bool:
        self._strip_metadata(loop)
        if not _UNROLL_SITE.should_execute():
            return self._skip(
                fn,
                "transformation site suppressed by "
                "-debug-counter=unroll-transform",
            )
        if has_flag(md, UNROLL_DISABLE):
            return self._skip(fn, "unrolling disabled by metadata")
        count = get_unroll_count(md)
        want_full = has_flag(md, UNROLL_FULL)
        want_enable = has_flag(md, UNROLL_ENABLE)

        if not self._unrollable(loop):
            return self._skip(
                fn,
                "unsupported loop structure (multiple latches, missing "
                "preheader, or loop-carried values live outside the loop)",
            )

        trip = self._constant_trip_count(loop)

        if want_full or (
            want_enable
            and count is None
            and trip is not None
            and trip <= HEURISTIC_FULL_LIMIT
        ):
            if trip is None or trip > FULL_UNROLL_LIMIT:
                # Cannot fully unroll without a (reasonable) constant
                # trip count; fall back to a partial factor.
                if want_full:
                    self.remarks.analysis(
                        self.name,
                        "unable to fully unroll loop: trip count is "
                        "unknown or exceeds the full-unroll limit; "
                        "falling back to partial unrolling",
                        function=fn.name,
                        trip_count=trip,
                    )
                count = count or HEURISTIC_FACTOR
            else:
                self._full_unroll(fn, loop, trip)
                self._note_unrolled(fn, "full", trip, trip)
                self.stats.fully_unrolled += 1
                return True
        if count is None:
            count = HEURISTIC_FACTOR
        if count <= 1:
            return self._skip(fn, "unroll factor is 1")
        if trip is not None and trip <= count and trip <= FULL_UNROLL_LIMIT:
            self._full_unroll(fn, loop, trip)
            self._note_unrolled(fn, "full", trip, trip)
            self.stats.fully_unrolled += 1
            return True
        simple = self._match_simple_iv(loop)
        if simple is not None:
            self._partial_unroll_with_remainder(fn, loop, simple, count)
            self._note_unrolled(fn, "partial", count, count)
            self.stats.partially_unrolled += 1
            self.stats.remainder_loops_created += 1
            return True
        self._conditional_unroll(fn, loop, count)
        self._note_unrolled(fn, "conditional", count, count)
        self.stats.conditionally_unrolled += 1
        return True

    def _note_unrolled(
        self, fn: Function, strategy: str, factor: int, copies: int
    ) -> None:
        _LOOPS_UNROLLED.inc()
        _COPIES_MADE.inc(max(0, copies - 1))
        message = {
            "full": f"completely unrolled loop with {factor} iterations",
            "partial": (
                f"unrolled loop by a factor of {factor} "
                "with a remainder loop"
            ),
            "conditional": (
                f"unrolled loop by a factor of {factor} "
                "(per-copy exit checks retained)"
            ),
        }[strategy]
        self.remarks.passed(
            self.name,
            message,
            function=fn.name,
            factor=factor,
            strategy=strategy,
        )

    # ==================================================================
    # Eligibility / analysis
    # ==================================================================
    def _unrollable(self, loop: Loop) -> bool:
        if loop.single_latch is None:
            return False
        if loop.preheader() is None:
            return False
        # Values defined inside the loop must not be used outside, and
        # exit blocks must not have phis (memory-form codegen guarantees
        # both; bail out otherwise).
        loop_insts = {
            id(inst)
            for block in loop.blocks
            for inst in block.instructions
        }
        fn = loop.header.parent
        assert fn is not None
        for block in fn.blocks:
            if loop.contains(block):
                continue
            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    continue  # handled below via exit-block check
                for op in inst.operands():
                    if id(op) in loop_insts:
                        return False
        for exit_block in loop.exit_blocks():
            if exit_block.phis():
                return False
        # Non-header phis are fine when fully loop-local (e.g. the merge
        # phi of a short-circuit condition); a phi with an out-of-loop
        # incoming edge in a non-header block would mean a second loop
        # entry — bail.
        for block in loop.blocks:
            if block is loop.header:
                continue
            for phi in block.phis():
                if any(
                    not loop.contains(pred)
                    for _, pred in phi.incoming
                ):
                    return False
        return True

    def _single_exiting_cond(
        self, loop: Loop
    ) -> tuple[BasicBlock, CondBranchInst] | None:
        """The unique in-loop conditional branch leaving the loop."""
        exiting = loop.exiting_blocks()
        if len(exiting) != 1:
            return None
        block = exiting[0]
        term = block.terminator
        if not isinstance(term, CondBranchInst):
            return None
        in_loop = [
            s for s in term.successors() if loop.contains(s)
        ]
        if len(in_loop) != 1:
            return None
        return block, term

    def _match_simple_iv(self, loop: Loop) -> _SimpleIV | None:
        """Match the memory-form pattern (see :class:`_SimpleIV`).

        The exiting block must be the header; every instruction the guard
        depends on is re-evaluated in the strengthened main-loop header,
        so the bound may itself be a load (e.g. of ``N``).
        """
        exiting = self._single_exiting_cond(loop)
        if exiting is None:
            return None
        block, term = exiting
        if block is not loop.header:
            return None
        if loop.header.phis():
            return None  # phi-form: not this scheme
        if not loop.contains(term.true_block):
            return None  # inverted condition shape: not emitted by us
        cond = term.condition
        if not isinstance(cond, ICmpInst) or cond.parent is not block:
            return None
        if cond.pred not in (
            ICmpPred.SLT,
            ICmpPred.ULT,
            ICmpPred.SLE,
            ICmpPred.ULE,
        ):
            return None
        iv_load = cond.lhs
        if not isinstance(iv_load, LoadInst) or iv_load.parent is not block:
            return None
        pointer = iv_load.pointer
        # The increment: a unique in-loop `store (add (load P), C), P`.
        step: int | None = None
        stores = [
            inst
            for b in loop.blocks
            for inst in b.instructions
            if isinstance(inst, StoreInst) and inst.pointer is pointer
        ]
        if len(stores) != 1:
            return None
        store = stores[0]
        add = store.value
        if not (
            isinstance(add, BinaryInst) and add.op == BinOp.ADD
        ):
            return None
        if isinstance(add.rhs, ConstantInt) and isinstance(
            add.lhs, LoadInst
        ) and add.lhs.pointer is pointer:
            step = add.rhs.signed_value
        elif isinstance(add.lhs, ConstantInt) and isinstance(
            add.rhs, LoadInst
        ) and add.rhs.pointer is pointer:
            step = add.lhs.signed_value
        if step is None or step <= 0:
            return None
        init_const = self._constant_init(loop, pointer)
        return _SimpleIV(
            pointer=pointer,
            load=iv_load,
            compare=cond,
            bound=cond.rhs,
            step=step,
            pred=cond.pred,
            init_const=init_const,
        )

    def _constant_init(
        self, loop: Loop, pointer: Value
    ) -> int | None:
        """Constant stored to the IV slot in the preheader (last store
        wins), for trip-count computation."""
        pre = loop.preheader()
        if pre is None:
            return None
        value: int | None = None
        for inst in pre.instructions:
            if (
                isinstance(inst, StoreInst)
                and inst.pointer is pointer
                and isinstance(inst.value, ConstantInt)
            ):
                value = inst.value.signed_value
        return value

    def _constant_trip_count(self, loop: Loop) -> int | None:
        """Constant trip count for either IR shape."""
        # Phi-form (OpenMPIRBuilder skeleton): phi init 0, +1 latch,
        # icmp ult phi, C.
        exiting = self._single_exiting_cond(loop)
        if exiting is None:
            return None
        _, term = exiting
        cond = term.condition
        if not isinstance(cond, ICmpInst):
            return None
        phis = loop.header.phis()
        if len(phis) == 1 and cond.lhs is phis[0]:
            phi = phis[0]
            if cond.pred == ICmpPred.ULT and isinstance(
                cond.rhs, ConstantInt
            ):
                pre = loop.preheader()
                latch = loop.single_latch
                if pre is None or latch is None:
                    return None
                init = phi.incoming_for(pre)
                inc = phi.incoming_for(latch)
                if (
                    isinstance(init, ConstantInt)
                    and init.value == 0
                    and isinstance(inc, BinaryInst)
                    and inc.op == BinOp.ADD
                ):
                    return cond.rhs.value
            return None
        # Memory-form.
        simple = self._match_simple_iv(loop)
        if (
            simple is None
            or simple.init_const is None
            or not isinstance(simple.bound, ConstantInt)
        ):
            return None
        bound = simple.bound.signed_value
        init = simple.init_const
        inclusive = simple.pred in (ICmpPred.SLE, ICmpPred.ULE)
        distance = bound - init + (1 if inclusive else 0)
        if distance <= 0:
            return 0
        return (distance + simple.step - 1) // simple.step

    # ==================================================================
    # Transformations
    # ==================================================================
    def _chain_clone(
        self,
        fn: Function,
        loop: Loop,
        copies: int,
        break_backedge_after: bool,
    ) -> None:
        """Clone the whole loop *copies - 1* extra times, chaining each
        copy's backedge into the next copy's (cloned) header.  Per-copy
        exit checks are preserved, so this is correct for any trip count;
        with ``break_backedge_after`` the last copy exits instead of
        looping (full unroll of an exactly-known trip count)."""
        latch = loop.single_latch
        assert latch is not None
        header = loop.header
        blocks = loop.depth_first_body()
        header_phis = header.phis()
        #: value flowing around the backedge for each header phi
        latch_values = {
            id(phi): phi.incoming_for(latch) for phi in header_phis
        }
        prev_map: dict[int, Value] = {}
        prev_latch: BasicBlock = latch
        last_map: dict[int, Value] = {}
        last_block_map: dict[int, BasicBlock] = {}
        for k in range(1, copies):
            value_map: dict[int, Value] = {}
            block_map: dict[int, BasicBlock] = {}
            # Seed cloned-header phi replacements with the previous
            # iteration's backedge values.
            for phi in header_phis:
                raw = latch_values[id(phi)]
                assert raw is not None
                value_map[id(phi)] = prev_map.get(id(raw), raw)
            clone_blocks(
                fn,
                blocks,
                value_map,
                block_map,
                suffix=f".unroll{k}",
                skip_phis_in={id(header)},
            )
            cloned_header = block_map[id(header)]
            # Previous copy's backedge now enters this copy.
            prev_term = prev_latch.terminator
            assert isinstance(prev_term, BranchInst)
            prev_term.target = cloned_header
            prev_latch = block_map[id(latch)]
            prev_map = value_map
            last_map = value_map
            last_block_map = block_map
        # Final backedge: wrap to the original header (the loop now
        # advances `copies` iterations per backedge), or break out.
        final_term = prev_latch.terminator
        assert isinstance(final_term, BranchInst)
        if break_backedge_after:
            exit_candidates = loop.exit_blocks()
            assert len(exit_candidates) >= 1
            final_term.target = exit_candidates[0]
        else:
            final_term.target = header
            # Original header phis: the latch edge now comes from the
            # last copy with remapped values.
            for phi in header_phis:
                raw = latch_values[id(phi)]
                assert raw is not None
                new_value = last_map.get(id(raw), raw)
                phi.incoming = [
                    (
                        (new_value, prev_latch)
                        if b is latch
                        else (v, b)
                    )
                    for v, b in phi.incoming
                ]

    def _full_unroll(
        self, fn: Function, loop: Loop, trip: int
    ) -> None:
        self._chain_clone(
            fn, loop, max(1, trip), break_backedge_after=True
        )

    def _conditional_unroll(
        self, fn: Function, loop: Loop, factor: int
    ) -> None:
        self._chain_clone(fn, loop, factor, break_backedge_after=False)

    def _partial_unroll_with_remainder(
        self,
        fn: Function,
        loop: Loop,
        iv: _SimpleIV,
        factor: int,
    ) -> None:
        """The paper's Listing 2 shape::

            for (; i + (F-1)*step < N; )  { body; inc; } xF   // main
            for (; i < N; i += step) body;                    // remainder

        The original loop is left intact as the remainder loop; a new
        strengthened header plus F cloned body copies form the main loop.
        """
        header = loop.header
        latch = loop.single_latch
        assert latch is not None
        preheader = loop.preheader()
        assert preheader is not None
        body_blocks = [b for b in loop.depth_first_body() if b is not header]

        # --- main header: clone of the original header with the compare
        # --- strengthened by (F-1)*step.
        main_map: dict[int, Value] = {}
        main_block_map: dict[int, BasicBlock] = {}
        main_header = fn.append_block(f"{header.name}.unrolled")
        main_block_map[id(header)] = main_header
        from repro.midend.clone import clone_instruction

        for inst in header.instructions:
            main_header.append(
                clone_instruction(inst, main_map, main_block_map)
            )
        cloned_cmp = main_map[id(iv.compare)]
        assert isinstance(cloned_cmp, ICmpInst)
        offset = ConstantInt(iv.load.type, (factor - 1) * iv.step)  # type: ignore[arg-type]
        bumped = BinaryInst(
            BinOp.ADD, cloned_cmp.lhs, offset, "unroll.guard"
        )
        idx = main_header.instructions.index(cloned_cmp)
        main_header.insert(idx, bumped)
        cloned_cmp.lhs = bumped
        main_term = main_header.terminator
        assert isinstance(main_term, CondBranchInst)
        # false edge: fall into the original (remainder) loop header.
        main_term.false_block = header

        # --- F body copies, chained without intermediate checks.
        prev_tail: BasicBlock | None = None
        first_entry: BasicBlock | None = None
        original_body_entry = main_term.true_block
        for k in range(factor):
            value_map: dict[int, Value] = {}
            block_map: dict[int, BasicBlock] = {
                # A latch branch to the header ends the copy; the target
                # is fixed up below once the next copy exists.
                id(header): main_header,
            }
            clone_blocks(
                fn,
                body_blocks,
                value_map,
                block_map,
                suffix=f".main{k}",
            )
            entry = block_map[id(original_body_entry)]
            tail_latch = block_map[id(latch)]
            if k == 0:
                first_entry = entry
            else:
                assert prev_tail is not None
                tail_term = prev_tail.terminator
                assert isinstance(tail_term, BranchInst)
                tail_term.target = entry
            prev_tail = tail_latch
        assert first_entry is not None and prev_tail is not None
        # Last copy loops back to the strengthened main header (already
        # the default via block_map).
        main_term.true_block = first_entry
        # Enter the main loop from the preheader.
        from repro.ir.utils import redirect_branch

        redirect_branch(preheader, header, main_header)
