"""Natural loop detection from back edges."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import BasicBlock, Function
from repro.midend.cfg import predecessor_map
from repro.midend.dominators import DominatorTree


@dataclass
class Loop:
    """One natural loop: all blocks whose paths to the back edge's source
    stay inside the loop."""

    header: BasicBlock
    blocks: list[BasicBlock] = field(default_factory=list)
    latches: list[BasicBlock] = field(default_factory=list)

    def contains(self, block: BasicBlock) -> bool:
        return any(b is block for b in self.blocks)

    @property
    def single_latch(self) -> BasicBlock | None:
        return self.latches[0] if len(self.latches) == 1 else None

    def preheader(self) -> BasicBlock | None:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [
            p
            for p in self.header.predecessors()
            if not self.contains(p)
        ]
        return outside[0] if len(outside) == 1 else None

    def exiting_blocks(self) -> list[BasicBlock]:
        return [
            b
            for b in self.blocks
            if any(not self.contains(s) for s in b.successors())
        ]

    def exit_blocks(self) -> list[BasicBlock]:
        seen: list[BasicBlock] = []
        for b in self.blocks:
            for s in b.successors():
                if not self.contains(s) and all(
                    s is not x for x in seen
                ):
                    seen.append(s)
        return seen

    def depth_first_body(self) -> list[BasicBlock]:
        """Loop blocks in an order starting at the header."""
        order = [self.header]
        seen = {id(self.header)}
        stack = [self.header]
        while stack:
            block = stack.pop()
            for succ in block.successors():
                if self.contains(succ) and id(succ) not in seen:
                    seen.add(id(succ))
                    order.append(succ)
                    stack.append(succ)
        return order


class LoopInfo:
    """All natural loops of a function (flat list; nesting derivable via
    block containment)."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.loops: list[Loop] = []
        self._compute()

    def _compute(self) -> None:
        fn = self.fn
        if not fn.blocks:
            return
        domtree = DominatorTree(fn)
        preds = predecessor_map(fn)
        by_header: dict[int, Loop] = {}
        for block in fn.blocks:
            if not domtree.is_reachable(block):
                continue
            for succ in block.successors():
                if domtree.dominates(succ, block):
                    # back edge block -> succ (succ is the header)
                    loop = by_header.get(id(succ))
                    if loop is None:
                        loop = Loop(header=succ, blocks=[succ])
                        by_header[id(succ)] = loop
                        self.loops.append(loop)
                    loop.latches.append(block)
                    self._grow(loop, block, preds)

    @staticmethod
    def _grow(loop: Loop, latch: BasicBlock, preds) -> None:
        """Add all blocks that reach *latch* without passing the header."""
        if loop.contains(latch):
            pass
        stack = [latch]
        while stack:
            block = stack.pop()
            if loop.contains(block):
                continue
            loop.blocks.append(block)
            for pred in preds[id(block)]:
                if not loop.contains(pred):
                    stack.append(pred)

    def loop_for_header(self, header: BasicBlock) -> Loop | None:
        for loop in self.loops:
            if loop.header is header:
                return loop
        return None

    def innermost_first(self) -> list[Loop]:
        """Loops sorted by block count ascending (inner loops have fewer
        blocks than the loops containing them)."""
        return sorted(self.loops, key=lambda l: len(l.blocks))
