"""Instruction/block cloning with value and block remapping (the
machinery behind loop unrolling)."""

from __future__ import annotations

from typing import Dict

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CondBranchInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Value

ValueMap = Dict[int, Value]
BlockMap = Dict[int, BasicBlock]


def remap(value: Value, value_map: ValueMap) -> Value:
    return value_map.get(id(value), value)


def remap_block(block: BasicBlock, block_map: BlockMap) -> BasicBlock:
    return block_map.get(id(block), block)


def clone_instruction(
    inst: Instruction,
    value_map: ValueMap,
    block_map: BlockMap,
) -> Instruction:
    """Clone one instruction, remapping operands and branch targets.

    Phi nodes are cloned with remapped incoming values/blocks; callers
    that resolve phis away must handle them before calling this.
    """
    r = lambda v: remap(v, value_map)
    rb = lambda b: remap_block(b, block_map)
    if isinstance(inst, BinaryInst):
        clone = BinaryInst(inst.op, r(inst.lhs), r(inst.rhs), inst.name)
    elif isinstance(inst, ICmpInst):
        clone = ICmpInst(inst.pred, r(inst.lhs), r(inst.rhs), inst.name)
    elif isinstance(inst, FCmpInst):
        clone = FCmpInst(inst.pred, r(inst.lhs), r(inst.rhs), inst.name)
    elif isinstance(inst, CastInst):
        clone = CastInst(inst.op, r(inst.value), inst.type, inst.name)
    elif isinstance(inst, AllocaInst):
        clone = AllocaInst(
            inst.allocated_type,
            r(inst.array_size) if inst.array_size is not None else None,
            inst.name,
        )
    elif isinstance(inst, LoadInst):
        clone = LoadInst(inst.type, r(inst.pointer), inst.name)
    elif isinstance(inst, StoreInst):
        clone = StoreInst(r(inst.value), r(inst.pointer))
    elif isinstance(inst, GEPInst):
        clone = GEPInst(
            inst.element_type,
            r(inst.pointer),
            [r(i) for i in inst.indices],
            inst.name,
        )
    elif isinstance(inst, BranchInst):
        clone = BranchInst(rb(inst.target))
    elif isinstance(inst, CondBranchInst):
        clone = CondBranchInst(
            r(inst.condition), rb(inst.true_block), rb(inst.false_block)
        )
    elif isinstance(inst, SwitchInst):
        clone = SwitchInst(
            r(inst.condition),
            rb(inst.default),
            [(v, rb(b)) for v, b in inst.cases],
        )
    elif isinstance(inst, ReturnInst):
        clone = ReturnInst(
            r(inst.value) if inst.value is not None else None
        )
    elif isinstance(inst, UnreachableInst):
        clone = UnreachableInst()
    elif isinstance(inst, SelectInst):
        clone = SelectInst(
            r(inst.condition),
            r(inst.true_value),
            r(inst.false_value),
            inst.name,
        )
    elif isinstance(inst, CallInst):
        clone = CallInst(
            r(inst.callee), [r(a) for a in inst.args], inst.type, inst.name
        )
    elif isinstance(inst, PhiInst):
        clone = PhiInst(inst.type, inst.name)
        for value, block in inst.incoming:
            clone.add_incoming(r(value), rb(block))
    else:  # pragma: no cover
        raise NotImplementedError(type(inst).__name__)
    clone.metadata = dict(inst.metadata)
    value_map[id(inst)] = clone
    return clone


def clone_blocks(
    fn: Function,
    blocks: list[BasicBlock],
    value_map: ValueMap,
    block_map: BlockMap,
    suffix: str,
    skip_phis_in: set[int] | None = None,
) -> list[BasicBlock]:
    """Clone *blocks* into *fn*.

    Two-phase: allocate all blocks (so branch targets remap), then clone
    instructions.  Phis in blocks listed in *skip_phis_in* are NOT cloned
    — the caller must have seeded ``value_map`` with their replacement
    values.
    """
    skip_phis_in = skip_phis_in or set()
    clones: list[BasicBlock] = []
    for block in blocks:
        new_block = fn.append_block(f"{block.name}{suffix}")
        block_map[id(block)] = new_block
        clones.append(new_block)
    for block, new_block in zip(blocks, clones):
        for inst in block.instructions:
            if isinstance(inst, PhiInst) and id(block) in skip_phis_in:
                assert id(inst) in value_map, (
                    "phi in skipped block must be pre-seeded"
                )
                continue
            new_block.append(
                clone_instruction(inst, value_map, block_map)
            )
    return clones
