"""Trivial dead-code elimination: remove side-effect-free instructions
whose results are never used."""

from __future__ import annotations

from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiInst,
    SelectInst,
)
from repro.ir.module import Function
from repro.midend.pass_manager import FunctionPass

#: instruction classes safe to delete when unused (loads are pure in our
#: model — no volatile support)
_PURE = (
    BinaryInst,
    ICmpInst,
    FCmpInst,
    CastInst,
    GEPInst,
    SelectInst,
    PhiInst,
    LoadInst,
)


class DeadCodeEliminationPass(FunctionPass):
    name = "dce"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        while True:
            used: set[int] = set()
            for block in fn.blocks:
                for inst in block.instructions:
                    for op in inst.operands():
                        used.add(id(op))
            removed = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    if (
                        isinstance(inst, _PURE)
                        and id(inst) not in used
                        and not inst.is_terminator
                    ):
                        inst.erase()
                        removed = True
            # Unused allocas with only stores into them are also dead
            # (store-only slots): conservatively remove allocas whose
            # only uses are stores *to* them.
            store_only = self._store_only_allocas(fn)
            for alloca, stores in store_only:
                for store in stores:
                    store.erase()
                alloca.erase()
                removed = True
            if not removed:
                return changed
            changed = True

    @staticmethod
    def _store_only_allocas(fn: Function):
        from repro.ir.instructions import StoreInst

        uses: dict[int, list] = {}
        allocas: dict[int, AllocaInst] = {}
        escaped: set[int] = set()
        for block in fn.blocks:
            for inst in block.instructions:
                if isinstance(inst, AllocaInst):
                    allocas[id(inst)] = inst
                    uses.setdefault(id(inst), [])
        for block in fn.blocks:
            for inst in block.instructions:
                for op in inst.operands():
                    if id(op) in allocas:
                        if (
                            isinstance(inst, StoreInst)
                            and inst.pointer is op
                            and inst.value is not op
                        ):
                            uses[id(op)].append(inst)
                        else:
                            escaped.add(id(op))
        return [
            (allocas[key], stores)
            for key, stores in uses.items()
            if key not in escaped
        ]
