"""Pass manager: ordered function-pass pipeline over a module."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.instrument import get_statistic, time_trace_scope
from repro.ir.module import Function, Module


class FunctionPass:
    """Base class; subclasses set ``name`` and implement
    ``run_on_function`` returning whether anything changed."""

    name = "<pass>"

    def run_on_function(self, fn: Function) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass
class PassRunInfo:
    """What one pass did during one :meth:`PassManager.run`."""

    name: str
    functions_visited: int = 0
    functions_changed: int = 0
    duration_s: float = 0.0

    @property
    def changed(self) -> bool:
        return self.functions_changed > 0


@dataclass
class PipelineRunResult:
    """Structured outcome of one pipeline run.

    Truthy exactly when any pass changed anything, so existing
    ``if pm.run(module):`` callers keep working.
    """

    passes: list[PassRunInfo] = field(default_factory=list)

    def __bool__(self) -> bool:
        return any(info.functions_changed for info in self.passes)

    @property
    def changed(self) -> bool:
        return bool(self)

    def info(self, pass_name: str) -> PassRunInfo:
        for info in self.passes:
            if info.name == pass_name:
                return info
        raise KeyError(f"no pass '{pass_name}' in this run")

    def changes_by_pass(self) -> dict[str, int]:
        return {info.name: info.functions_changed for info in self.passes}


_FUNCTIONS_CHANGED = get_statistic(
    "midend", "pass-function-changes",
    "Function visits in which some pass made a change",
)


@dataclass
class PassManager:
    passes: list[FunctionPass] = field(default_factory=list)
    #: per-pass change counts from the last run (legacy view of
    #: :attr:`last_run`, kept for tests/benchmarks)
    last_run_changes: dict[str, int] = field(default_factory=dict)
    #: full structured record of the last :meth:`run`
    last_run: PipelineRunResult | None = None

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> PipelineRunResult:
        result = PipelineRunResult(
            passes=[PassRunInfo(p.name) for p in self.passes]
        )
        infos = {info.name: info for info in result.passes}
        for fn in list(module.functions.values()):
            if fn.is_declaration or not fn.blocks:
                continue
            for pass_ in self.passes:
                info = infos[pass_.name]
                info.functions_visited += 1
                start = time.perf_counter()
                with time_trace_scope(f"Pass.{pass_.name}", fn.name):
                    changed = pass_.run_on_function(fn)
                info.duration_s += time.perf_counter() - start
                if changed:
                    info.functions_changed += 1
                    _FUNCTIONS_CHANGED.inc()
        self.last_run = result
        self.last_run_changes = result.changes_by_pass()
        return result


def default_pass_pipeline(remarks=None) -> PassManager:
    """The -O pipeline the driver uses: unroll annotated loops, then
    clean up (fold the per-copy checks full unrolling leaves behind,
    delete dead code, merge straight-line blocks).

    ``remarks`` (a :class:`~repro.instrument.RemarkEmitter`) receives the
    optimization remarks of remark-aware passes (currently LoopUnroll).
    """
    from repro.midend.constant_fold import ConstantFoldPass
    from repro.midend.dce import DeadCodeEliminationPass
    from repro.midend.loop_unroll import LoopUnrollPass
    from repro.midend.mem2reg import Mem2RegPass
    from repro.midend.simplify_cfg import SimplifyCFGPass

    # LoopUnroll runs first: it pattern-matches the memory-form induction
    # variables the front-end emits; mem2reg then promotes what remains.
    return (
        PassManager()
        .add(LoopUnrollPass(remarks=remarks))
        .add(Mem2RegPass())
        .add(ConstantFoldPass())
        .add(SimplifyCFGPass())
        .add(DeadCodeEliminationPass())
    )
