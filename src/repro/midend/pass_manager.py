"""Pass manager: ordered function-pass pipeline over a module."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.crash_recovery import pretty_stack_entry, recovery_scope
from repro.instrument import PassInstrumentation, get_statistic, time_trace_scope
from repro.instrument.faultinject import FAULTS
from repro.instrument.passinstrument import PassVerificationError
from repro.ir.module import Function, Module


class FunctionPass:
    """Base class; subclasses set ``name`` and implement
    ``run_on_function`` returning whether anything changed."""

    name = "<pass>"

    def run_on_function(self, fn: Function) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass
class PassRunInfo:
    """What one pass did during one :meth:`PassManager.run`."""

    name: str
    functions_visited: int = 0
    functions_changed: int = 0
    #: executions suppressed by -opt-bisect-limit
    functions_skipped: int = 0
    duration_s: float = 0.0

    @property
    def changed(self) -> bool:
        return self.functions_changed > 0


@dataclass
class PipelineRunResult:
    """Structured outcome of one pipeline run.

    Truthy exactly when any pass changed anything, so existing
    ``if pm.run(module):`` callers keep working.  Iterates over its
    :class:`PassRunInfo` entries in pipeline order.
    """

    passes: list[PassRunInfo] = field(default_factory=list)

    def __bool__(self) -> bool:
        return any(info.functions_changed for info in self.passes)

    def __iter__(self) -> Iterator[PassRunInfo]:
        return iter(self.passes)

    def __len__(self) -> int:
        return len(self.passes)

    @property
    def changed(self) -> bool:
        return bool(self)

    def info(self, pass_name: str) -> PassRunInfo:
        for info in self.passes:
            if info.name == pass_name:
                return info
        valid = ", ".join(repr(info.name) for info in self.passes)
        raise KeyError(
            f"no pass '{pass_name}' in this run "
            f"(valid pass names: {valid or '<none>'})"
        )

    def changes_by_pass(self) -> dict[str, int]:
        return {info.name: info.functions_changed for info in self.passes}


_FUNCTIONS_CHANGED = get_statistic(
    "midend", "pass-function-changes",
    "Function visits in which some pass made a change",
)


@dataclass
class PassManager:
    passes: list[FunctionPass] = field(default_factory=list)
    #: per-pass change counts from the last run (legacy view of
    #: :attr:`last_run`, kept for tests/benchmarks)
    last_run_changes: dict[str, int] = field(default_factory=dict)
    #: full structured record of the last :meth:`run`
    last_run: PipelineRunResult | None = None
    #: default instrumentation threaded through :meth:`run` (a per-call
    #: ``instrument`` argument overrides it)
    instrument: Optional[PassInstrumentation] = None

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def pass_names(self) -> list[str]:
        """Registered pass names in pipeline order
        (``-print-pipeline-passes``)."""
        return [p.name for p in self.passes]

    def run(
        self,
        module: Module,
        instrument: Optional[PassInstrumentation] = None,
    ) -> PipelineRunResult:
        instrument = instrument if instrument is not None else self.instrument
        result = PipelineRunResult(
            passes=[PassRunInfo(p.name) for p in self.passes]
        )
        infos = {info.name: info for info in result.passes}
        for fn in list(module.functions.values()):
            if fn.is_declaration or not fn.blocks:
                continue
            for pass_ in self.passes:
                info = infos[pass_.name]
                execution = None
                detail = fn.name
                if instrument is not None:
                    execution = instrument.start(pass_.name, fn)
                    if not execution.ran:
                        info.functions_skipped += 1
                        continue
                    detail = f"{fn.name} (bisect {execution.index})"
                info.functions_visited += 1
                start = time.perf_counter()
                # Propagate-mode recovery: a crashing pass is an ICE for
                # the whole module (mid-end output is all-or-nothing),
                # but -verify-each failures keep their own identity.
                with recovery_scope(
                    "midend-pass",
                    passthrough=(PassVerificationError,),
                ), pretty_stack_entry(
                    f"running pass '{pass_.name}' on function "
                    f"'@{fn.name}'"
                ), time_trace_scope(f"Pass.{pass_.name}", detail):
                    if FAULTS.armed:
                        FAULTS.hit("midend-pass")
                    changed = pass_.run_on_function(fn)
                info.duration_s += time.perf_counter() - start
                if changed:
                    info.functions_changed += 1
                    _FUNCTIONS_CHANGED.inc()
                if execution is not None:
                    instrument.finish(execution, fn, changed)
        self.last_run = result
        self.last_run_changes = result.changes_by_pass()
        return result


def default_pass_pipeline(
    remarks=None, instrument: Optional[PassInstrumentation] = None
) -> PassManager:
    """The -O pipeline the driver uses: unroll annotated loops, then
    clean up (fold the per-copy checks full unrolling leaves behind,
    delete dead code, merge straight-line blocks).

    ``remarks`` (a :class:`~repro.instrument.RemarkEmitter`) receives the
    optimization remarks of remark-aware passes (currently LoopUnroll);
    ``instrument`` (a :class:`~repro.instrument.PassInstrumentation`) is
    threaded through every pass-on-function execution.
    """
    from repro.midend.constant_fold import ConstantFoldPass
    from repro.midend.dce import DeadCodeEliminationPass
    from repro.midend.loop_unroll import LoopUnrollPass
    from repro.midend.mem2reg import Mem2RegPass
    from repro.midend.simplify_cfg import SimplifyCFGPass

    if instrument is not None and instrument.remarks is None:
        instrument.remarks = remarks

    # LoopUnroll runs first: it pattern-matches the memory-form induction
    # variables the front-end emits; mem2reg then promotes what remains.
    return PassManager(
        passes=[
            LoopUnrollPass(remarks=remarks),
            Mem2RegPass(),
            ConstantFoldPass(),
            SimplifyCFGPass(),
            DeadCodeEliminationPass(),
        ],
        instrument=instrument,
    )
