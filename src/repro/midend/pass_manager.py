"""Pass manager: ordered function-pass pipeline over a module."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import Function, Module


class FunctionPass:
    """Base class; subclasses set ``name`` and implement
    ``run_on_function`` returning whether anything changed."""

    name = "<pass>"

    def run_on_function(self, fn: Function) -> bool:  # pragma: no cover
        raise NotImplementedError


@dataclass
class PassManager:
    passes: list[FunctionPass] = field(default_factory=list)
    #: per-pass change counts from the last run (for tests/benchmarks)
    last_run_changes: dict[str, int] = field(default_factory=dict)

    def add(self, pass_: FunctionPass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, module: Module) -> bool:
        changed_any = False
        self.last_run_changes = {p.name: 0 for p in self.passes}
        for fn in list(module.functions.values()):
            if fn.is_declaration or not fn.blocks:
                continue
            for pass_ in self.passes:
                if pass_.run_on_function(fn):
                    changed_any = True
                    self.last_run_changes[pass_.name] += 1
        return changed_any


def default_pass_pipeline() -> PassManager:
    """The -O pipeline the driver uses: unroll annotated loops, then
    clean up (fold the per-copy checks full unrolling leaves behind,
    delete dead code, merge straight-line blocks)."""
    from repro.midend.constant_fold import ConstantFoldPass
    from repro.midend.dce import DeadCodeEliminationPass
    from repro.midend.loop_unroll import LoopUnrollPass
    from repro.midend.mem2reg import Mem2RegPass
    from repro.midend.simplify_cfg import SimplifyCFGPass

    # LoopUnroll runs first: it pattern-matches the memory-form induction
    # variables the front-end emits; mem2reg then promotes what remains.
    return (
        PassManager()
        .add(LoopUnrollPass())
        .add(Mem2RegPass())
        .add(ConstantFoldPass())
        .add(SimplifyCFGPass())
        .add(DeadCodeEliminationPass())
    )
