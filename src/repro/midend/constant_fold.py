"""Constant folding over already-built IR.

The IRBuilder folds during construction (paper §1.3); this pass re-folds
instructions whose operands *became* constant — e.g. the per-copy exit
checks left behind by full unrolling once phi chains were resolved.
"""

from __future__ import annotations

from repro.ir.instructions import (
    BinaryInst,
    BinOp,
    CastInst,
    CastOp,
    CondBranchInst,
    ICmpInst,
    ICmpPred,
    SelectInst,
)
from repro.ir.module import Function
from repro.ir.types import IntType
from repro.ir.utils import replace_all_uses
from repro.ir.values import ConstantInt, Value
from repro.midend.pass_manager import FunctionPass


def _fold_instruction(inst) -> Value | None:
    if isinstance(inst, BinaryInst) and isinstance(
        inst.lhs, ConstantInt
    ) and isinstance(inst.rhs, ConstantInt):
        ty = inst.type
        assert isinstance(ty, IntType)
        a, b = inst.lhs.value, inst.rhs.value
        sa, sb = inst.lhs.signed_value, inst.rhs.signed_value
        op = inst.op
        try:
            result = {
                BinOp.ADD: lambda: a + b,
                BinOp.SUB: lambda: a - b,
                BinOp.MUL: lambda: a * b,
                BinOp.AND: lambda: a & b,
                BinOp.OR: lambda: a | b,
                BinOp.XOR: lambda: a ^ b,
                BinOp.SHL: lambda: a << (b % ty.bits),
                BinOp.LSHR: lambda: a >> (b % ty.bits),
                BinOp.ASHR: lambda: sa >> (b % ty.bits),
                BinOp.UDIV: lambda: a // b if b else None,
                BinOp.UREM: lambda: a % b if b else None,
            }[op]()
        except KeyError:
            return None
        if result is None:
            return None
        return ConstantInt(ty, result)
    if isinstance(inst, ICmpInst) and isinstance(
        inst.lhs, ConstantInt
    ) and isinstance(inst.rhs, ConstantInt):
        pred = inst.pred
        a, b = (
            (inst.lhs.signed_value, inst.rhs.signed_value)
            if pred.is_signed
            else (inst.lhs.value, inst.rhs.value)
        )
        result = {
            ICmpPred.EQ: a == b,
            ICmpPred.NE: a != b,
            ICmpPred.SLT: a < b,
            ICmpPred.SLE: a <= b,
            ICmpPred.SGT: a > b,
            ICmpPred.SGE: a >= b,
            ICmpPred.ULT: a < b,
            ICmpPred.ULE: a <= b,
            ICmpPred.UGT: a > b,
            ICmpPred.UGE: a >= b,
        }[pred]
        return ConstantInt(IntType(1), int(result))
    if isinstance(inst, CastInst) and isinstance(
        inst.value, ConstantInt
    ):
        dst = inst.type
        if isinstance(dst, IntType):
            if inst.op in (CastOp.TRUNC, CastOp.ZEXT):
                return ConstantInt(dst, inst.value.value)
            if inst.op == CastOp.SEXT:
                return ConstantInt(dst, inst.value.signed_value)
    if isinstance(inst, SelectInst) and isinstance(
        inst.condition, ConstantInt
    ):
        return (
            inst.true_value
            if inst.condition.value
            else inst.false_value
        )
    return None


class ConstantFoldPass(FunctionPass):
    name = "constant-fold"

    def run_on_function(self, fn: Function) -> bool:
        changed = False
        # Iterate to a fixed point (folding feeds folding).
        for _ in range(64):
            local_change = False
            for block in fn.blocks:
                for inst in list(block.instructions):
                    folded = _fold_instruction(inst)
                    if folded is not None:
                        replace_all_uses(fn, inst, folded)
                        inst.erase()
                        local_change = True
                # Fold constant conditional branches.
                term = block.terminator
                if isinstance(term, CondBranchInst) and isinstance(
                    term.condition, ConstantInt
                ):
                    from repro.ir.instructions import BranchInst

                    target = (
                        term.true_block
                        if term.condition.value
                        else term.false_block
                    )
                    dead_target = (
                        term.false_block
                        if term.condition.value
                        else term.true_block
                    )
                    for phi in dead_target.phis():
                        phi.incoming = [
                            (v, b)
                            for v, b in phi.incoming
                            if b is not block
                        ]
                    term.erase()
                    block.append(BranchInst(target))
                    local_change = True
            if not local_change:
                break
            changed = True
        return changed
