"""PromoteMemoryToRegister (mem2reg): alloca slots -> SSA values.

The standard SSA-construction pass (Cytron et al.): for every promotable
alloca — one whose address is only ever used as the direct pointer of
loads and stores — phi nodes are placed at the iterated dominance
frontier of its stores, and a dominator-tree walk renames loads to the
reaching definition.

In this reproduction its job is to erase the memory traffic the
front-end's alloca-based codegen produces (paper-relevant: the shadow
transformed AST's strip-mine bookkeeping becomes nearly free once
promoted, which is why real Clang can afford the representation).
It runs *after* LoopUnroll in the default pipeline so that pass can keep
pattern-matching the memory-form induction variables.
"""

from __future__ import annotations

from repro.ir.instructions import (
    AllocaInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import IRType
from repro.ir.values import UndefValue, Value
from repro.midend.dominators import DominatorTree
from repro.midend.pass_manager import FunctionPass


from repro.instrument import get_debug_counter, get_statistic

_ALLOCAS_PROMOTED = get_statistic(
    "mem2reg", "allocas-promoted", "Stack slots promoted to SSA registers"
)
#: one occurrence per promotable alloca
#: (-debug-counter=mem2reg-promote=SKIP[,COUNT] suppresses sites)
_PROMOTE_SITE = get_debug_counter(
    "mem2reg-promote",
    "Mem2Reg: each alloca-promotion site",
)


class Mem2RegPass(FunctionPass):
    name = "mem2reg"

    def run_on_function(self, fn: Function) -> bool:
        if not fn.blocks:
            return False
        from repro.ir.utils import remove_unreachable_blocks

        # Phi insertion assumes every predecessor is reachable (the
        # renaming walk only visits the dominator tree).
        remove_unreachable_blocks(fn)
        promotable = self._find_promotable(fn)
        promotable = {
            alloca: ty
            for alloca, ty in promotable.items()
            if _PROMOTE_SITE.should_execute()
        }
        if not promotable:
            return False
        _ALLOCAS_PROMOTED.inc(len(promotable))
        domtree = DominatorTree(fn)
        frontiers = domtree.dominance_frontiers()
        children = domtree.children()

        #: inserted phi -> its alloca
        phi_owner: dict[int, AllocaInst] = {}
        for alloca, ty in promotable.items():
            self._insert_phis(
                fn, alloca, ty, frontiers, phi_owner
            )
        self._rename(
            fn, domtree, children, promotable, phi_owner
        )
        # Delete the now-dead allocas, stores and loads.
        removed = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, AllocaInst) and id(inst) in {
                    id(a) for a in promotable
                }:
                    inst.erase()
                    removed = True
                elif isinstance(inst, StoreInst) and any(
                    inst.pointer is a for a in promotable
                ):
                    inst.erase()
                    removed = True
                elif isinstance(inst, LoadInst) and any(
                    inst.pointer is a for a in promotable
                ):
                    inst.erase()
                    removed = True
        return removed or bool(promotable)

    # ------------------------------------------------------------------
    def _find_promotable(
        self, fn: Function
    ) -> dict[AllocaInst, IRType]:
        """Allocas whose only uses are direct loads and stores-to."""
        allocas: dict[int, AllocaInst] = {}
        for inst in fn.instructions():
            if isinstance(inst, AllocaInst) and inst.array_size is None:
                ty = inst.allocated_type
                # Only scalar slots promote (aggregates need SROA).
                if ty.is_int or ty.is_float or ty.is_pointer:
                    allocas[id(inst)] = inst
        escaped: set[int] = set()
        loaded_type: dict[int, IRType] = {}
        for inst in fn.instructions():
            for op in inst.operands():
                if id(op) not in allocas:
                    continue
                if isinstance(inst, StoreInst) and inst.pointer is op:
                    if inst.value is op:
                        escaped.add(id(op))
                    continue
                if isinstance(inst, LoadInst) and inst.pointer is op:
                    prev = loaded_type.setdefault(id(op), inst.type)
                    if prev is not inst.type:
                        escaped.add(id(op))  # type-punned slot
                    continue
                escaped.add(id(op))
        result: dict[AllocaInst, IRType] = {}
        for key, alloca in allocas.items():
            if key in escaped:
                continue
            ty = loaded_type.get(key, alloca.allocated_type)
            if ty is not alloca.allocated_type:
                continue  # punned via differing load type
            result[alloca] = ty
        return result

    # ------------------------------------------------------------------
    def _insert_phis(
        self,
        fn: Function,
        alloca: AllocaInst,
        ty: IRType,
        frontiers: dict[int, list[BasicBlock]],
        phi_owner: dict[int, AllocaInst],
    ) -> None:
        defining_blocks: list[BasicBlock] = []
        for block in fn.blocks:
            for inst in block.instructions:
                if (
                    isinstance(inst, StoreInst)
                    and inst.pointer is alloca
                ):
                    defining_blocks.append(block)
                    break
        worklist = list(defining_blocks)
        has_phi: set[int] = set()
        while worklist:
            block = worklist.pop()
            for join in frontiers.get(id(block), []):
                if id(join) in has_phi:
                    continue
                has_phi.add(id(join))
                phi = PhiInst(
                    ty, fn.unique_name(f"{alloca.name}.phi")
                )
                join.insert(0, phi)
                phi_owner[id(phi)] = alloca
                worklist.append(join)

    # ------------------------------------------------------------------
    def _rename(
        self,
        fn: Function,
        domtree: DominatorTree,
        children: dict[int, list[BasicBlock]],
        promotable: dict[AllocaInst, IRType],
        phi_owner: dict[int, AllocaInst],
    ) -> None:
        from repro.ir.utils import replace_all_uses

        stacks: dict[int, list[Value]] = {
            id(a): [] for a in promotable
        }
        undefs: dict[int, Value] = {
            id(a): UndefValue(ty) for a, ty in promotable.items()
        }
        alloca_ids = set(stacks)
        #: load instruction -> replacement value (applied at the end,
        #: so in-block operand rewriting stays simple)
        load_replacements: dict[int, tuple[Instruction, Value]] = {}

        def current(aid: int) -> Value:
            stack = stacks[aid]
            return stack[-1] if stack else undefs[aid]

        def process_block(block: BasicBlock) -> list[int]:
            """Record defs/uses of one block; returns the push log for
            later unwinding."""
            pushed: list[int] = []
            for inst in block.instructions:
                if isinstance(inst, PhiInst) and id(inst) in phi_owner:
                    aid = id(phi_owner[id(inst)])
                    stacks[aid].append(inst)
                    pushed.append(aid)
                elif isinstance(inst, LoadInst) and id(
                    inst.pointer
                ) in alloca_ids:
                    load_replacements[id(inst)] = (
                        inst,
                        current(id(inst.pointer)),
                    )
                elif isinstance(inst, StoreInst) and id(
                    inst.pointer
                ) in alloca_ids:
                    aid = id(inst.pointer)
                    value = inst.value
                    # The stored value may itself be a load we are about
                    # to replace.
                    if id(value) in load_replacements:
                        value = load_replacements[id(value)][1]
                    stacks[aid].append(value)
                    pushed.append(aid)
            for succ in block.successors():
                for phi in succ.phis():
                    owner = phi_owner.get(id(phi))
                    if owner is None:
                        continue
                    incoming = current(id(owner))
                    if id(incoming) in load_replacements:
                        incoming = load_replacements[id(incoming)][1]
                    phi.add_incoming(incoming, block)
            return pushed

        # Iterative dominator-tree preorder (long unrolled chains would
        # overflow Python's recursion limit).
        work: list[tuple[str, object]] = [("enter", fn.entry_block)]
        while work:
            action, payload = work.pop()
            if action == "enter":
                block = payload  # type: ignore[assignment]
                pushed = process_block(block)
                work.append(("exit", pushed))
                for child in reversed(children.get(id(block), [])):
                    work.append(("enter", child))
            else:
                for aid in reversed(payload):  # type: ignore[arg-type]
                    stacks[aid].pop()

        # Apply load replacements everywhere (chasing chains of loads
        # replaced by other loads).
        def resolve(value: Value) -> Value:
            seen = set()
            while id(value) in load_replacements and id(value) not in seen:
                seen.add(id(value))
                value = load_replacements[id(value)][1]
            return value

        for load_id, (load, _) in load_replacements.items():
            replace_all_uses(fn, load, resolve(load))
        # Phi incomings added before a replacement existed are handled by
        # the resolve-chasing above via replace_all_uses (phis are
        # instructions too).
