"""Parser layer (paper Fig. 1).

The parser steers general control flow: ``parse_translation_unit`` pulls
tokens from the preprocessor and pushes recognized syntax to Sema through
``act_on_*`` actions, which build the typed AST.

OpenMP directives arrive as ``ANNOT_PRAGMA_OPENMP`` annotation tokens whose
payload is the directive's token list; :mod:`repro.parse.parse_omp` parses
the directive name and clauses and hands the associated statement plus
clauses to :class:`repro.sema.omp_sema.OpenMPSema`.
"""

from repro.parse.parser import Parser
from repro.parse.parse_omp import OpenMPDirectiveParser

__all__ = ["OpenMPDirectiveParser", "Parser"]
