"""Recursive-descent parser for MiniC (C subset + range-for + OpenMP).

Grammar coverage: declarations (builtin types, typedefs, struct/union,
enum, pointers, arrays, functions, references), all C statements, the full
C expression grammar with correct precedence, C-style casts, ``sizeof``,
and the C++11 range-based for loop the paper uses to illustrate the
loop-user-variable / loop-iteration-variable / logical-iteration-counter
distinction.

The parser is index-based over a materialized token list, which makes the
bounded lookahead needed for cast-vs-paren and range-for disambiguation
trivial.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.decls import (
    EnumConstantDecl,
    EnumDecl,
    FunctionDecl,
    ParmVarDecl,
    RecordDecl,
    StorageClass,
    TypedefDecl,
    VarDecl,
)
from repro.astlib.types import QualType, BuiltinKind, desugar
from repro.core.crash_recovery import (
    format_location,
    pretty_stack_entry,
)
from repro.diagnostics import DiagnosticsEngine, Severity
from repro.instrument import get_statistic, time_trace_scope
from repro.instrument.faultinject import FAULTS
from repro.lex.tokens import Token, TokenKind
from repro.sema.scope import ScopeKind
from repro.sema.sema import Sema
from repro.sourcemgr.location import SourceLocation

K = TokenKind

_DECLS_PARSED = get_statistic(
    "parser",
    "external-decls-parsed",
    "External declarations parsed at translation-unit scope",
)

_TYPE_SPEC_KEYWORDS = frozenset(
    {
        K.KW_VOID,
        K.KW_BOOL,
        K.KW_CHAR,
        K.KW_SHORT,
        K.KW_INT,
        K.KW_LONG,
        K.KW_FLOAT,
        K.KW_DOUBLE,
        K.KW_SIGNED,
        K.KW_UNSIGNED,
        K.KW_STRUCT,
        K.KW_UNION,
        K.KW_ENUM,
    }
)

_QUALIFIER_KEYWORDS = frozenset(
    {K.KW_CONST, K.KW_VOLATILE, K.KW_RESTRICT}
)

_STORAGE_KEYWORDS = frozenset(
    {K.KW_STATIC, K.KW_EXTERN, K.KW_TYPEDEF, K.KW_AUTO, K.KW_INLINE}
)

#: operator token -> (BinaryOperatorKind, precedence); precedence per C.
_BINOPS: dict[TokenKind, tuple[e.BinaryOperatorKind, int]] = {
    K.STAR: (e.BinaryOperatorKind.MUL, 10),
    K.SLASH: (e.BinaryOperatorKind.DIV, 10),
    K.PERCENT: (e.BinaryOperatorKind.REM, 10),
    K.PLUS: (e.BinaryOperatorKind.ADD, 9),
    K.MINUS: (e.BinaryOperatorKind.SUB, 9),
    K.LESSLESS: (e.BinaryOperatorKind.SHL, 8),
    K.GREATERGREATER: (e.BinaryOperatorKind.SHR, 8),
    K.LESS: (e.BinaryOperatorKind.LT, 7),
    K.GREATER: (e.BinaryOperatorKind.GT, 7),
    K.LESSEQUAL: (e.BinaryOperatorKind.LE, 7),
    K.GREATEREQUAL: (e.BinaryOperatorKind.GE, 7),
    K.EQUALEQUAL: (e.BinaryOperatorKind.EQ, 6),
    K.EXCLAIMEQUAL: (e.BinaryOperatorKind.NE, 6),
    K.AMP: (e.BinaryOperatorKind.AND, 5),
    K.CARET: (e.BinaryOperatorKind.XOR, 4),
    K.PIPE: (e.BinaryOperatorKind.OR, 3),
    K.AMPAMP: (e.BinaryOperatorKind.LAND, 2),
    K.PIPEPIPE: (e.BinaryOperatorKind.LOR, 1),
}

_ASSIGN_OPS: dict[TokenKind, e.BinaryOperatorKind] = {
    K.EQUAL: e.BinaryOperatorKind.ASSIGN,
    K.PLUSEQUAL: e.BinaryOperatorKind.ADD_ASSIGN,
    K.MINUSEQUAL: e.BinaryOperatorKind.SUB_ASSIGN,
    K.STAREQUAL: e.BinaryOperatorKind.MUL_ASSIGN,
    K.SLASHEQUAL: e.BinaryOperatorKind.DIV_ASSIGN,
    K.PERCENTEQUAL: e.BinaryOperatorKind.REM_ASSIGN,
    K.LESSLESSEQUAL: e.BinaryOperatorKind.SHL_ASSIGN,
    K.GREATERGREATEREQUAL: e.BinaryOperatorKind.SHR_ASSIGN,
    K.AMPEQUAL: e.BinaryOperatorKind.AND_ASSIGN,
    K.PIPEEQUAL: e.BinaryOperatorKind.OR_ASSIGN,
    K.CARETEQUAL: e.BinaryOperatorKind.XOR_ASSIGN,
}


class ParseError(Exception):
    """Unrecoverable parse error (after diagnostics were emitted)."""


class Parser:
    def __init__(
        self,
        tokens: Sequence[Token],
        sema: Sema,
        diags: DiagnosticsEngine,
    ) -> None:
        self.tokens = list(tokens)
        if not self.tokens or self.tokens[-1].kind != K.EOF:
            self.tokens.append(Token(K.EOF, ""))
        self.pos = 0
        self.sema = sema
        self.diags = diags
        from repro.parse.parse_omp import OpenMPDirectiveParser

        self.omp_parser = OpenMPDirectiveParser(self)

    # ==================================================================
    # Token plumbing
    # ==================================================================
    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != K.EOF:
            self.pos += 1
        return tok

    def at(self, kind: TokenKind) -> bool:
        return self.peek().kind == kind

    def accept(self, kind: TokenKind) -> Token | None:
        if self.at(kind):
            return self.next()
        return None

    def expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self.peek()
        if tok.kind == kind:
            return self.next()
        expected = what or kind.value
        self.diags.error(
            f"expected '{expected}' before "
            f"'{tok.spelling or tok.kind.value}'",
            tok.location,
        )
        raise ParseError(expected)

    def _skip_until(self, *kinds: TokenKind, consume: bool = True) -> None:
        """Error recovery: skip to one of *kinds* (balanced parens).

        Always makes progress: an unmatched closer at depth 0 is consumed
        (otherwise repeated recovery attempts would live-lock on it).
        """
        depth = 0
        while not self.at(K.EOF):
            tok = self.peek()
            if depth == 0 and tok.kind in kinds:
                if consume:
                    self.next()
                return
            if tok.kind in (K.L_PAREN, K.L_BRACE, K.L_SQUARE):
                depth += 1
            elif tok.kind in (K.R_PAREN, K.R_BRACE, K.R_SQUARE):
                if depth == 0:
                    self.next()  # stray closer: swallow and continue
                    return
                depth -= 1
            self.next()

    # ==================================================================
    # Type parsing
    # ==================================================================
    def at_type_start(self, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        if tok.kind in _TYPE_SPEC_KEYWORDS or tok.kind in _QUALIFIER_KEYWORDS:
            return True
        if tok.kind in _STORAGE_KEYWORDS:
            return True
        if tok.kind == K.IDENTIFIER:
            return self.sema.scope.is_type_name(tok.spelling)
        return False

    def parse_decl_specifiers(
        self,
    ) -> tuple[QualType, StorageClass, bool, bool]:
        """Returns (type, storage class, is_typedef, is_inline)."""
        ctx = self.sema.ctx
        storage = StorageClass.NONE
        is_typedef = False
        is_inline = False
        is_const = is_volatile = is_restrict = False
        signedness: str | None = None
        base: str | None = None
        long_count = 0
        loc = self.peek().location
        named_type: QualType | None = None

        while True:
            tok = self.peek()
            kind = tok.kind
            if kind in _QUALIFIER_KEYWORDS:
                self.next()
                if kind == K.KW_CONST:
                    is_const = True
                elif kind == K.KW_VOLATILE:
                    is_volatile = True
                else:
                    is_restrict = True
            elif kind in _STORAGE_KEYWORDS:
                self.next()
                if kind == K.KW_TYPEDEF:
                    is_typedef = True
                elif kind == K.KW_STATIC:
                    storage = StorageClass.STATIC
                elif kind == K.KW_EXTERN:
                    storage = StorageClass.EXTERN
                elif kind == K.KW_INLINE:
                    is_inline = True
            elif kind in (K.KW_SIGNED, K.KW_UNSIGNED):
                self.next()
                signedness = "unsigned" if kind == K.KW_UNSIGNED else "signed"
            elif kind == K.KW_LONG:
                self.next()
                long_count += 1
            elif kind in (
                K.KW_VOID,
                K.KW_BOOL,
                K.KW_CHAR,
                K.KW_SHORT,
                K.KW_INT,
                K.KW_FLOAT,
                K.KW_DOUBLE,
            ):
                self.next()
                base = kind.value
            elif kind in (K.KW_STRUCT, K.KW_UNION):
                self.next()
                named_type = self._parse_record_specifier(
                    kind == K.KW_UNION
                )
            elif kind == K.KW_ENUM:
                self.next()
                named_type = self._parse_enum_specifier()
            elif (
                kind == K.IDENTIFIER
                and base is None
                and named_type is None
                and signedness is None
                and long_count == 0
                and self.sema.scope.is_type_name(tok.spelling)
            ):
                self.next()
                decl = self.sema.scope.lookup(tok.spelling)
                assert isinstance(decl, TypedefDecl)
                named_type = ctx.get_typedef(decl)
            else:
                break

        if named_type is not None:
            qt = named_type
        else:
            qt = self._builtin_from_parts(
                base, signedness, long_count, loc
            )
        if is_const or is_volatile or is_restrict:
            qt = QualType(qt.type, is_const, is_volatile, is_restrict)
        return qt, storage, is_typedef, is_inline

    def _builtin_from_parts(
        self,
        base: str | None,
        signedness: str | None,
        long_count: int,
        loc: SourceLocation,
    ) -> QualType:
        ctx = self.sema.ctx
        unsigned = signedness == "unsigned"
        if long_count >= 2:
            return (
                ctx.ulonglong_type if unsigned else ctx.longlong_type
            )
        if long_count == 1:
            if base == "double":
                return ctx.double_type  # long double -> double in MiniC
            return ctx.ulong_type if unsigned else ctx.long_type
        table = {
            "void": BuiltinKind.VOID,
            "bool": BuiltinKind.BOOL,
            "char": (
                BuiltinKind.UCHAR
                if unsigned
                else BuiltinKind.SCHAR
                if signedness == "signed"
                else BuiltinKind.CHAR
            ),
            "short": BuiltinKind.USHORT if unsigned else BuiltinKind.SHORT,
            "int": BuiltinKind.UINT if unsigned else BuiltinKind.INT,
            "float": BuiltinKind.FLOAT,
            "double": BuiltinKind.DOUBLE,
            None: BuiltinKind.UINT if unsigned else BuiltinKind.INT,
        }
        if base is None and signedness is None:
            self.diags.error("expected a type specifier", loc)
            raise ParseError("type specifier")
        return ctx.get_builtin(table[base])

    def _parse_record_specifier(self, is_union: bool) -> QualType:
        ctx = self.sema.ctx
        name = ""
        name_tok = self.accept(K.IDENTIFIER)
        if name_tok is not None:
            name = name_tok.spelling
        record = self.sema.act_on_record_decl(
            name, is_union, name_tok.location if name_tok else None
        )
        if self.accept(K.L_BRACE):
            if record.is_complete:
                self.diags.error(
                    f"redefinition of 'struct {name}'",
                    name_tok.location if name_tok else None,
                )
            while not self.at(K.R_BRACE) and not self.at(K.EOF):
                field_base, _, _, _ = self.parse_decl_specifiers()
                while True:
                    fname, fty, _ = self.parse_declarator(field_base)
                    self.sema.act_on_field(record, fname, fty)
                    if not self.accept(K.COMMA):
                        break
                self.expect(K.SEMI, ";")
            self.expect(K.R_BRACE, "}")
            record.is_complete = True
        return ctx.get_record(record)

    def _parse_enum_specifier(self) -> QualType:
        ctx = self.sema.ctx
        name = ""
        name_tok = self.accept(K.IDENTIFIER)
        if name_tok is not None:
            name = name_tok.spelling
        existing = self.sema.scope.lookup_tag(name) if name else None
        decl = (
            existing
            if isinstance(existing, EnumDecl)
            else EnumDecl(name, name_tok.location if name_tok else None)
        )
        if decl is not existing and name:
            self.sema.scope.declare_tag(decl)
        if self.accept(K.L_BRACE):
            value = 0
            while not self.at(K.R_BRACE) and not self.at(K.EOF):
                const_tok = self.expect(K.IDENTIFIER, "enumerator")
                if self.accept(K.EQUAL):
                    value_expr = self.parse_conditional_expression()
                    folded = self.sema.evaluator.try_evaluate(value_expr)
                    if folded is None:
                        self.diags.error(
                            "enumerator value is not a constant "
                            "expression",
                            const_tok.location,
                        )
                        folded = value
                    value = folded
                const = EnumConstantDecl(
                    const_tok.spelling,
                    ctx.int_type,
                    value,
                    const_tok.location,
                )
                decl.constants.append(const)
                self.sema.scope.declare(const)
                value += 1
                if not self.accept(K.COMMA):
                    break
            self.expect(K.R_BRACE, "}")
        return ctx.get_enum(decl)

    # ------------------------------------------------------------------
    # Declarators
    # ------------------------------------------------------------------
    def parse_declarator(
        self, base: QualType, abstract: bool = False
    ) -> tuple[str, QualType, list[ParmVarDecl] | None]:
        """Parse a (possibly parenthesized) declarator.

        Handles pointers/references, parenthesized declarators — e.g.
        function pointers ``int (*op)(int, int)`` and arrays thereof —
        plus array and function suffixes, with the standard inside-out
        type construction.  Returns (name, full type, params of the
        outermost named function declarator, if any).
        """
        name, wrap, params = self._parse_declarator_rec(abstract)
        return name, wrap(base), params

    def _parse_declarator_rec(
        self, abstract: bool
    ) -> tuple[str, object, list[ParmVarDecl] | None]:
        """Returns (name, wrap(base_type) -> full type, fn params)."""
        ctx = self.sema.ctx

        # --- pointer/reference prefix (binds loosest) -----------------
        prefix_ops: list[tuple[str, tuple[bool, bool, bool]]] = []
        while True:
            if self.accept(K.STAR):
                quals = [False, False, False]
                while self.peek().kind in _QUALIFIER_KEYWORDS:
                    qual = self.next().kind
                    if qual == K.KW_CONST:
                        quals[0] = True
                    elif qual == K.KW_VOLATILE:
                        quals[1] = True
                    else:
                        quals[2] = True
                prefix_ops.append(("ptr", tuple(quals)))
            elif self.accept(K.AMP):
                prefix_ops.append(("ref", (False, False, False)))
            else:
                break

        # --- direct declarator ----------------------------------------
        name = ""
        inner_wrap = None
        inner_params: list[ParmVarDecl] | None = None
        if self.at(K.L_PAREN) and self.peek(1).kind in (
            K.STAR,
            K.AMP,
            K.L_PAREN,
        ):
            # Parenthesized declarator (function pointers etc.).
            self.next()
            name, inner_wrap, inner_params = self._parse_declarator_rec(
                abstract
            )
            self.expect(K.R_PAREN, ")")
        else:
            name_tok = self.accept(K.IDENTIFIER)
            if name_tok is not None:
                name = name_tok.spelling

        # --- suffixes (bind tightest) ----------------------------------
        suffixes: list[tuple] = []
        own_params: list[ParmVarDecl] | None = None
        while True:
            if self.at(K.L_PAREN) and (name or inner_wrap or abstract):
                self.next()
                params, param_types, variadic = self._parse_param_list()
                self.expect(K.R_PAREN, ")")
                suffixes.append(("fn", param_types, variadic))
                if own_params is None:
                    own_params = params
            elif self.accept(K.L_SQUARE):
                if self.at(K.R_SQUARE):
                    suffixes.append(("arr", None))
                else:
                    size_expr = self.parse_conditional_expression()
                    folded = self.sema.evaluator.try_evaluate(size_expr)
                    if folded is None or folded < 0:
                        self.diags.error(
                            "array size must be a non-negative "
                            "constant expression",
                            size_expr.location,
                        )
                        folded = 0
                    suffixes.append(("arr", folded))
                self.expect(K.R_SQUARE, "]")
            else:
                break

        def wrap(base: QualType) -> QualType:
            ty = base
            for kind, quals in prefix_ops:
                if kind == "ptr":
                    ty = ctx.get_pointer(ty)
                    if any(quals):
                        ty = QualType(ty.type, *quals)
                else:
                    ty = ctx.get_reference(ty)
            for suffix in reversed(suffixes):
                if suffix[0] == "fn":
                    _, param_types, variadic = suffix
                    ty = ctx.get_function(ty, param_types, variadic)
                else:
                    size = suffix[1]
                    if size is None:
                        ty = ctx.get_incomplete_array(ty)
                    else:
                        ty = ctx.get_constant_array(ty, size)
            if inner_wrap is not None:
                ty = inner_wrap(ty)
            return ty

        result_name = name
        # A parenthesized inner declarator owns the name; a direct
        # function declarator at this level owns the parameter decls
        # (used for function definitions).
        result_params = (
            own_params
            if inner_wrap is None and own_params is not None
            else inner_params
        )
        return result_name, wrap, result_params

    def _parse_param_list(
        self,
    ) -> tuple[list[ParmVarDecl], list[QualType], bool]:
        ctx = self.sema.ctx
        params: list[ParmVarDecl] = []
        types: list[QualType] = []
        variadic = False
        if self.at(K.R_PAREN):
            return params, types, variadic
        if self.at(K.KW_VOID) and self.peek(1).kind == K.R_PAREN:
            self.next()
            return params, types, variadic
        while True:
            if self.accept(K.ELLIPSIS):
                variadic = True
                break
            base, _, _, _ = self.parse_decl_specifiers()
            pname, pty, _ = self.parse_declarator(base, abstract=True)
            # Arrays in parameters decay to pointers (C semantics).
            canonical = desugar(pty)
            from repro.astlib.types import ArrayType

            if isinstance(canonical.type, ArrayType):
                pty = ctx.get_pointer(canonical.type.element)
            param = ParmVarDecl(pname or f".arg{len(params)}", pty)
            params.append(param)
            types.append(pty)
            if not self.accept(K.COMMA):
                break
        return params, types, variadic

    def parse_type_name(self) -> QualType:
        """``type-name`` as in casts and sizeof: specifiers + abstract
        declarator."""
        base, _, _, _ = self.parse_decl_specifiers()
        _, ty, _ = self.parse_declarator(base, abstract=True)
        return ty

    # ==================================================================
    # Top level
    # ==================================================================
    def parse_translation_unit(self):
        """Parse until EOF; declarations accumulate in the ASTContext's
        TranslationUnitDecl."""
        with time_trace_scope("Parse"):
            while not self.at(K.EOF):
                loc_text = format_location(
                    self.diags.source_manager, self.peek().location
                )
                try:
                    with pretty_stack_entry(
                        f"parsing external declaration at {loc_text}"
                    ):
                        if FAULTS.armed:
                            FAULTS.hit("parser")
                        self.parse_external_declaration()
                    _DECLS_PARSED.inc()
                except ParseError:
                    self._skip_until(K.SEMI, K.R_BRACE)
        return self.sema.ctx.translation_unit

    def parse_external_declaration(self) -> None:
        if self.accept(K.SEMI):
            return
        if self.at(K.ANNOT_PRAGMA_OPENMP):
            tok = self.next()
            self.diags.error(
                "OpenMP directives are not allowed at file scope in "
                "MiniC",
                tok.location,
            )
            self.accept(K.ANNOT_PRAGMA_OPENMP_END)
            return
        base, storage, is_typedef, is_inline = self.parse_decl_specifiers()
        if is_typedef:
            while True:
                name, ty, _ = self.parse_declarator(base)
                if not name:
                    self.diags.error(
                        "typedef requires a name", self.peek().location
                    )
                else:
                    self.sema.act_on_typedef(name, ty)
                if not self.accept(K.COMMA):
                    break
            self.expect(K.SEMI, ";")
            return
        # struct definition followed by ';' declares only the tag.
        if self.at(K.SEMI):
            self.next()
            return
        name, ty, params = self.parse_declarator(base)
        from repro.astlib.types import FunctionType

        if isinstance(desugar(ty).type, FunctionType):
            fn = self.sema.act_on_function_declaration(
                name, ty, params or [], storage, is_inline,
            )
            if self.at(K.L_BRACE):
                self.sema.act_on_start_of_function_def(fn)
                body = self.parse_compound_statement()
                self.sema.act_on_finish_function_body(fn, body)
            else:
                self.expect(K.SEMI, ";")
            return
        # Global variable(s).
        while True:
            init: e.Expr | None = None
            if self.accept(K.EQUAL):
                init = self.parse_initializer(ty)
            self.sema.act_on_variable_declaration(
                name, ty, init, storage
            )
            if not self.accept(K.COMMA):
                break
            name, ty, _ = self.parse_declarator(base)
        self.expect(K.SEMI, ";")

    def parse_initializer(self, target_type: QualType) -> e.Expr:
        if self.at(K.L_BRACE):
            return self._parse_init_list(target_type)
        return self.parse_assignment_expression()

    def _parse_init_list(self, target_type: QualType) -> e.Expr:
        loc = self.expect(K.L_BRACE, "{").location
        from repro.astlib.types import ConstantArrayType

        canonical = desugar(target_type)
        elem_ty = (
            canonical.type.element
            if isinstance(canonical.type, ConstantArrayType)
            else self.sema.ctx.int_type
        )
        inits: list[e.Expr] = []
        while not self.at(K.R_BRACE) and not self.at(K.EOF):
            inits.append(self.parse_initializer(elem_ty))
            if not self.accept(K.COMMA):
                break
        self.expect(K.R_BRACE, "}")
        return e.InitListExpr(inits, target_type, loc)

    # ==================================================================
    # Statements
    # ==================================================================
    def parse_statement(self) -> s.Stmt:
        tok = self.peek()
        kind = tok.kind
        if kind == K.L_BRACE:
            with self.sema.scoped(ScopeKind.BLOCK):
                return self.parse_compound_statement()
        if kind == K.SEMI:
            self.next()
            return s.NullStmt(tok.location)
        if kind == K.ANNOT_PRAGMA_OPENMP:
            return self.omp_parser.parse_directive()
        if kind == K.ANNOT_PRAGMA_LOOPHINT:
            return self._parse_loop_hint()
        if kind == K.KW_IF:
            return self._parse_if()
        if kind == K.KW_WHILE:
            return self._parse_while()
        if kind == K.KW_DO:
            return self._parse_do()
        if kind == K.KW_FOR:
            return self.parse_for_statement()
        if kind == K.KW_SWITCH:
            return self._parse_switch()
        if kind == K.KW_CASE or kind == K.KW_DEFAULT:
            return self._parse_case()
        if kind == K.KW_BREAK:
            self.next()
            self.expect(K.SEMI, ";")
            return self.sema.act_on_break_stmt(tok.location)
        if kind == K.KW_CONTINUE:
            self.next()
            self.expect(K.SEMI, ";")
            return self.sema.act_on_continue_stmt(tok.location)
        if kind == K.KW_RETURN:
            self.next()
            value = None
            if not self.at(K.SEMI):
                value = self.parse_expression()
            self.expect(K.SEMI, ";")
            return self.sema.act_on_return_stmt(value, tok.location)
        if self.at_type_start():
            return self.parse_declaration_statement()
        expr = self.parse_expression()
        self.expect(K.SEMI, ";")
        return expr

    def parse_compound_statement(self) -> s.CompoundStmt:
        lbrace = self.expect(K.L_BRACE, "{")
        statements: list[s.Stmt] = []
        while not self.at(K.R_BRACE) and not self.at(K.EOF):
            try:
                statements.append(self.parse_statement())
            except ParseError:
                self._skip_until(K.SEMI, K.R_BRACE, consume=False)
                if self.at(K.SEMI):
                    self.next()
        self.expect(K.R_BRACE, "}")
        return s.CompoundStmt(statements, lbrace.location)

    def parse_declaration_statement(self) -> s.Stmt:
        loc = self.peek().location
        base, storage, is_typedef, _ = self.parse_decl_specifiers()
        if is_typedef:
            decls = []
            while True:
                name, ty, _ = self.parse_declarator(base)
                decls.append(self.sema.act_on_typedef(name, ty, loc))
                if not self.accept(K.COMMA):
                    break
            self.expect(K.SEMI, ";")
            return s.DeclStmt(decls, loc)
        decls = []
        while True:
            name, ty, _ = self.parse_declarator(base)
            if not name:
                self.diags.error(
                    "expected identifier in declaration",
                    self.peek().location,
                )
                raise ParseError("identifier")
            init: e.Expr | None = None
            if self.accept(K.EQUAL):
                init = self.parse_initializer(ty)
            decls.append(
                self.sema.act_on_variable_declaration(
                    name, ty, init, storage, loc
                )
            )
            if not self.accept(K.COMMA):
                break
        self.expect(K.SEMI, ";")
        return s.DeclStmt(decls, loc)

    def _parse_if(self) -> s.Stmt:
        loc = self.next().location
        self.expect(K.L_PAREN, "(")
        cond = self.parse_expression()
        self.expect(K.R_PAREN, ")")
        then_stmt = self.parse_statement()
        else_stmt = None
        if self.accept(K.KW_ELSE):
            else_stmt = self.parse_statement()
        return self.sema.act_on_if_stmt(cond, then_stmt, else_stmt, loc)

    def _parse_while(self) -> s.Stmt:
        loc = self.next().location
        self.expect(K.L_PAREN, "(")
        cond = self.parse_expression()
        self.expect(K.R_PAREN, ")")
        self.sema.enter_loop()
        try:
            body = self.parse_statement()
        finally:
            self.sema.exit_loop()
        return self.sema.act_on_while_stmt(cond, body, loc)

    def _parse_do(self) -> s.Stmt:
        loc = self.next().location
        self.sema.enter_loop()
        try:
            body = self.parse_statement()
        finally:
            self.sema.exit_loop()
        self.expect(K.KW_WHILE, "while")
        self.expect(K.L_PAREN, "(")
        cond = self.parse_expression()
        self.expect(K.R_PAREN, ")")
        self.expect(K.SEMI, ";")
        return self.sema.act_on_do_stmt(body, cond, loc)

    def _looks_like_range_for(self) -> bool:
        """After 'for (' : scan ahead for ':' before ';' at paren depth 0."""
        depth = 0
        i = 0
        while True:
            tok = self.peek(i)
            if tok.kind == K.EOF:
                return False
            if tok.kind in (K.L_PAREN, K.L_SQUARE, K.L_BRACE):
                depth += 1
            elif tok.kind in (K.R_PAREN, K.R_SQUARE, K.R_BRACE):
                if depth == 0:
                    return False
                depth -= 1
            elif depth == 0 and tok.kind == K.SEMI:
                return False
            elif depth == 0 and tok.kind == K.COLON:
                return True
            i += 1

    def parse_for_statement(self) -> s.Stmt:
        loc = self.next().location
        self.expect(K.L_PAREN, "(")
        with self.sema.scoped(ScopeKind.FOR_INIT):
            if self._looks_like_range_for():
                return self._parse_range_for_body(loc)
            init: s.Stmt | None = None
            if self.accept(K.SEMI):
                init = None
            elif self.at_type_start():
                init = self.parse_declaration_statement()
            else:
                init = self.parse_expression()
                self.expect(K.SEMI, ";")
            cond = None
            if not self.at(K.SEMI):
                cond = self.parse_expression()
            self.expect(K.SEMI, ";")
            inc = None
            if not self.at(K.R_PAREN):
                inc = self.parse_expression()
            self.expect(K.R_PAREN, ")")
            self.sema.enter_loop()
            try:
                body = self.parse_statement()
            finally:
                self.sema.exit_loop()
            return self.sema.act_on_for_stmt(init, cond, inc, body, loc)

    def _parse_range_for_body(self, loc: SourceLocation) -> s.Stmt:
        base, _, _, _ = self.parse_decl_specifiers()
        name, var_ty, _ = self.parse_declarator(base)
        self.expect(K.COLON, ":")
        range_expr = self.parse_expression()
        self.expect(K.R_PAREN, ")")
        header = self.sema.act_on_cxx_for_range_header(
            var_ty, name, range_expr, loc
        )
        self.sema.enter_loop()
        try:
            body = self.parse_statement()
        finally:
            self.sema.exit_loop()
        return self.sema.act_on_cxx_for_range_stmt(header, body, loc)

    def _parse_switch(self) -> s.Stmt:
        loc = self.next().location
        self.expect(K.L_PAREN, "(")
        cond = self.parse_expression()
        self.expect(K.R_PAREN, ")")
        self.sema.enter_switch()
        try:
            body = self.parse_statement()
        finally:
            self.sema.exit_switch()
        cond = self.sema.default_lvalue_conversion(cond)
        return s.SwitchStmt(cond, body, loc)

    def _parse_case(self) -> s.Stmt:
        tok = self.next()
        if tok.kind == K.KW_CASE:
            value = self.parse_conditional_expression()
            self.expect(K.COLON, ":")
            sub = self.parse_statement()
            return s.CaseStmt(value, sub, tok.location)
        self.expect(K.COLON, ":")
        sub = self.parse_statement()
        return s.DefaultStmt(sub, tok.location)

    def _parse_loop_hint(self) -> s.Stmt:
        """``#pragma clang loop unroll_count(N)`` etc. (annotation)."""
        tok = self.next()
        hint_tokens: list[Token] = list(tok.annotation_value or [])
        attrs: list[s.LoopHintAttr] = []
        i = 0
        while i < len(hint_tokens):
            name_tok = hint_tokens[i]
            option = name_tok.spelling
            value_expr: e.Expr | None = None
            i += 1
            if (
                i < len(hint_tokens)
                and hint_tokens[i].kind == K.L_PAREN
            ):
                depth = 1
                arg_toks: list[Token] = []
                i += 1
                while i < len(hint_tokens) and depth > 0:
                    if hint_tokens[i].kind == K.L_PAREN:
                        depth += 1
                    elif hint_tokens[i].kind == K.R_PAREN:
                        depth -= 1
                        if depth == 0:
                            break
                    arg_toks.append(hint_tokens[i])
                    i += 1
                i += 1
                if option == "unroll_count":
                    sub = Parser(arg_toks, self.sema, self.diags)
                    value_expr = sub.parse_expression()
            mapped = {
                "unroll_count": s.LoopHintAttr.UNROLL_COUNT,
                "unroll": s.LoopHintAttr.UNROLL,
            }.get(option)
            if mapped is None:
                self.diags.warning(
                    f"unknown loop hint '{option}' ignored",
                    name_tok.location,
                )
                continue
            attrs.append(
                s.LoopHintAttr(mapped, value_expr, is_implicit=False)
            )
        sub_stmt = self.parse_statement()
        return s.AttributedStmt(attrs, sub_stmt, tok.location)

    # ==================================================================
    # Expressions
    # ==================================================================
    def parse_expression(self) -> e.Expr:
        expr = self.parse_assignment_expression()
        while self.at(K.COMMA):
            loc = self.next().location
            rhs = self.parse_assignment_expression()
            expr = self.sema.act_on_binary_op(
                e.BinaryOperatorKind.COMMA, expr, rhs, loc
            )
        return expr

    def parse_assignment_expression(self) -> e.Expr:
        lhs = self.parse_conditional_expression()
        tok = self.peek()
        op = _ASSIGN_OPS.get(tok.kind)
        if op is not None:
            self.next()
            rhs = self.parse_assignment_expression()
            return self.sema.act_on_binary_op(op, lhs, rhs, tok.location)
        return lhs

    def parse_conditional_expression(self) -> e.Expr:
        cond = self._parse_binary_expression(1)
        if self.at(K.QUESTION):
            loc = self.next().location
            true_expr = self.parse_expression()
            self.expect(K.COLON, ":")
            false_expr = self.parse_conditional_expression()
            return self.sema.act_on_conditional_op(
                cond, true_expr, false_expr, loc
            )
        return cond

    def _parse_binary_expression(self, min_prec: int) -> e.Expr:
        lhs = self.parse_cast_expression()
        while True:
            tok = self.peek()
            entry = _BINOPS.get(tok.kind)
            if entry is None or entry[1] < min_prec:
                return lhs
            op, prec = entry
            self.next()
            rhs = self._parse_binary_expression(prec + 1)
            lhs = self.sema.act_on_binary_op(op, lhs, rhs, tok.location)

    def _at_cast_expression(self) -> bool:
        if not self.at(K.L_PAREN):
            return False
        return self.at_type_start(1) and self.peek(1).kind not in (
            K.KW_STATIC,
            K.KW_EXTERN,
        )

    def parse_cast_expression(self) -> e.Expr:
        if self._at_cast_expression():
            lparen = self.next()
            ty = self.parse_type_name()
            self.expect(K.R_PAREN, ")")
            operand = self.parse_cast_expression()
            return self.sema.act_on_cstyle_cast(
                ty, operand, lparen.location
            )
        return self.parse_unary_expression()

    def parse_unary_expression(self) -> e.Expr:
        tok = self.peek()
        kind = tok.kind
        U = e.UnaryOperatorKind
        prefix_map = {
            K.PLUSPLUS: U.PRE_INC,
            K.MINUSMINUS: U.PRE_DEC,
            K.AMP: U.ADDR_OF,
            K.STAR: U.DEREF,
            K.PLUS: U.PLUS,
            K.MINUS: U.MINUS,
            K.TILDE: U.NOT,
            K.EXCLAIM: U.LNOT,
        }
        if kind in prefix_map:
            self.next()
            operand = self.parse_cast_expression()
            return self.sema.act_on_unary_op(
                prefix_map[kind], operand, tok.location
            )
        if kind == K.KW_SIZEOF:
            self.next()
            if self.at(K.L_PAREN) and self.at_type_start(1):
                self.next()
                ty = self.parse_type_name()
                self.expect(K.R_PAREN, ")")
                return self.sema.act_on_sizeof(ty, None, tok.location)
            operand = self.parse_unary_expression()
            return self.sema.act_on_sizeof(None, operand, tok.location)
        return self.parse_postfix_expression()

    def parse_postfix_expression(self) -> e.Expr:
        expr = self.parse_primary_expression()
        while True:
            tok = self.peek()
            if tok.kind == K.L_SQUARE:
                self.next()
                index = self.parse_expression()
                self.expect(K.R_SQUARE, "]")
                expr = self.sema.act_on_array_subscript(
                    expr, index, tok.location
                )
            elif tok.kind == K.L_PAREN:
                self.next()
                args: list[e.Expr] = []
                while not self.at(K.R_PAREN) and not self.at(K.EOF):
                    args.append(self.parse_assignment_expression())
                    if not self.accept(K.COMMA):
                        break
                self.expect(K.R_PAREN, ")")
                expr = self.sema.act_on_call(expr, args, tok.location)
            elif tok.kind in (K.PERIOD, K.ARROW):
                self.next()
                member = self.expect(K.IDENTIFIER, "member name")
                expr = self.sema.act_on_member_access(
                    expr,
                    member.spelling,
                    tok.kind == K.ARROW,
                    tok.location,
                )
            elif tok.kind == K.PLUSPLUS:
                self.next()
                expr = self.sema.act_on_unary_op(
                    e.UnaryOperatorKind.POST_INC, expr, tok.location
                )
            elif tok.kind == K.MINUSMINUS:
                self.next()
                expr = self.sema.act_on_unary_op(
                    e.UnaryOperatorKind.POST_DEC, expr, tok.location
                )
            else:
                return expr

    def parse_primary_expression(self) -> e.Expr:
        tok = self.peek()
        kind = tok.kind
        if kind == K.NUMERIC_CONSTANT:
            self.next()
            return self.sema.act_on_numeric_literal(
                tok.spelling, tok.location
            )
        if kind == K.CHAR_CONSTANT:
            self.next()
            return self.sema.act_on_char_literal(
                tok.spelling, tok.location
            )
        if kind == K.STRING_LITERAL:
            self.next()
            return self.sema.act_on_string_literal(
                tok.spelling, tok.location
            )
        if kind in (K.KW_TRUE, K.KW_FALSE):
            self.next()
            return self.sema.act_on_bool_literal(
                kind == K.KW_TRUE, tok.location
            )
        if kind == K.IDENTIFIER:
            self.next()
            expr = self.sema.act_on_id_expression(
                tok.spelling, tok.location
            )
            if expr is None:
                raise ParseError("identifier")
            return expr
        if kind == K.L_PAREN:
            self.next()
            inner = self.parse_expression()
            self.expect(K.R_PAREN, ")")
            return self.sema.act_on_paren_expr(inner, tok.location)
        self.diags.error(
            f"expected expression before "
            f"'{tok.spelling or tok.kind.value}'",
            tok.location,
        )
        raise ParseError("expression")
