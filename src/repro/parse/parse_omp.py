"""Parsing of OpenMP directives from annotation tokens.

The preprocessor delivers ``#pragma omp ...`` as one
``ANNOT_PRAGMA_OPENMP`` token whose payload is the directive's token list,
followed by ``ANNOT_PRAGMA_OPENMP_END`` — clang's exact scheme.  This
module parses the directive name (greedy multi-word match, so
``parallel for simd`` wins over ``parallel``) and its clauses, then parses
the associated statement from the main token stream and hands everything
to :class:`repro.sema.omp_sema.OpenMPSema`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.astlib import clauses as cl
from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.core.crash_recovery import (
    format_location,
    pretty_stack_entry,
    recovery_scope,
)
from repro.diagnostics import Severity
from repro.instrument.faultinject import FAULTS
from repro.lex.tokens import Token, TokenKind
from repro.sema.scope import ScopeKind
from repro.sourcemgr.location import SourceLocation

if TYPE_CHECKING:
    from repro.parse.parser import Parser

K = TokenKind

#: Longest-first so combined directives match greedily.
_DIRECTIVE_NAMES = [
    "parallel for simd",
    "parallel for",
    "for simd",
    "parallel",
    "for",
    "simd",
    "taskloop",
    "unroll",
    "tile",
    "reverse",
    "interchange",
    "fuse",
    "barrier",
    "master",
    "single",
    "critical",
]

_STANDALONE = {"barrier"}

_SCHEDULE_KINDS = {k.value: k for k in cl.ScheduleKind}
_DEFAULT_KINDS = {k.value: k for k in cl.DefaultKind}
_REDUCTION_OPS = {
    "+": cl.ReductionOperator.ADD,
    "-": cl.ReductionOperator.SUB,
    "*": cl.ReductionOperator.MUL,
    "&": cl.ReductionOperator.AND,
    "|": cl.ReductionOperator.OR,
    "^": cl.ReductionOperator.XOR,
    "&&": cl.ReductionOperator.LAND,
    "||": cl.ReductionOperator.LOR,
    "min": cl.ReductionOperator.MIN,
    "max": cl.ReductionOperator.MAX,
}


class _DirectiveTokens:
    """Cursor over a directive's token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, ahead: int = 0) -> Token:
        idx = self.pos + ahead
        if idx < len(self.tokens):
            return self.tokens[idx]
        return Token(K.EOD, "")

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != K.EOD:
            self.pos += 1
        return tok

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def word(self, tok: Token) -> str:
        """Identifier-like spelling; keywords like ``for``/``if`` count."""
        if tok.kind == K.IDENTIFIER or tok.kind.is_keyword():
            return tok.spelling
        return ""

    def collect_paren_group(self) -> list[Token] | None:
        """Consume ``( ... )`` and return the inner tokens."""
        if self.peek().kind != K.L_PAREN:
            return None
        self.next()
        depth = 1
        inner: list[Token] = []
        while not self.at_end():
            tok = self.next()
            if tok.kind == K.L_PAREN:
                depth += 1
            elif tok.kind == K.R_PAREN:
                depth -= 1
                if depth == 0:
                    return inner
            inner.append(tok)
        return inner  # unterminated; caller diagnoses


class OpenMPDirectiveParser:
    def __init__(self, parser: "Parser") -> None:
        self.parser = parser

    @property
    def sema(self):
        return self.parser.sema

    @property
    def diags(self):
        return self.parser.diags

    # ------------------------------------------------------------------
    def parse_directive(self) -> s.Stmt:
        annot = self.parser.expect(K.ANNOT_PRAGMA_OPENMP)
        tokens: list[Token] = list(annot.annotation_value or [])
        self.parser.expect(K.ANNOT_PRAGMA_OPENMP_END)
        cursor = _DirectiveTokens(tokens)

        name = self._parse_directive_name(cursor, annot.location)
        if name is None:
            return s.NullStmt(annot.location)

        # `critical` takes an optional (name) before clauses.
        critical_name = ""
        if name == "critical" and cursor.peek().kind == K.L_PAREN:
            group = cursor.collect_paren_group() or []
            if group:
                critical_name = group[0].spelling

        clauses = self._parse_clauses(cursor, name, annot.location)

        if name in _STANDALONE:
            result = self._act_on_directive(
                name, clauses, None, annot.location
            )
            return result or s.NullStmt(annot.location)

        with self.sema.scoped(ScopeKind.OPENMP_DIRECTIVE):
            associated = self.parser.parse_statement()
        result = self._act_on_directive(
            name, clauses, associated, annot.location
        )
        if name == "critical" and isinstance(
            result, __import__("repro.astlib.omp", fromlist=["omp"]).OMPCriticalDirective
        ):
            result.name = critical_name
        return result if result is not None else associated

    # ------------------------------------------------------------------
    def _act_on_directive(
        self,
        name: str,
        clauses: list,
        associated: s.Stmt | None,
        loc: SourceLocation,
    ) -> s.Stmt | None:
        """Per-directive semantic analysis under crash recovery: a bug
        in one directive's Sema becomes one ICE diagnostic and the rest
        of the translation unit still compiles (Clang's per-invocation
        CrashRecoveryContext, at directive granularity)."""
        loc_text = format_location(self.diags.source_manager, loc)
        with recovery_scope(
            "sema-directive", self.diags, recover=True, location=loc
        ), pretty_stack_entry(
            f"analysing '#pragma omp {name}' at {loc_text}"
        ):
            if FAULTS.armed:
                FAULTS.hit("sema-directive")
            return self.sema.openmp.act_on_directive(
                name, clauses, associated, loc
            )
        return None  # reached only when the scope absorbed a crash

    # ------------------------------------------------------------------
    def _parse_directive_name(
        self, cursor: _DirectiveTokens, loc: SourceLocation
    ) -> str | None:
        words: list[str] = []
        i = 0
        while True:
            w = cursor.word(cursor.peek(i))
            if not w:
                break
            words.append(w)
            i += 1
        if not words:
            self.diags.report(
                Severity.ERROR,
                "expected an OpenMP directive name after '#pragma omp'",
                loc,
            )
            return None
        for candidate in _DIRECTIVE_NAMES:
            parts = candidate.split(" ")
            if words[: len(parts)] == parts:
                for _ in parts:
                    cursor.next()
                return candidate
        self.diags.report(
            Severity.ERROR,
            f"unknown OpenMP directive '#pragma omp {words[0]}'",
            loc,
        )
        return None

    # ------------------------------------------------------------------
    def _parse_clauses(
        self,
        cursor: _DirectiveTokens,
        directive: str,
        loc: SourceLocation,
    ) -> list[cl.OMPClause]:
        clauses: list[cl.OMPClause] = []
        while not cursor.at_end():
            tok = cursor.peek()
            if tok.kind == K.COMMA:
                cursor.next()
                continue
            name = cursor.word(tok)
            if not name:
                self.diags.report(
                    Severity.ERROR,
                    f"expected a clause name, got "
                    f"'{tok.spelling or tok.kind.value}'",
                    tok.location or loc,
                )
                cursor.next()
                continue
            cursor.next()
            clause = self._parse_one_clause(
                name, cursor, tok.location or loc
            )
            if clause is not None:
                clauses.append(clause)
        return clauses

    def _parse_expr_tokens(
        self, tokens: list[Token], loc: SourceLocation
    ) -> e.Expr | None:
        from repro.parse.parser import Parser, ParseError

        if not tokens:
            return None
        sub = Parser(tokens, self.sema, self.diags)
        try:
            return sub.parse_assignment_expression()
        except ParseError:
            return None

    def _split_on_commas(
        self, tokens: list[Token]
    ) -> list[list[Token]]:
        groups: list[list[Token]] = [[]]
        depth = 0
        for tok in tokens:
            if tok.kind == K.L_PAREN:
                depth += 1
            elif tok.kind == K.R_PAREN:
                depth -= 1
            if tok.kind == K.COMMA and depth == 0:
                groups.append([])
            else:
                groups[-1].append(tok)
        return [g for g in groups if g]

    def _parse_var_list(
        self, tokens: list[Token], loc: SourceLocation
    ) -> list[e.DeclRefExpr]:
        refs: list[e.DeclRefExpr] = []
        for group in self._split_on_commas(tokens):
            expr = self._parse_expr_tokens(group, loc)
            if expr is None:
                continue
            stripped = expr.ignore_implicit_casts()
            if isinstance(stripped, e.DeclRefExpr):
                refs.append(stripped)
            else:
                self.diags.report(
                    Severity.ERROR,
                    "expected a variable name in clause variable list",
                    group[0].location,
                )
        return refs

    def _parse_one_clause(
        self,
        name: str,
        cursor: _DirectiveTokens,
        loc: SourceLocation,
    ) -> cl.OMPClause | None:
        group = cursor.collect_paren_group()

        def require_group() -> list[Token] | None:
            if group is None:
                self.diags.report(
                    Severity.ERROR,
                    f"expected '(' after '{name}' clause",
                    loc,
                )
                return None
            return group

        if name == "full":
            return cl.OMPFullClause(loc)
        if name == "partial":
            factor = None
            if group:
                factor = self._parse_expr_tokens(group, loc)
                if factor is not None:
                    factor = self._wrap_constant(factor)
            return cl.OMPPartialClause(factor, loc)
        if name == "permutation":
            tokens = require_group()
            if tokens is None:
                return None
            indices: list[e.Expr] = []
            for sub_tokens in self._split_on_commas(tokens):
                expr = self._parse_expr_tokens(sub_tokens, loc)
                if expr is not None:
                    indices.append(self._wrap_constant(expr))
            if not indices:
                self.diags.report(
                    Severity.ERROR,
                    "'permutation' clause requires at least one index",
                    loc,
                )
                return None
            return cl.OMPPermutationClause(indices, loc)
        if name == "sizes":
            tokens = require_group()
            if tokens is None:
                return None
            sizes: list[e.Expr] = []
            for sub_tokens in self._split_on_commas(tokens):
                expr = self._parse_expr_tokens(sub_tokens, loc)
                if expr is not None:
                    sizes.append(self._wrap_constant(expr))
            if not sizes:
                self.diags.report(
                    Severity.ERROR,
                    "'sizes' clause requires at least one size",
                    loc,
                )
                return None
            return cl.OMPSizesClause(sizes, loc)
        if name == "schedule":
            tokens = require_group()
            if tokens is None:
                return None
            groups = self._split_on_commas(tokens)
            kind_name = groups[0][0].spelling if groups and groups[0] else ""
            kind = _SCHEDULE_KINDS.get(kind_name)
            if kind is None:
                self.diags.report(
                    Severity.ERROR,
                    f"unknown schedule kind '{kind_name}'",
                    loc,
                )
                return None
            chunk = None
            if len(groups) > 1:
                chunk = self._parse_expr_tokens(groups[1], loc)
            return cl.OMPScheduleClause(kind, chunk, loc)
        if name == "num_threads":
            tokens = require_group()
            if tokens is None:
                return None
            expr = self._parse_expr_tokens(tokens, loc)
            if expr is None:
                return None
            return cl.OMPNumThreadsClause(expr, loc)
        if name == "collapse":
            tokens = require_group()
            if tokens is None:
                return None
            expr = self._parse_expr_tokens(tokens, loc)
            if expr is None:
                return None
            return cl.OMPCollapseClause(self._wrap_constant(expr), loc)
        if name == "simdlen":
            tokens = require_group()
            if tokens is None:
                return None
            expr = self._parse_expr_tokens(tokens, loc)
            if expr is None:
                return None
            return cl.OMPSimdlenClause(self._wrap_constant(expr), loc)
        if name == "if":
            tokens = require_group()
            if tokens is None:
                return None
            expr = self._parse_expr_tokens(tokens, loc)
            if expr is None:
                return None
            return cl.OMPIfClause(expr, loc)
        if name == "nowait":
            return cl.OMPNowaitClause(loc)
        if name == "ordered":
            return cl.OMPOrderedClause(loc)
        if name == "default":
            tokens = require_group()
            if tokens is None:
                return None
            kind_name = tokens[0].spelling if tokens else ""
            kind = _DEFAULT_KINDS.get(kind_name)
            if kind is None:
                self.diags.report(
                    Severity.ERROR,
                    f"unknown default kind '{kind_name}'",
                    loc,
                )
                return None
            return cl.OMPDefaultClause(kind, loc)
        if name in ("private", "firstprivate", "lastprivate", "shared"):
            tokens = require_group()
            if tokens is None:
                return None
            refs = self._parse_var_list(tokens, loc)
            clause_cls = {
                "private": cl.OMPPrivateClause,
                "firstprivate": cl.OMPFirstprivateClause,
                "lastprivate": cl.OMPLastprivateClause,
                "shared": cl.OMPSharedClause,
            }[name]
            return clause_cls(refs, loc)
        if name == "reduction":
            tokens = require_group()
            if tokens is None:
                return None
            # reduction(op : var-list)
            colon_idx = next(
                (
                    i
                    for i, t in enumerate(tokens)
                    if t.kind == K.COLON
                ),
                None,
            )
            if colon_idx is None:
                self.diags.report(
                    Severity.ERROR,
                    "expected ':' in 'reduction' clause",
                    loc,
                )
                return None
            op_spelling = "".join(
                t.spelling for t in tokens[:colon_idx]
            )
            op = _REDUCTION_OPS.get(op_spelling)
            if op is None:
                self.diags.report(
                    Severity.ERROR,
                    f"unknown reduction operator '{op_spelling}'",
                    loc,
                )
                return None
            refs = self._parse_var_list(tokens[colon_idx + 1 :], loc)
            return cl.OMPReductionClause(op, refs, loc)
        self.diags.report(
            Severity.ERROR,
            f"unknown OpenMP clause '{name}'",
            loc,
        )
        return None

    def _wrap_constant(self, expr: e.Expr) -> e.Expr:
        """Wrap clause arguments that must be constants in a
        ``ConstantExpr`` with the folded value (as the paper's AST dump of
        ``partial(2)`` shows)."""
        value = self.sema.evaluator.try_evaluate(expr)
        if value is None:
            return expr
        return e.ConstantExpr(expr, value, expr.location)
