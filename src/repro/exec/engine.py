"""The closure-compiled execution engine.

:class:`ClosureInterpreter` is a drop-in :class:`Interpreter` that
executes pre-compiled closures (see :mod:`repro.exec.compiler`) instead
of walking the instruction tree.  Everything *around* stepping — memory
model, globals, natives, the simulated OpenMP runtime, profiles,
guardrails — is inherited unchanged, which is what makes the
engine-differential oracle meaningful: the two engines share one
definition of the machine and differ only in how an instruction's
semantics are dispatched.

Parity contract (asserted by the sixth oracle and the integration
suite):

* byte-identical stdout and return value for every program;
* identical :class:`~repro.instrument.ExecutionProfile` — total and
  per-thread retired-instruction counts, barrier waits/episodes, fork
  counts, and detailed block counts;
* identical guardrail behaviour: fuel accounting decrements once per
  retired instruction, the wall-clock deadline is polled on the same
  ``budget & 0xFFF`` mask, and the deliberate quirk that fuel
  exhaustion fires even when the final instruction completed the
  program is preserved;
* identical scheduler semantics: one instruction retired per
  ``step()``, so :class:`repro.runtime.team.Team`'s round-robin,
  ``critical`` spin order, FIFO dynamic dispatch and deadlock detection
  interleave exactly as under the reference interpreter.

Known (documented) divergence: when *malformed* IR falls off the end of
a block, the closure engine counts that final fetch as a retired
instruction before raising, while the tree walker raises on the bounds
check first.  Verified IR never hits this path.
"""

from __future__ import annotations

from typing import Any

from repro.instrument.faultinject import FAULTS
from repro.interp.interpreter import (
    ExecutionContext,
    ExecutionTimeout,
    Interpreter,
    InterpreterError,
    ThreadState,
    scheduler_snapshot,
)
from repro.ir.module import Function, Module

from repro.exec.compiler import (
    ClosureCompiler,
    ClosureFrame,
    CompiledFunction,
)


class ClosureContext(ExecutionContext):
    """One logical thread executing compiled closures.

    Subclasses the reference context so the OpenMP runtime, the team
    scheduler and the profile registry treat it identically; only frame
    representation and stepping differ."""

    interp: "ClosureInterpreter"

    # ------------------------------------------------------------------
    def _push_frame(self, fn: Function, args: list[Any]) -> None:
        if fn.is_declaration:
            raise InterpreterError(
                f"call to undefined function @{fn.name}"
            )
        if len(self.stack) >= self.interp.max_call_depth:
            raise InterpreterError(
                f"guest call depth exceeded the limit of "
                f"{self.interp.max_call_depth} frames while calling "
                f"@{fn.name} (runaway recursion?)"
            )
        self.stack.append(
            ClosureFrame(
                self.interp.code_for(fn), args, self.stack_ptr
            )
        )

    # ------------------------------------------------------------------
    def value_of(self, v) -> Any:
        """Compatibility shim for natives/debug hooks that resolve IR
        values against the current frame (registers live in slots)."""
        frame = self.stack[-1] if self.stack else None
        if frame is not None:
            slot = frame.code.slots.get(id(v))
            if slot is not None:
                return frame.regs[slot]
        return super().value_of(v)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Retire exactly one instruction — same granularity as the
        reference so team interleaving is bit-identical."""
        if self.state is not ThreadState.RUNNABLE:
            return
        frame = self.stack[-1]
        if FAULTS.armed:
            FAULTS.hit("interp-step")
        self.instructions_retired += 1
        profile = self.interp.profile
        if profile.detailed:
            profile.count_block(frame.fn.name, frame.block.name)
        frame.ops[frame.index](self, frame)

    def run_to_completion(self, fuel: int | None = None) -> Any:
        """Serial threaded-dispatch loop: ``step()`` inlined with the
        loop state hoisted into locals.  Accounting (fuel decrement per
        retired instruction, deadline poll mask, barrier pass-through
        for single-threaded contexts) replicates the reference loop
        statement for statement."""
        interp = self.interp
        budget = fuel if fuel is not None else interp.default_fuel
        profile = interp.profile
        detailed = profile.detailed
        stack = self.stack
        faults = FAULTS
        RUNNABLE = ThreadState.RUNNABLE
        BARRIER = ThreadState.BARRIER
        DONE = ThreadState.DONE
        while self.state is not DONE:
            if self.state is BARRIER:
                # Single-threaded contexts pass barriers trivially.
                self.state = RUNNABLE
                self.waiting_at = None
            frame = stack[-1]
            if faults.armed:
                faults.hit("interp-step")
            self.instructions_retired += 1
            if detailed:
                profile.count_block(frame.fn.name, frame.block.name)
            frame.ops[frame.index](self, frame)
            budget -= 1
            if budget <= 0:
                raise ExecutionTimeout(
                    "execution fuel exhausted (infinite loop?)",
                    scheduler_snapshot(interp),
                )
            if (budget & 0xFFF) == 0:
                interp.check_deadline()
        return self.return_value


class ClosureInterpreter(Interpreter):
    """Interpreter whose contexts execute pre-compiled closures.

    Compilation is per-interpreter-instance because global addresses,
    function pseudo-addresses and resolved natives are baked into the
    closures; it is lazy and memoized per function, so a program only
    pays for what it calls."""

    engine_name = "closures"

    def __init__(self, module: Module, **kwargs: Any) -> None:
        super().__init__(module, **kwargs)
        self._compiler = ClosureCompiler(self)
        self._code: dict[int, CompiledFunction] = {}

    # ------------------------------------------------------------------
    def code_for(self, fn: Function) -> CompiledFunction:
        """Memoized compilation.  The shell is registered *before* the
        fill so mutually recursive functions link against it; call ops
        read the shell's tables only at execution time, by which point
        every reachable function has been filled."""
        code = self._code.get(id(fn))
        if code is None:
            code = CompiledFunction(fn)
            self._code[id(fn)] = code
            self._compiler.compile(code)
        return code

    # ------------------------------------------------------------------
    def spawn_context(
        self, fn: Function, args: list[Any], thread_id: int = 0
    ) -> ClosureContext:
        return ClosureContext(self, fn, args, thread_id=thread_id)

    # ------------------------------------------------------------------
    def describe_code(self) -> str:
        """Deterministic rendering of every compiled dispatch table
        (definition order, name/slot based — no object identities), the
        artifact the compilation-determinism property test compares."""
        parts = []
        for fn in self.module.functions.values():
            if fn.is_declaration:
                continue
            parts.append(self.code_for(fn).describe())
        return "\n\n".join(parts)
