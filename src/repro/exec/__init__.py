"""Execution engines for optimized IR.

Two engines share one machine definition (memory model, natives,
simulated OpenMP runtime, profiles, guardrails) and differ only in
instruction dispatch:

* ``interp`` — the reference tree-walking interpreter
  (:class:`repro.interp.interpreter.Interpreter`);
* ``closures`` — the closure-compiling engine
  (:class:`repro.exec.engine.ClosureInterpreter`), which lowers each
  function to pre-compiled Python closures with operands resolved to
  dense register slots.

:func:`create_interpreter` is the single selection point used by the
pipeline, the differential oracle and the benchmark harness.
"""

from __future__ import annotations

from typing import Any

from repro.interp.interpreter import Interpreter
from repro.ir.module import Module

#: engine names accepted by ``-fexec=`` and ``create_interpreter``
ENGINES = ("interp", "closures")


def create_interpreter(
    module: Module, engine: str = "interp", **kwargs: Any
) -> Interpreter:
    """Instantiate the requested execution engine over *module*.

    Both engines accept the same constructor keywords
    (``profile_detail``, ``memory_limit``, ``max_call_depth``, ...) and
    honour the same run-time guardrails.
    """
    if engine == "interp":
        return Interpreter(module, **kwargs)
    if engine == "closures":
        from repro.exec.engine import ClosureInterpreter

        return ClosureInterpreter(module, **kwargs)
    raise ValueError(
        f"unknown execution engine {engine!r} "
        f"(expected one of {', '.join(ENGINES)})"
    )


def profile_fingerprint(profile) -> dict:
    """Engine-comparable digest of an ExecutionProfile.

    Two runs of the same program under different engines must produce
    equal fingerprints: total/per-thread retired instructions, barrier
    accounting, fork counts and (when detailed) per-block counts."""
    return {
        "total_instructions": profile.total_instructions,
        "fork_count": profile.fork_count,
        "barrier_episodes": profile.barrier_episodes,
        "threads": [
            (
                ctx.gtid,
                ctx.thread_id,
                ctx.instructions_retired,
                ctx.barrier_waits,
            )
            for ctx in profile.contexts
        ],
        "block_counts": {
            f"{fn}:{block}": count
            for (fn, block), count in sorted(
                profile.block_counts.items()
            )
        },
    }
