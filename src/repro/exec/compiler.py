"""The closure compiler: optimized IR -> pre-compiled Python closures.

One closure per *instruction*, one :class:`BlockCode` per basic block.
Operands are resolved at compile time to dense register-file slots —
constants (including global and function addresses, which are fixed per
interpreter instance) live in a constant pool appended to the register
file, so every operand read is a single ``regs[i]`` index.  Control flow
is pre-linked: a branch closure captures the target block's op list and
its per-edge phi parallel copy, so taking an edge is two attribute
stores and no lookups (block parameters are "passed explicitly" in the
block-argument sense — each edge knows exactly which slots to move).

The granularity is deliberate: the reference interpreter retires exactly
one instruction per ``step()``, and the simulated OpenMP runtime's
observable semantics (round-robin interleaving, FIFO dynamic dispatch,
``critical`` spin order, printf ordering) depend on that.  Compiling a
whole block into one closure would be faster but would change the
interleaving; compiling one closure per instruction keeps every
scheduler decision bit-identical while removing the per-step operand
dispatch (``isinstance`` chains, ``id()``-keyed register dicts,
``value_of`` constant re-evaluation) that dominates the tree walker.

Semantics-parity rules mirrored from
:class:`repro.interp.interpreter.ExecutionContext` (the reference):

* anything the interpreter raises lazily must stay lazy here — a
  compile-time failure on one instruction becomes a closure that raises
  the same exception only when that instruction executes;
* phi nodes are resolved on the edge as a parallel copy and are never
  retired as instructions (the entry index after a jump skips them);
* natives see C-signed argument values, may return ``RETRY`` to spin,
  and void-typed calls discard results — exactly as the interpreter.
"""

from __future__ import annotations

import math
import struct
from typing import TYPE_CHECKING, Any, Callable

from repro.interp.interpreter import (
    RETRY,
    InterpreterError,
    ThreadState,
    Trap,
)
from repro.interp.memory import MemoryError_
from repro.ir.instructions import (
    AllocaInst,
    BinaryInst,
    BinOp,
    BranchInst,
    CallInst,
    CastInst,
    CastOp,
    CondBranchInst,
    FCmpInst,
    FCmpPred,
    GEPInst,
    ICmpInst,
    ICmpPred,
    Instruction,
    LoadInst,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
)
from repro.ir.values import (
    Argument,
    ConstantFP,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.engine import ClosureInterpreter

_DONE = ThreadState.DONE

#: struct codecs for the specialized load/store closures
_INT_STRUCTS = {
    1: struct.Struct("<B"),
    8: struct.Struct("<B"),
    16: struct.Struct("<H"),
    32: struct.Struct("<I"),
    64: struct.Struct("<Q"),
}
_F32 = struct.Struct("<f")
_F64 = struct.Struct("<d")
_F32_RT = struct.Struct("f")


def _f32(value: float) -> float:
    """Round-trip through single precision (the interpreter's idiom)."""
    return _F32_RT.unpack(_F32_RT.pack(value))[0]


class BlockCode:
    """Compiled form of one basic block: ``ops[i]`` executes
    ``block.instructions[i]``.  A sentinel op at ``ops[len]`` reports
    falling off the end (malformed IR), like the interpreter's bounds
    check."""

    __slots__ = ("block", "ops", "entry_index", "descs")

    def __init__(self, block: BasicBlock) -> None:
        self.block = block
        self.ops: list[Callable] = []
        #: index execution enters at after a jump (skips leading phis)
        self.entry_index = 0
        #: deterministic per-op descriptions (the "dispatch table" the
        #: determinism property test asserts on)
        self.descs: list[str] = []


class CompiledFunction:
    """Dispatch tables for one function under one interpreter instance.

    The register file layout is ``[args..., instruction results...,
    constant pool...]``; ``regs_template`` is copied per frame so
    constants need no runtime resolution at all."""

    __slots__ = (
        "fn",
        "slots",
        "arg_slots",
        "n_values",
        "consts",
        "regs_template",
        "blocks",
        "entry",
    )

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        #: id(Value) -> register slot, for Arguments and Instructions
        self.slots: dict[int, int] = {}
        self.arg_slots: list[int] = []
        self.n_values = 0
        self.consts: list[Any] = []
        self.regs_template: list[Any] = []
        self.blocks: dict[int, BlockCode] = {}
        self.entry: BlockCode | None = None

    def describe(self) -> str:
        """Deterministic text rendering of the dispatch table; byte-equal
        for byte-equal input IR (same IR -> same dispatch table)."""
        lines = [
            f"function @{self.fn.name}: {self.n_values} value slot(s), "
            f"{len(self.consts)} constant(s)"
        ]
        for block in self.fn.blocks:
            code = self.blocks[id(block)]
            lines.append(
                f"  block %{block.name} (entry at {code.entry_index}):"
            )
            lines.extend(
                f"    [{i}] {desc}" for i, desc in enumerate(code.descs)
            )
        return "\n".join(lines)


class ClosureCompiler:
    """Compiles functions of one module for one interpreter instance.

    Bound to the instance because global addresses, function
    pseudo-addresses and resolved natives are baked into the closures."""

    def __init__(self, interp: "ClosureInterpreter") -> None:
        self.interp = interp

    # ------------------------------------------------------------------
    # Entry point (two-phase, so mutually recursive calls can link)
    # ------------------------------------------------------------------
    def compile(self, code: CompiledFunction) -> None:
        fn = code.fn
        n = 0
        for arg in fn.args:
            code.slots[id(arg)] = n
            code.arg_slots.append(n)
            n += 1
        for block in fn.blocks:
            code.blocks[id(block)] = BlockCode(block)
            for inst in block.instructions:
                code.slots[id(inst)] = n
                n += 1
        code.n_values = n
        code.entry = code.blocks[id(fn.entry_block)]
        self._const_index: dict[tuple, int] = {}
        for block in fn.blocks:
            self._compile_block(code, block)
        code.regs_template = [None] * code.n_values + code.consts

    # ------------------------------------------------------------------
    # Operand resolution
    # ------------------------------------------------------------------
    def _const_slot(self, code: CompiledFunction, value: Any) -> int:
        key = (value.__class__, value)
        try:
            slot = self._const_index.get(key)
        except TypeError:  # unhashable (never for int/float) — append
            slot = None
            key = None
        if slot is None:
            slot = code.n_values + len(code.consts)
            code.consts.append(value)
            if key is not None:
                self._const_index[key] = slot
        return slot

    def _slot(self, code: CompiledFunction, v) -> int:
        """Register slot holding *v* at run time (constants are pooled).

        Raises for values the interpreter cannot evaluate either; the
        caller turns that into a lazily-raising op for parity."""
        if isinstance(v, (Instruction, Argument)):
            slot = code.slots.get(id(v))
            if slot is None:
                raise InterpreterError(
                    f"use of value %{v.name} before definition in "
                    f"@{code.fn.name}"
                )
            return slot
        if isinstance(v, ConstantInt):
            return self._const_slot(code, v.value)
        if isinstance(v, ConstantFP):
            return self._const_slot(code, v.value)
        if isinstance(v, (ConstantPointerNull, UndefValue)):
            return self._const_slot(code, 0)
        if isinstance(v, Function):
            return self._const_slot(
                code, self.interp.memory.address_of_function(v)
            )
        if isinstance(v, GlobalVariable):
            return self._const_slot(code, self.interp.global_address(v))
        raise InterpreterError(f"cannot evaluate {v!r}")

    def _ref(self, v) -> str:
        """Stable operand spelling for dispatch-table descriptions."""
        try:
            return v.ref()
        except Exception:  # pragma: no cover - defensive
            return "<operand>"

    # ------------------------------------------------------------------
    # Block compilation
    # ------------------------------------------------------------------
    def _compile_block(
        self, code: CompiledFunction, block: BasicBlock
    ) -> None:
        bc = code.blocks[id(block)]
        phis = 0
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, PhiInst) and phis == index:
                phis += 1
            try:
                op, desc = self._compile_inst(code, block, inst, index)
            except Exception as exc:
                # Parity: the interpreter evaluates lazily, so anything
                # we cannot compile must fail only when executed.
                op = _raiser(exc)
                desc = f"raise {type(exc).__name__}: {exc}"
            bc.ops.append(op)
            bc.descs.append(desc)
        bc.entry_index = phis
        bc.ops.append(_fell_off(block.name))

    # ------------------------------------------------------------------
    # Instruction compilation
    # ------------------------------------------------------------------
    def _compile_inst(
        self,
        code: CompiledFunction,
        block: BasicBlock,
        inst: Instruction,
        index: int,
    ):
        nxt = index + 1
        if isinstance(inst, BinaryInst):
            return self._compile_binop(code, inst, nxt)
        if isinstance(inst, ICmpInst):
            return self._compile_icmp(code, inst, nxt)
        if isinstance(inst, FCmpInst):
            return self._compile_fcmp(code, inst, nxt)
        if isinstance(inst, CastInst):
            return self._compile_cast(code, inst, nxt)
        if isinstance(inst, AllocaInst):
            return self._compile_alloca(code, inst, nxt)
        if isinstance(inst, LoadInst):
            return self._compile_load(code, inst, nxt)
        if isinstance(inst, StoreInst):
            return self._compile_store(code, inst, nxt)
        if isinstance(inst, GEPInst):
            return self._compile_gep(code, inst, nxt)
        if isinstance(inst, BranchInst):
            edge = self._edge(code, block, inst.target)
            return edge, f"br -> %{inst.target.name}"
        if isinstance(inst, CondBranchInst):
            return self._compile_condbr(code, block, inst)
        if isinstance(inst, SwitchInst):
            return self._compile_switch(code, block, inst)
        if isinstance(inst, ReturnInst):
            return self._compile_ret(code, inst)
        if isinstance(inst, UnreachableInst):
            return (
                _raiser(Trap("reached 'unreachable' instruction")),
                "unreachable",
            )
        if isinstance(inst, SelectInst):
            d = code.slots[id(inst)]
            c = self._slot(code, inst.condition)
            t = self._slot(code, inst.true_value)
            f = self._slot(code, inst.false_value)

            def op(ctx, frame, d=d, c=c, t=t, f=f, nxt=nxt):
                regs = frame.regs
                regs[d] = regs[t] if regs[c] else regs[f]
                frame.index = nxt

            return op, (
                f"r{d} = select r{c} ? r{t} : r{f}"
            )
        if isinstance(inst, PhiInst):
            # Never retired: edges resolve phis and jump past them.
            return (
                _raiser(
                    InterpreterError(
                        "phi encountered outside block entry"
                    )
                ),
                f"phi {self._ref(inst)} (resolved on edges)",
            )
        if isinstance(inst, CallInst):
            return self._compile_call(code, inst, nxt)
        raise InterpreterError(
            f"unhandled instruction {type(inst).__name__}"
        )

    # ------------------------------------------------------------------
    def _compile_binop(self, code, inst: BinaryInst, nxt: int):
        d = code.slots[id(inst)]
        a = self._slot(code, inst.lhs)
        b = self._slot(code, inst.rhs)
        op_kind = inst.op
        desc = (
            f"r{d} = {op_kind.value} r{a}, r{b}  "
            f"; {self._ref(inst.lhs)}, {self._ref(inst.rhs)}"
        )
        if op_kind.is_float_op:
            if op_kind == BinOp.FADD:
                def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                    regs = frame.regs
                    regs[d] = regs[a] + regs[b]
                    frame.index = nxt
            elif op_kind == BinOp.FSUB:
                def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                    regs = frame.regs
                    regs[d] = regs[a] - regs[b]
                    frame.index = nxt
            elif op_kind == BinOp.FMUL:
                def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                    regs = frame.regs
                    regs[d] = regs[a] * regs[b]
                    frame.index = nxt
            elif op_kind == BinOp.FDIV:
                def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                    regs = frame.regs
                    lhs, rhs = regs[a], regs[b]
                    if rhs == 0.0:
                        regs[d] = (
                            float("inf")
                            if lhs > 0
                            else float("-inf")
                            if lhs < 0
                            else float("nan")
                        )
                    else:
                        regs[d] = lhs / rhs
                    frame.index = nxt
            else:  # FREM
                def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                    regs = frame.regs
                    rhs = regs[b]
                    regs[d] = (
                        math.fmod(regs[a], rhs)
                        if rhs != 0
                        else float("nan")
                    )
                    frame.index = nxt
            return op, desc
        ty = inst.type
        assert isinstance(ty, IntType)
        mask = ty.mask
        half = 1 << (ty.bits - 1)
        full = 1 << ty.bits
        bits = ty.bits
        if op_kind == BinOp.ADD:
            def op(ctx, frame, d=d, a=a, b=b, mask=mask, nxt=nxt):
                regs = frame.regs
                regs[d] = (regs[a] + regs[b]) & mask
                frame.index = nxt
        elif op_kind == BinOp.SUB:
            def op(ctx, frame, d=d, a=a, b=b, mask=mask, nxt=nxt):
                regs = frame.regs
                regs[d] = (regs[a] - regs[b]) & mask
                frame.index = nxt
        elif op_kind == BinOp.MUL:
            def op(ctx, frame, d=d, a=a, b=b, mask=mask, nxt=nxt):
                regs = frame.regs
                regs[d] = (regs[a] * regs[b]) & mask
                frame.index = nxt
        elif op_kind == BinOp.UDIV:
            def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                regs = frame.regs
                rhs = regs[b]
                if rhs == 0:
                    raise Trap("division by zero")
                regs[d] = regs[a] // rhs
                frame.index = nxt
        elif op_kind == BinOp.UREM:
            def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                regs = frame.regs
                rhs = regs[b]
                if rhs == 0:
                    raise Trap("division by zero")
                regs[d] = regs[a] % rhs
                frame.index = nxt
        elif op_kind == BinOp.SDIV:
            def op(
                ctx, frame, d=d, a=a, b=b,
                mask=mask, half=half, full=full, nxt=nxt,
            ):
                regs = frame.regs
                rhs = regs[b]
                if rhs == 0:
                    raise Trap("division by zero")
                sa = regs[a] & mask
                if sa >= half:
                    sa -= full
                sb = rhs & mask
                if sb >= half:
                    sb -= full
                q = abs(sa) // abs(sb)
                if (sa < 0) != (sb < 0):
                    q = -q
                regs[d] = q & mask
                frame.index = nxt
        elif op_kind == BinOp.SREM:
            def op(
                ctx, frame, d=d, a=a, b=b,
                mask=mask, half=half, full=full, nxt=nxt,
            ):
                regs = frame.regs
                rhs = regs[b]
                if rhs == 0:
                    raise Trap("division by zero")
                sa = regs[a] & mask
                if sa >= half:
                    sa -= full
                sb = rhs & mask
                if sb >= half:
                    sb -= full
                q = abs(sa) // abs(sb)
                if (sa < 0) != (sb < 0):
                    q = -q
                regs[d] = (sa - q * sb) & mask
                frame.index = nxt
        elif op_kind == BinOp.AND:
            def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                regs = frame.regs
                regs[d] = regs[a] & regs[b]
                frame.index = nxt
        elif op_kind == BinOp.OR:
            def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                regs = frame.regs
                regs[d] = regs[a] | regs[b]
                frame.index = nxt
        elif op_kind == BinOp.XOR:
            def op(ctx, frame, d=d, a=a, b=b, nxt=nxt):
                regs = frame.regs
                regs[d] = regs[a] ^ regs[b]
                frame.index = nxt
        elif op_kind == BinOp.SHL:
            def op(
                ctx, frame, d=d, a=a, b=b, mask=mask, bits=bits, nxt=nxt
            ):
                regs = frame.regs
                regs[d] = (regs[a] << (regs[b] % bits)) & mask
                frame.index = nxt
        elif op_kind == BinOp.LSHR:
            def op(ctx, frame, d=d, a=a, b=b, bits=bits, nxt=nxt):
                regs = frame.regs
                regs[d] = regs[a] >> (regs[b] % bits)
                frame.index = nxt
        elif op_kind == BinOp.ASHR:
            def op(
                ctx, frame, d=d, a=a, b=b,
                mask=mask, half=half, full=full, bits=bits, nxt=nxt,
            ):
                regs = frame.regs
                sa = regs[a] & mask
                if sa >= half:
                    sa -= full
                regs[d] = (sa >> (regs[b] % bits)) & mask
                frame.index = nxt
        else:  # pragma: no cover - enum is closed
            raise InterpreterError(f"unhandled binop {op_kind}")
        return op, desc

    # ------------------------------------------------------------------
    def _compile_icmp(self, code, inst: ICmpInst, nxt: int):
        import operator

        d = code.slots[id(inst)]
        a = self._slot(code, inst.lhs)
        b = self._slot(code, inst.rhs)
        pred = inst.pred
        cmp = {
            ICmpPred.EQ: operator.eq,
            ICmpPred.NE: operator.ne,
            ICmpPred.SLT: operator.lt,
            ICmpPred.SLE: operator.le,
            ICmpPred.SGT: operator.gt,
            ICmpPred.SGE: operator.ge,
            ICmpPred.ULT: operator.lt,
            ICmpPred.ULE: operator.le,
            ICmpPred.UGT: operator.gt,
            ICmpPred.UGE: operator.ge,
        }[pred]
        desc = f"r{d} = icmp {pred.value} r{a}, r{b}"
        ty = inst.lhs.type
        if pred.is_signed and isinstance(ty, IntType):
            mask = ty.mask
            half = 1 << (ty.bits - 1)
            full = 1 << ty.bits

            def op(
                ctx, frame, d=d, a=a, b=b, cmp=cmp,
                mask=mask, half=half, full=full, nxt=nxt,
            ):
                regs = frame.regs
                lhs = regs[a] & mask
                if lhs >= half:
                    lhs -= full
                rhs = regs[b] & mask
                if rhs >= half:
                    rhs -= full
                regs[d] = 1 if cmp(lhs, rhs) else 0
                frame.index = nxt
        else:
            def op(ctx, frame, d=d, a=a, b=b, cmp=cmp, nxt=nxt):
                regs = frame.regs
                regs[d] = 1 if cmp(regs[a], regs[b]) else 0
                frame.index = nxt

        return op, desc

    def _compile_fcmp(self, code, inst: FCmpInst, nxt: int):
        import operator

        d = code.slots[id(inst)]
        a = self._slot(code, inst.lhs)
        b = self._slot(code, inst.rhs)
        cmp = {
            FCmpPred.OEQ: operator.eq,
            FCmpPred.ONE: operator.ne,
            FCmpPred.OLT: operator.lt,
            FCmpPred.OLE: operator.le,
            FCmpPred.OGT: operator.gt,
            FCmpPred.OGE: operator.ge,
        }[inst.pred]

        def op(ctx, frame, d=d, a=a, b=b, cmp=cmp, nxt=nxt):
            regs = frame.regs
            regs[d] = 1 if cmp(regs[a], regs[b]) else 0
            frame.index = nxt

        return op, f"r{d} = fcmp {inst.pred.value} r{a}, r{b}"

    # ------------------------------------------------------------------
    def _compile_cast(self, code, inst: CastInst, nxt: int):
        d = code.slots[id(inst)]
        s = self._slot(code, inst.value)
        kind = inst.op
        src_ty = inst.value.type
        dst_ty = inst.type
        desc = f"r{d} = {kind.value} r{s} to {dst_ty}"
        if kind == CastOp.TRUNC:
            assert isinstance(dst_ty, IntType)
            mask = dst_ty.mask

            def op(ctx, frame, d=d, s=s, mask=mask, nxt=nxt):
                regs = frame.regs
                regs[d] = regs[s] & mask
                frame.index = nxt
        elif kind == CastOp.ZEXT:
            def op(ctx, frame, d=d, s=s, nxt=nxt):
                regs = frame.regs
                regs[d] = regs[s]
                frame.index = nxt
        elif kind == CastOp.SEXT:
            assert isinstance(src_ty, IntType) and isinstance(
                dst_ty, IntType
            )
            smask = src_ty.mask
            shalf = 1 << (src_ty.bits - 1)
            sfull = 1 << src_ty.bits
            dmask = dst_ty.mask

            def op(
                ctx, frame, d=d, s=s,
                smask=smask, shalf=shalf, sfull=sfull, dmask=dmask,
                nxt=nxt,
            ):
                regs = frame.regs
                v = regs[s] & smask
                if v >= shalf:
                    v -= sfull
                regs[d] = v & dmask
                frame.index = nxt
        elif kind in (CastOp.FPTOSI, CastOp.FPTOUI):
            assert isinstance(dst_ty, IntType)
            dmask = dst_ty.mask

            def op(ctx, frame, d=d, s=s, dmask=dmask, nxt=nxt):
                regs = frame.regs
                regs[d] = int(regs[s]) & dmask
                frame.index = nxt
        elif kind == CastOp.SITOFP:
            assert isinstance(src_ty, IntType)
            smask = src_ty.mask
            shalf = 1 << (src_ty.bits - 1)
            sfull = 1 << src_ty.bits
            narrow = isinstance(dst_ty, FloatType) and dst_ty.bits == 32

            def op(
                ctx, frame, d=d, s=s,
                smask=smask, shalf=shalf, sfull=sfull, narrow=narrow,
                nxt=nxt,
            ):
                regs = frame.regs
                v = regs[s] & smask
                if v >= shalf:
                    v -= sfull
                result = float(v)
                if narrow:
                    result = _f32(result)
                regs[d] = result
                frame.index = nxt
        elif kind == CastOp.UITOFP:
            narrow = isinstance(dst_ty, FloatType) and dst_ty.bits == 32

            def op(ctx, frame, d=d, s=s, narrow=narrow, nxt=nxt):
                regs = frame.regs
                result = float(regs[s])
                if narrow:
                    result = _f32(result)
                regs[d] = result
                frame.index = nxt
        elif kind in (CastOp.FPEXT, CastOp.FPTRUNC):
            narrow = isinstance(dst_ty, FloatType) and dst_ty.bits == 32

            def op(ctx, frame, d=d, s=s, narrow=narrow, nxt=nxt):
                regs = frame.regs
                v = regs[s]
                regs[d] = _f32(v) if narrow else float(v)
                frame.index = nxt
        elif kind in (CastOp.PTRTOINT, CastOp.INTTOPTR, CastOp.BITCAST):
            if isinstance(dst_ty, IntType):
                dmask = dst_ty.mask

                def op(ctx, frame, d=d, s=s, dmask=dmask, nxt=nxt):
                    regs = frame.regs
                    regs[d] = int(regs[s]) & dmask
                    frame.index = nxt
            else:
                def op(ctx, frame, d=d, s=s, nxt=nxt):
                    regs = frame.regs
                    regs[d] = regs[s]
                    frame.index = nxt
        else:  # pragma: no cover - enum is closed
            raise InterpreterError(f"unhandled cast {kind}")
        return op, desc

    # ------------------------------------------------------------------
    def _compile_alloca(self, code, inst: AllocaInst, nxt: int):
        d = code.slots[id(inst)]
        el_size = inst.allocated_type.size_bytes()
        zero = self.interp.memory.zero
        if inst.array_size is None:
            size = el_size

            def op(ctx, frame, d=d, size=size, zero=zero, nxt=nxt):
                addr = ctx.stack_alloc(size)
                zero(addr, size)
                frame.regs[d] = addr
                frame.index = nxt

            return op, f"r{d} = alloca {inst.allocated_type} ({size}B)"
        c = self._slot(code, inst.array_size)

        def op(
            ctx, frame, d=d, c=c, el_size=el_size, zero=zero, nxt=nxt
        ):
            count = frame.regs[c]
            size = el_size * max(1, count)
            addr = ctx.stack_alloc(size)
            zero(addr, size)
            frame.regs[d] = addr
            frame.index = nxt

        return op, f"r{d} = alloca {inst.allocated_type} x r{c}"

    # ------------------------------------------------------------------
    def _compile_load(self, code, inst: LoadInst, nxt: int):
        d = code.slots[id(inst)]
        p = self._slot(code, inst.pointer)
        ty = inst.type
        mem = self.interp.memory
        data = mem.data
        desc = f"r{d} = load {ty}, r{p}"
        if isinstance(ty, IntType) and ty.bits in _INT_STRUCTS:
            codec = _INT_STRUCTS[ty.bits]
            size = ty.size_bytes()
            unpack_from = codec.unpack_from
            if ty.bits == 1:
                def op(
                    ctx, frame, d=d, p=p, data=data,
                    unpack_from=unpack_from, size=size, nxt=nxt,
                ):
                    regs = frame.regs
                    addr = regs[p]
                    if addr <= 0 or addr + size > len(data):
                        raise MemoryError_(
                            f"out-of-range access: {size} bytes "
                            f"at {addr:#x}"
                        )
                    regs[d] = unpack_from(data, addr)[0] & 1
                    frame.index = nxt
            else:
                def op(
                    ctx, frame, d=d, p=p, data=data,
                    unpack_from=unpack_from, size=size, nxt=nxt,
                ):
                    regs = frame.regs
                    addr = regs[p]
                    if addr <= 0 or addr + size > len(data):
                        raise MemoryError_(
                            f"out-of-range access: {size} bytes "
                            f"at {addr:#x}"
                        )
                    regs[d] = unpack_from(data, addr)[0]
                    frame.index = nxt
            return op, desc
        if isinstance(ty, FloatType) or isinstance(ty, PointerType):
            codec = (
                _F64
                if isinstance(ty, FloatType) and ty.bits == 64
                else _F32
                if isinstance(ty, FloatType)
                else _INT_STRUCTS[64]
            )
            size = ty.size_bytes()
            unpack_from = codec.unpack_from

            def op(
                ctx, frame, d=d, p=p, data=data,
                unpack_from=unpack_from, size=size, nxt=nxt,
            ):
                regs = frame.regs
                addr = regs[p]
                if addr <= 0 or addr + size > len(data):
                    raise MemoryError_(
                        f"out-of-range access: {size} bytes at {addr:#x}"
                    )
                regs[d] = unpack_from(data, addr)[0]
                frame.index = nxt

            return op, desc
        # Aggregate or exotic width: defer to Memory.load for the exact
        # error behaviour.
        load = mem.load

        def op(ctx, frame, d=d, p=p, load=load, ty=ty, nxt=nxt):
            regs = frame.regs
            regs[d] = load(ty, regs[p])
            frame.index = nxt

        return op, desc

    def _compile_store(self, code, inst: StoreInst, nxt: int):
        v = self._slot(code, inst.value)
        p = self._slot(code, inst.pointer)
        ty = inst.value.type
        mem = self.interp.memory
        data = mem.data
        desc = f"store {ty} r{v} -> r{p}"
        if isinstance(ty, IntType) and ty.bits in _INT_STRUCTS:
            codec = _INT_STRUCTS[ty.bits]
            size = ty.size_bytes()
            mask = ty.mask
            pack_into = codec.pack_into

            def op(
                ctx, frame, v=v, p=p, data=data,
                pack_into=pack_into, size=size, mask=mask, nxt=nxt,
            ):
                regs = frame.regs
                addr = regs[p]
                if addr <= 0 or addr + size > len(data):
                    raise MemoryError_(
                        f"out-of-range access: {size} bytes at {addr:#x}"
                    )
                pack_into(data, addr, int(regs[v]) & mask)
                frame.index = nxt

            return op, desc
        if isinstance(ty, FloatType):
            codec = _F32 if ty.bits == 32 else _F64
            size = ty.size_bytes()
            pack_into = codec.pack_into

            def op(
                ctx, frame, v=v, p=p, data=data,
                pack_into=pack_into, size=size, nxt=nxt,
            ):
                regs = frame.regs
                addr = regs[p]
                if addr <= 0 or addr + size > len(data):
                    raise MemoryError_(
                        f"out-of-range access: {size} bytes at {addr:#x}"
                    )
                pack_into(data, addr, float(regs[v]))
                frame.index = nxt

            return op, desc
        if isinstance(ty, PointerType):
            codec = _INT_STRUCTS[64]
            pack_into = codec.pack_into
            mask64 = (1 << 64) - 1

            def op(
                ctx, frame, v=v, p=p, data=data,
                pack_into=pack_into, mask64=mask64, nxt=nxt,
            ):
                regs = frame.regs
                addr = regs[p]
                if addr <= 0 or addr + 8 > len(data):
                    raise MemoryError_(
                        f"out-of-range access: 8 bytes at {addr:#x}"
                    )
                pack_into(data, addr, int(regs[v]) & mask64)
                frame.index = nxt

            return op, desc
        store = mem.store

        def op(ctx, frame, v=v, p=p, store=store, ty=ty, nxt=nxt):
            regs = frame.regs
            store(ty, regs[p], regs[v])
            frame.index = nxt

        return op, desc

    # ------------------------------------------------------------------
    def _compile_gep(self, code, inst: GEPInst, nxt: int):
        d = code.slots[id(inst)]
        p = self._slot(code, inst.pointer)
        ty = inst.element_type
        el_size = ty.size_bytes()
        first = inst.indices[0]
        desc = (
            f"r{d} = gep {ty}, r{p} + "
            f"[{', '.join(self._ref(i) for i in inst.indices)}]"
        )
        if len(inst.indices) == 1:
            if isinstance(first, ConstantInt):
                off = first.signed_value * el_size

                def op(ctx, frame, d=d, p=p, off=off, nxt=nxt):
                    regs = frame.regs
                    regs[d] = regs[p] + off
                    frame.index = nxt

                return op, desc
            i0 = self._slot(code, first)
            idx_ty = first.type
            if isinstance(idx_ty, IntType):
                mask = idx_ty.mask
                half = 1 << (idx_ty.bits - 1)
                full = 1 << idx_ty.bits

                def op(
                    ctx, frame, d=d, p=p, i0=i0, el_size=el_size,
                    mask=mask, half=half, full=full, nxt=nxt,
                ):
                    regs = frame.regs
                    idx = regs[i0] & mask
                    if idx >= half:
                        idx -= full
                    regs[d] = regs[p] + idx * el_size
                    frame.index = nxt
            else:
                def op(
                    ctx, frame, d=d, p=p, i0=i0, el_size=el_size, nxt=nxt
                ):
                    regs = frame.regs
                    regs[d] = regs[p] + regs[i0] * el_size
                    frame.index = nxt

            return op, desc
        # Multi-index: fold when every aggregate step is constant
        # (struct field access, constant array indices).
        if isinstance(first, ConstantInt) and all(
            isinstance(i, ConstantInt) for i in inst.indices[1:]
        ):
            walk_ty = ty
            off = first.signed_value * el_size
            for raw in inst.indices[1:]:
                idx_val = raw.value
                if isinstance(walk_ty, StructType):
                    off += walk_ty.offset_of(idx_val)
                    walk_ty = walk_ty.elements[idx_val]
                elif isinstance(walk_ty, ArrayType):
                    signed = raw.signed_value
                    off += signed * walk_ty.element.size_bytes()
                    walk_ty = walk_ty.element
                else:
                    raise InterpreterError(
                        f"gep into non-aggregate type {walk_ty}"
                    )

            def op(ctx, frame, d=d, p=p, off=off, nxt=nxt):
                regs = frame.regs
                regs[d] = regs[p] + off
                frame.index = nxt

            return op, desc
        # Generic fallback mirroring ExecutionContext._gep exactly.
        idx_slots = [self._slot(code, i) for i in inst.indices]
        idx_types = [i.type for i in inst.indices]

        def op(
            ctx, frame, d=d, p=p, ty=ty,
            idx_slots=idx_slots, idx_types=idx_types, nxt=nxt,
        ):
            regs = frame.regs
            addr = regs[p]
            indices = [regs[s] for s in idx_slots]
            first_val = indices[0]
            idx_ty = idx_types[0]
            if isinstance(idx_ty, IntType):
                first_val = idx_ty.to_signed(first_val)
            addr += first_val * ty.size_bytes()
            walk_ty = ty
            for raw_ty, idx_val in zip(idx_types[1:], indices[1:]):
                if isinstance(walk_ty, StructType):
                    addr += walk_ty.offset_of(idx_val)
                    walk_ty = walk_ty.elements[idx_val]
                elif isinstance(walk_ty, ArrayType):
                    signed = idx_val
                    if isinstance(raw_ty, IntType):
                        signed = raw_ty.to_signed(idx_val)
                    addr += signed * walk_ty.element.size_bytes()
                    walk_ty = walk_ty.element
                else:
                    raise InterpreterError(
                        f"gep into non-aggregate type {walk_ty}"
                    )
            regs[d] = addr
            frame.index = nxt

        return op, desc

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def _edge(
        self, code: CompiledFunction, src: BasicBlock, target: BasicBlock
    ):
        """Pre-linked jump closure for the edge ``src -> target``: the
        phi parallel copy plus the block/ops/index switch.  Signature is
        ``(ctx, frame)`` so an unconditional branch op *is* its edge."""
        tbc = code.blocks[id(target)]
        tblock = target
        tops = tbc.ops  # list object is stable; filled by fill order
        phis = []
        for i in target.instructions:
            if isinstance(i, PhiInst):
                phis.append(i)
            else:
                break
        if not phis:
            def edge(ctx, frame, tblock=tblock, tops=tops):
                frame.block = tblock
                frame.ops = tops
                frame.index = 0

            return edge
        tindex = len(phis)
        copies = []
        for phi in phis:
            incoming = phi.incoming_for(src)
            if incoming is None:
                return _raiser(
                    InterpreterError(
                        f"phi %{phi.name} has no incoming for {src.name}"
                    )
                )
            copies.append(
                (code.slots[id(phi)], self._slot(code, incoming))
            )
        if len(copies) == 1:
            (pd, ps) = copies[0]

            def edge(
                ctx, frame, pd=pd, ps=ps,
                tblock=tblock, tops=tops, tindex=tindex,
            ):
                regs = frame.regs
                regs[pd] = regs[ps]
                frame.block = tblock
                frame.ops = tops
                frame.index = tindex

            return edge
        copies = tuple(copies)

        def edge(
            ctx, frame, copies=copies,
            tblock=tblock, tops=tops, tindex=tindex,
        ):
            regs = frame.regs
            values = [regs[s] for _, s in copies]
            for (pd, _), value in zip(copies, values):
                regs[pd] = value
            frame.block = tblock
            frame.ops = tops
            frame.index = tindex

        return edge

    def _compile_condbr(self, code, block, inst: CondBranchInst):
        c = self._slot(code, inst.condition)
        te = self._edge(code, block, inst.true_block)
        fe = self._edge(code, block, inst.false_block)

        def op(ctx, frame, c=c, te=te, fe=fe):
            (te if frame.regs[c] else fe)(ctx, frame)

        return op, (
            f"br r{c} ? %{inst.true_block.name} : "
            f"%{inst.false_block.name}"
        )

    def _compile_switch(self, code, block, inst: SwitchInst):
        c = self._slot(code, inst.condition)
        default_edge = self._edge(code, block, inst.default)
        table = {}
        for case_value, target in inst.cases:
            # First matching case wins, like the interpreter's scan.
            table.setdefault(
                case_value, self._edge(code, block, target)
            )
        ty = inst.condition.type
        desc = (
            f"switch r{c} "
            f"[{', '.join(str(v) for v, _ in inst.cases)}] "
            f"default %{inst.default.name}"
        )
        if isinstance(ty, IntType):
            mask = ty.mask
            half = 1 << (ty.bits - 1)
            full = 1 << ty.bits

            def op(
                ctx, frame, c=c, table=table, default_edge=default_edge,
                mask=mask, half=half, full=full,
            ):
                v = frame.regs[c] & mask
                if v >= half:
                    v -= full
                table.get(v, default_edge)(ctx, frame)
        else:
            def op(
                ctx, frame, c=c, table=table, default_edge=default_edge
            ):
                table.get(frame.regs[c], default_edge)(ctx, frame)

        return op, desc

    def _compile_ret(self, code, inst: ReturnInst):
        if inst.value is not None:
            v = self._slot(code, inst.value)

            def op(ctx, frame, v=v, _DONE=_DONE):
                stack = ctx.stack
                stack.pop()
                ctx.stack_ptr = frame.stack_mark
                value = frame.regs[v]
                if not stack:
                    ctx.return_value = value
                    ctx.state = _DONE
                    return
                rd = frame.ret_dst
                caller = stack[-1]
                if rd is not None:
                    caller.regs[rd] = value
                caller.index = frame.ret_index

            return op, f"ret r{v}"

        def op(ctx, frame, _DONE=_DONE):
            stack = ctx.stack
            stack.pop()
            ctx.stack_ptr = frame.stack_mark
            if not stack:
                ctx.return_value = None
                ctx.state = _DONE
                return
            rd = frame.ret_dst
            caller = stack[-1]
            if rd is not None:
                caller.regs[rd] = None
            caller.index = frame.ret_index

        return op, "ret void"

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _native_convs(self, inst: CallInst):
        """Positions of int args natives see as C-signed values."""
        convs = []
        for i, a in enumerate(inst.args):
            ty = a.type
            if isinstance(ty, IntType) and ty.bits > 1:
                convs.append(
                    (i, ty.mask, 1 << (ty.bits - 1), 1 << ty.bits)
                )
        return tuple(convs)

    def _compile_call(self, code, inst: CallInst, nxt: int):
        interp = self.interp
        arg_slots = tuple(self._slot(code, a) for a in inst.args)
        dst = None if inst.type.is_void else code.slots[id(inst)]
        convs = self._native_convs(inst)
        callee = inst.callee
        if isinstance(callee, Function):
            name = callee.name
            # native_for raises for an undefined external — defer that
            # to execution time (the interpreter only fails when the
            # call actually runs).
            native = interp.native_for(callee)
            if native is not None:
                desc = (
                    f"{'call' if dst is None else f'r{dst} = call'} "
                    f"native @{name}"
                    f"({', '.join(f'r{s}' for s in arg_slots)})"
                )

                def op(
                    ctx, frame, native=native, interp=interp,
                    arg_slots=arg_slots, convs=convs, dst=dst, nxt=nxt,
                ):
                    regs = frame.regs
                    args = [regs[s] for s in arg_slots]
                    for i, mask, half, full in convs:
                        v = args[i] & mask
                        if v >= half:
                            v -= full
                        args[i] = v
                    result = native(interp, ctx, args)
                    if result is RETRY:
                        return
                    if dst is not None:
                        regs[dst] = result
                    frame.index = nxt

                return op, desc
            callee_code = interp.code_for(callee)
            depth = interp.max_call_depth
            desc = (
                f"{'call' if dst is None else f'r{dst} = call'} "
                f"@{name}({', '.join(f'r{s}' for s in arg_slots)})"
            )

            def op(
                ctx, frame, callee_code=callee_code,
                arg_slots=arg_slots, depth=depth, name=name,
                dst=dst, nxt=nxt,
            ):
                stack = ctx.stack
                if len(stack) >= depth:
                    raise InterpreterError(
                        f"guest call depth exceeded the limit of "
                        f"{depth} frames while calling @{name} "
                        f"(runaway recursion?)"
                    )
                regs = frame.regs
                frame_new = ClosureFrame(
                    callee_code,
                    [regs[s] for s in arg_slots],
                    ctx.stack_ptr,
                )
                frame_new.ret_dst = dst
                frame_new.ret_index = nxt
                stack.append(frame_new)

            return op, desc
        # Indirect call: resolve the target at run time, like the
        # interpreter (invalid address traps, undefined extern raises).
        cslot = self._slot(code, callee)
        desc = (
            f"{'call' if dst is None else f'r{dst} = call'} "
            f"*r{cslot}({', '.join(f'r{s}' for s in arg_slots)})"
        )

        def op(
            ctx, frame, interp=interp, cslot=cslot,
            arg_slots=arg_slots, convs=convs, dst=dst, nxt=nxt,
        ):
            regs = frame.regs
            addr = regs[cslot]
            fn = interp.memory.function_at(addr)
            if fn is None:
                raise Trap(
                    f"indirect call to invalid address {addr:#x}"
                )
            args = [regs[s] for s in arg_slots]
            native = interp.native_for(fn)
            if native is not None:
                for i, mask, half, full in convs:
                    v = args[i] & mask
                    if v >= half:
                        v -= full
                    args[i] = v
                result = native(interp, ctx, args)
                if result is RETRY:
                    return
                if dst is not None:
                    regs[dst] = result
                frame.index = nxt
                return
            stack = ctx.stack
            if len(stack) >= interp.max_call_depth:
                raise InterpreterError(
                    f"guest call depth exceeded the limit of "
                    f"{interp.max_call_depth} frames while calling "
                    f"@{fn.name} (runaway recursion?)"
                )
            if fn.is_declaration:  # pragma: no cover - native_for raised
                raise InterpreterError(
                    f"call to undefined function @{fn.name}"
                )
            frame_new = ClosureFrame(
                interp.code_for(fn), args, ctx.stack_ptr
            )
            frame_new.ret_dst = dst
            frame_new.ret_index = nxt
            stack.append(frame_new)

        return op, desc


# ---------------------------------------------------------------------------
# Shared op helpers
# ---------------------------------------------------------------------------
def _raiser(exc: BaseException):
    """An op that raises *exc* when (and only when) executed."""

    def op(ctx, frame, exc=exc):
        raise exc

    return op


def _fell_off(block_name: str):
    def op(ctx, frame, block_name=block_name):
        raise InterpreterError(
            f"fell off the end of block {block_name}"
        )

    return op


class ClosureFrame:
    """Compiled call frame: dense register file + current dispatch
    table.  ``block``/``index`` track the real IR position so scheduler
    snapshots and call-site identity (``single``) stay exact."""

    __slots__ = (
        "fn",
        "code",
        "block",
        "ops",
        "index",
        "regs",
        "stack_mark",
        "ret_dst",
        "ret_index",
    )

    def __init__(
        self, code: CompiledFunction, args: list, stack_mark: int
    ) -> None:
        self.fn = code.fn
        self.code = code
        entry = code.entry
        self.block = entry.block
        self.ops = entry.ops
        self.index = 0
        regs = code.regs_template.copy()
        for slot, value in zip(code.arg_slots, args):
            regs[slot] = value
        self.regs = regs
        self.stack_mark = stack_mark
        #: where the matching ret writes its value in the caller
        self.ret_dst = None
        self.ret_index = 0
