"""The Preprocessor: raw tokens -> parser token stream.

Pull-model, as in clang (paper Fig. 1: the Parser steers, each ``lex()``
call pulls from the include/macro stack below).  Responsibilities:

* driving one :class:`~repro.lex.lexer.Lexer` per ``#include`` level,
* macro definition/expansion (with recursion prevention),
* conditional compilation,
* converting ``#pragma omp`` into ``ANNOT_PRAGMA_OPENMP`` annotation tokens
  and ``#pragma clang loop`` into ``ANNOT_PRAGMA_LOOPHINT``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.diagnostics import DiagnosticsEngine, Severity
from repro.instrument import get_statistic, time_trace_scope
from repro.instrument.faultinject import FAULTS
from repro.lex.lexer import Lexer
from repro.lex.tokens import Token, TokenKind
from repro.preprocessor.macro import (
    MacroInfo,
    paste_tokens,
    stringify_tokens,
)
from repro.preprocessor.pp_expr import PPExpressionEvaluator
from repro.sourcemgr.file_manager import FileManager
from repro.sourcemgr.location import SourceLocation
from repro.sourcemgr.memory_buffer import MemoryBuffer
from repro.sourcemgr.source_manager import FileID, SourceManager

#: Default `_OPENMP` value: OpenMP 5.1 (November 2020), the version that
#: introduced the `tile`/`unroll` directives the paper implements.
OPENMP_51_DATE = 202011

#: The pure loop-transformation directives (OpenMP 5.1 §2.11.9 plus the
#: 6.0 extensions this repo implements).  These rewrite the iteration
#: space without changing which iterations execute — exactly the set
#: `strip_omp_transforms` removes.
TRANSFORM_DIRECTIVES = frozenset(
    {"unroll", "tile", "reverse", "interchange", "fuse"}
)

_MAX_INCLUDE_DEPTH = 64

_TOKENS_LEXED = get_statistic(
    "preprocessor",
    "tokens-lexed",
    "Preprocessed tokens handed to the parser",
)


@dataclass
class PreprocessorOptions:
    """Driver-controllable preprocessor configuration."""

    defines: dict[str, str] = field(default_factory=dict)
    include_paths: list[str] = field(default_factory=list)
    openmp: bool = True
    openmp_version: int = OPENMP_51_DATE
    #: Drop loop-TRANSFORMATION directives (unroll/tile/reverse/
    #: interchange/fuse) while keeping worksharing ones — the
    #: differential-testing oracle's reference configuration: by the
    #: paper's semantics-preservation claim the stripped program must
    #: produce the same observable output.
    strip_omp_transforms: bool = False


@dataclass
class _ConditionalState:
    """One entry of the #if stack of the current file."""

    was_taken: bool  # some branch of this #if chain has been entered
    in_else: bool
    location: SourceLocation


class _IncludeLevel:
    """A lexer plus pushback and conditional stack for one include level."""

    def __init__(self, lexer: Lexer, entry_name: str) -> None:
        self.lexer = lexer
        self.entry_name = entry_name
        self.pushback: deque[Token] = deque()
        self.conditionals: list[_ConditionalState] = []

    def lex(self) -> Token:
        if self.pushback:
            return self.pushback.popleft()
        return self.lexer.lex()

    def unlex(self, tok: Token) -> None:
        self.pushback.appendleft(tok)


class Preprocessor:
    """See module docstring."""

    def __init__(
        self,
        source_manager: SourceManager,
        file_manager: FileManager,
        diags: DiagnosticsEngine,
        options: PreprocessorOptions | None = None,
    ) -> None:
        self.sm = source_manager
        self.fm = file_manager
        self.diags = diags
        self.options = options or PreprocessorOptions()
        self.macros: dict[str, MacroInfo] = {}
        self._levels: list[_IncludeLevel] = []
        #: tokens produced by macro expansion / pragma annotation, pending
        #: delivery to the parser.
        self._pending: deque[Token] = deque()
        self._install_builtin_macros()
        for name, value in self.options.defines.items():
            self.define_from_string(name, value)
        self.fm.search_paths.extend(
            p
            for p in self.options.include_paths
            if p not in self.fm.search_paths
        )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _install_builtin_macros(self) -> None:
        builtins = {
            "__STDC__": "1",
            "__STDC_VERSION__": "201710L",
            "__MINICLANG__": "1",
        }
        if self.options.openmp:
            builtins["_OPENMP"] = str(self.options.openmp_version)
        for name, value in builtins.items():
            info = self.define_from_string(name, value)
            info.is_builtin = True
        # __LINE__ / __FILE__ are handled specially during expansion.
        for magic in ("__LINE__", "__FILE__"):
            info = MacroInfo(magic, [], is_builtin=True)
            self.macros[magic] = info

    def define_from_string(self, name: str, value: str = "1") -> MacroInfo:
        """Register a ``-DNAME=VALUE`` style definition."""
        body = value if value != "" else "1"
        if "(" in name:
            # -D'F(x)=...' style; split head from parameter list.
            head, params_part = name.split("(", 1)
            params = [
                p.strip()
                for p in params_part.rstrip(")").split(",")
                if p.strip()
            ]
            info = MacroInfo(
                head, self._tokenize_fragment(body), params=params
            )
        else:
            info = MacroInfo(name, self._tokenize_fragment(body))
        self.macros[info.name] = info
        return info

    def _tokenize_fragment(self, text: str) -> list[Token]:
        from repro.lex.lexer import tokenize_string

        toks = tokenize_string(text, "<define>", self.diags)
        return [t for t in toks if t.kind != TokenKind.EOF]

    def enter_main_file(self, fid: FileID) -> None:
        lexer = Lexer(self.sm, fid, self.diags)
        name = self.sm.get_buffer(fid).name
        self._levels.append(_IncludeLevel(lexer, name))

    def enter_source(self, text: str, name: str = "<input>") -> FileID:
        """Convenience: load *text* as the main file and enter it."""
        fid = self.sm.create_main_file(MemoryBuffer(name, text))
        self.enter_main_file(fid)
        return fid

    # ------------------------------------------------------------------
    # Low-level raw token access (current include level, with fallback)
    # ------------------------------------------------------------------
    @property
    def _level(self) -> _IncludeLevel:
        return self._levels[-1]

    def _raw_lex(self) -> Token:
        """Next raw token, popping finished include levels."""
        while self._levels:
            tok = self._level.lex()
            if tok.kind != TokenKind.EOF or len(self._levels) == 1:
                if tok.kind == TokenKind.EOF:
                    # Main-file EOF: diagnose conditionals left open.
                    level = self._level
                    for cond in level.conditionals:
                        self.diags.report(
                            Severity.ERROR,
                            "unterminated conditional directive",
                            cond.location,
                        )
                    level.conditionals.clear()
                return tok
            level = self._levels.pop()
            for cond in level.conditionals:
                self.diags.report(
                    Severity.ERROR,
                    "unterminated conditional directive",
                    cond.location,
                )
        return Token(TokenKind.EOF, "")

    def _collect_directive_tokens(self) -> list[Token]:
        """Tokens up to the end of the current directive line."""
        tokens: list[Token] = []
        while True:
            tok = self._level.lex()
            if tok.kind == TokenKind.EOF:
                self._level.unlex(tok)
                return tokens
            if tok.at_line_start:
                self._level.unlex(tok)
                return tokens
            tokens.append(tok)

    # ------------------------------------------------------------------
    # Main pull interface
    # ------------------------------------------------------------------
    def lex(self) -> Token:
        """Next fully preprocessed token for the parser."""
        while True:
            if self._pending:
                return self._pending.popleft()
            tok = self._raw_lex()
            if tok.kind == TokenKind.HASH and tok.at_line_start:
                self._handle_directive()
                continue
            if self._is_expandable(tok):
                if self._expand_macro(tok):
                    continue
            return tok

    def lex_all(self) -> list[Token]:
        with time_trace_scope("Preprocess"):
            tokens = []
            while True:
                if FAULTS.armed:
                    FAULTS.hit("preprocessor")
                tok = self.lex()
                tokens.append(tok)
                if tok.kind == TokenKind.EOF:
                    _TOKENS_LEXED.inc(len(tokens))
                    return tokens

    # ------------------------------------------------------------------
    # Macro expansion
    # ------------------------------------------------------------------
    def _is_expandable(self, tok: Token) -> bool:
        return (
            tok.kind == TokenKind.IDENTIFIER and tok.spelling in self.macros
        )

    def _expand_macro(self, tok: Token) -> bool:
        """Expand *tok* if it names a macro invocation.

        Returns True when an expansion took place (its tokens were pushed
        onto the pending queue).
        """
        info = self.macros[tok.spelling]
        if info.name == "__LINE__":
            line = self.sm.get_presumed_loc(tok.location).line
            self._push_pending(
                [Token(TokenKind.NUMERIC_CONSTANT, str(line), tok.location)]
            )
            return True
        if info.name == "__FILE__":
            fname = self.sm.get_presumed_loc(tok.location).filename
            self._push_pending(
                [
                    Token(
                        TokenKind.STRING_LITERAL,
                        f'"{fname}"',
                        tok.location,
                    )
                ]
            )
            return True
        if info.is_function_like:
            nxt = self._peek_raw_or_pending()
            if nxt.kind != TokenKind.L_PAREN:
                return False  # not an invocation; plain identifier
            args = self._parse_macro_args(info, tok)
            if args is None:
                return True  # error already reported
            expansion = self._substitute(info, args, tok.location)
        else:
            expansion = [
                Token(t.kind, t.spelling, tok.location) for t in info.replacement
            ]
        expansion = self._rescan(expansion, {info.name})
        self._push_pending(expansion)
        return True

    def _peek_raw_or_pending(self) -> Token:
        if self._pending:
            return self._pending[0]
        tok = self._raw_lex()
        if tok.kind != TokenKind.EOF or len(self._levels) <= 1:
            self._level.unlex(tok)
        return tok

    def _next_raw_or_pending(self) -> Token:
        if self._pending:
            return self._pending.popleft()
        return self._raw_lex()

    def _parse_macro_args(
        self, info: MacroInfo, name_tok: Token
    ) -> list[list[Token]] | None:
        """Parse ``(arg, arg, ...)`` following a function-like macro name."""
        lparen = self._next_raw_or_pending()
        assert lparen.kind == TokenKind.L_PAREN
        args: list[list[Token]] = [[]]
        depth = 1
        while True:
            tok = self._next_raw_or_pending()
            if tok.kind == TokenKind.EOF:
                self.diags.report(
                    Severity.ERROR,
                    f"unterminated argument list for macro "
                    f"'{info.name}'",
                    name_tok.location,
                )
                return None
            if tok.kind == TokenKind.L_PAREN:
                depth += 1
            elif tok.kind == TokenKind.R_PAREN:
                depth -= 1
                if depth == 0:
                    break
            elif tok.kind == TokenKind.COMMA and depth == 1:
                # Split at every top-level comma; extra groups are
                # rejoined into __VA_ARGS__ during substitution.
                args.append([])
                continue
            args[-1].append(tok)
        nparams = len(info.params or [])
        if args == [[]] and nparams == 0:
            args = []
        if len(args) != nparams and not (
            info.is_variadic and len(args) >= nparams
        ):
            self.diags.report(
                Severity.ERROR,
                f"macro '{info.name}' expects {nparams} argument(s), "
                f"got {len(args)}",
                name_tok.location,
            )
            return None
        return args

    def _substitute(
        self,
        info: MacroInfo,
        args: list[list[Token]],
        loc: SourceLocation,
    ) -> list[Token]:
        """Parameter substitution incl. ``#`` and ``##``."""
        out: list[Token] = []
        replacement = info.replacement
        i = 0
        while i < len(replacement):
            tok = replacement[i]
            # '#' param -> stringify
            if (
                tok.kind == TokenKind.HASH
                and i + 1 < len(replacement)
                and info.param_index(replacement[i + 1].spelling) >= 0
            ):
                idx = info.param_index(replacement[i + 1].spelling)
                out.append(stringify_tokens(args[idx]))
                i += 2
                continue
            # token ## token -> paste
            if (
                i + 2 < len(replacement)
                and replacement[i + 1].kind == TokenKind.HASHHASH
            ):
                left = self._param_tokens(info, args, tok) or [
                    Token(tok.kind, tok.spelling, loc)
                ]
                rtok = replacement[i + 2]
                right = self._param_tokens(info, args, rtok) or [
                    Token(rtok.kind, rtok.spelling, loc)
                ]
                pasted = paste_tokens(
                    left[-1] if left else Token(TokenKind.UNKNOWN, ""),
                    right[0] if right else Token(TokenKind.UNKNOWN, ""),
                )
                if pasted is None:
                    self.diags.report(
                        Severity.ERROR,
                        "pasting formed an invalid token",
                        loc,
                    )
                    pasted = Token(TokenKind.UNKNOWN, "")
                out.extend(left[:-1])
                out.append(pasted)
                out.extend(right[1:])
                i += 3
                continue
            param = self._param_tokens(info, args, tok)
            if param is not None:
                out.extend(
                    Token(t.kind, t.spelling, loc, has_leading_space=t.has_leading_space)
                    for t in self._rescan(param, set())
                )
            else:
                out.append(Token(tok.kind, tok.spelling, loc,
                                 has_leading_space=tok.has_leading_space))
            i += 1
        return out

    def _param_tokens(
        self, info: MacroInfo, args: list[list[Token]], tok: Token
    ) -> list[Token] | None:
        if tok.kind != TokenKind.IDENTIFIER:
            return None
        idx = info.param_index(tok.spelling)
        if idx < 0:
            if info.is_variadic and tok.spelling == "__VA_ARGS__":
                varargs: list[Token] = []
                for j, arg in enumerate(args[len(info.params or []) :]):
                    if j:
                        varargs.append(Token(TokenKind.COMMA, ","))
                    varargs.extend(arg)
                return varargs
            return None
        return args[idx] if idx < len(args) else []

    def _rescan(
        self, tokens: list[Token], hidden: set[str]
    ) -> list[Token]:
        """Re-examine an expansion for further macro names (recursion-safe)."""
        out: list[Token] = []
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if (
                tok.kind == TokenKind.IDENTIFIER
                and tok.spelling in self.macros
                and tok.spelling not in hidden
            ):
                info = self.macros[tok.spelling]
                if not info.is_function_like:
                    inner = [
                        Token(t.kind, t.spelling, tok.location)
                        for t in info.replacement
                    ]
                    out.extend(
                        self._rescan(inner, hidden | {info.name})
                    )
                    i += 1
                    continue
                if (
                    i + 1 < len(tokens)
                    and tokens[i + 1].kind == TokenKind.L_PAREN
                ):
                    args, consumed = self._parse_args_from_list(
                        info, tokens, i + 1
                    )
                    if args is not None:
                        inner = self._substitute(info, args, tok.location)
                        out.extend(
                            self._rescan(inner, hidden | {info.name})
                        )
                        i = consumed
                        continue
            out.append(tok)
            i += 1
        return out

    def _parse_args_from_list(
        self, info: MacroInfo, tokens: list[Token], lparen_idx: int
    ) -> tuple[list[list[Token]] | None, int]:
        depth = 0
        args: list[list[Token]] = [[]]
        i = lparen_idx
        while i < len(tokens):
            tok = tokens[i]
            if tok.kind == TokenKind.L_PAREN:
                depth += 1
                if depth > 1:
                    args[-1].append(tok)
            elif tok.kind == TokenKind.R_PAREN:
                depth -= 1
                if depth == 0:
                    nparams = len(info.params or [])
                    if args == [[]] and nparams == 0:
                        args = []
                    if len(args) != nparams and not (
                        info.is_variadic and len(args) >= nparams
                    ):
                        return None, lparen_idx
                    return args, i + 1
                args[-1].append(tok)
            elif tok.kind == TokenKind.COMMA and depth == 1:
                args.append([])
            else:
                args[-1].append(tok)
            i += 1
        return None, lparen_idx

    def _push_pending(self, tokens: list[Token]) -> None:
        self._pending.extendleft(reversed(tokens))

    # ------------------------------------------------------------------
    # Directive handling
    # ------------------------------------------------------------------
    def _handle_directive(self) -> None:
        tokens = self._collect_directive_tokens()
        if not tokens:
            return  # null directive '#'
        head = tokens[0]
        name = head.spelling
        body = tokens[1:]
        handler = {
            "include": self._do_include,
            "define": self._do_define,
            "undef": self._do_undef,
            "if": self._do_if,
            "ifdef": self._do_ifdef,
            "ifndef": self._do_ifndef,
            "elif": self._do_elif,
            "else": self._do_else,
            "endif": self._do_endif,
            "pragma": self._do_pragma,
            "line": self._do_line,
            "error": self._do_error,
            "warning": self._do_warning,
        }.get(name)
        if handler is None:
            self.diags.report(
                Severity.ERROR,
                f"invalid preprocessing directive '#{name}'",
                head.location,
            )
            return
        handler(head, body)

    # --- #include ---------------------------------------------------
    def _do_include(self, head: Token, body: list[Token]) -> None:
        if len(self._levels) >= _MAX_INCLUDE_DEPTH:
            self.diags.report(
                Severity.FATAL,
                "#include nested too deeply",
                head.location,
            )
        angled = False
        filename: str | None = None
        if body and body[0].kind == TokenKind.STRING_LITERAL:
            filename = body[0].spelling[1:-1]
        elif body and body[0].kind == TokenKind.LESS:
            angled = True
            parts = []
            for tok in body[1:]:
                if tok.kind == TokenKind.GREATER:
                    break
                parts.append(tok.spelling)
            filename = "".join(parts)
        if not filename:
            self.diags.report(
                Severity.ERROR,
                "expected \"FILENAME\" or <FILENAME> after #include",
                head.location,
            )
            return
        including = self.sm.get_filename(head.location)
        entry = self.fm.resolve_include(filename, including, angled)
        if entry is None:
            self.diags.report(
                Severity.FATAL,
                f"'{filename}' file not found",
                head.location,
            )
            return
        buffer = self.fm.get_buffer(entry)
        fid = self.sm.create_file_id(buffer, head.location)
        self._levels.append(
            _IncludeLevel(Lexer(self.sm, fid, self.diags), entry.name)
        )

    # --- #define / #undef --------------------------------------------
    def _do_define(self, head: Token, body: list[Token]) -> None:
        if not body or body[0].kind != TokenKind.IDENTIFIER:
            self.diags.report(
                Severity.ERROR,
                "macro name missing or not an identifier",
                head.location,
            )
            return
        name_tok = body[0]
        rest = body[1:]
        params: list[str] | None = None
        is_variadic = False
        # Function-like iff '(' immediately follows the name (no space).
        if (
            rest
            and rest[0].kind == TokenKind.L_PAREN
            and not rest[0].has_leading_space
        ):
            params = []
            i = 1
            expecting_param = True
            while i < len(rest) and rest[i].kind != TokenKind.R_PAREN:
                tok = rest[i]
                if tok.kind == TokenKind.IDENTIFIER and expecting_param:
                    params.append(tok.spelling)
                    expecting_param = False
                elif tok.kind == TokenKind.ELLIPSIS and expecting_param:
                    is_variadic = True
                    expecting_param = False
                elif tok.kind == TokenKind.COMMA and not expecting_param:
                    expecting_param = True
                else:
                    self.diags.report(
                        Severity.ERROR,
                        "invalid token in macro parameter list",
                        tok.location,
                    )
                    return
                i += 1
            if i >= len(rest):
                self.diags.report(
                    Severity.ERROR,
                    "missing ')' in macro parameter list",
                    name_tok.location,
                )
                return
            rest = rest[i + 1 :]
        info = MacroInfo(
            name_tok.spelling, rest, params=params, is_variadic=is_variadic
        )
        existing = self.macros.get(info.name)
        if existing is not None and not existing.definition_equals(info):
            self.diags.report(
                Severity.WARNING,
                f"'{info.name}' macro redefined",
                name_tok.location,
            )
        self.macros[info.name] = info

    def _do_undef(self, head: Token, body: list[Token]) -> None:
        if not body or body[0].kind != TokenKind.IDENTIFIER:
            self.diags.report(
                Severity.ERROR,
                "macro name missing after #undef",
                head.location,
            )
            return
        self.macros.pop(body[0].spelling, None)

    # --- Conditionals --------------------------------------------------
    def _evaluate_condition(self, body: list[Token]) -> bool:
        # Resolve `defined` before expansion, as the standard requires.
        resolved: list[Token] = []
        i = 0
        while i < len(body):
            tok = body[i]
            if tok.is_identifier("defined"):
                j = i + 1
                name = None
                if j < len(body) and body[j].kind == TokenKind.L_PAREN:
                    if (
                        j + 2 < len(body)
                        and body[j + 2].kind == TokenKind.R_PAREN
                    ):
                        name = body[j + 1].spelling
                        i = j + 3
                elif j < len(body):
                    name = body[j].spelling
                    i = j + 1
                if name is None:
                    self.diags.report(
                        Severity.ERROR,
                        "macro name missing after 'defined'",
                        tok.location,
                    )
                    return False
                resolved.append(
                    Token(
                        TokenKind.NUMERIC_CONSTANT,
                        "1" if name in self.macros else "0",
                        tok.location,
                    )
                )
                continue
            resolved.append(tok)
            i += 1
        expanded = self._rescan(resolved, set())
        return (
            PPExpressionEvaluator(expanded, self.diags).evaluate() != 0
        )

    def _do_if(self, head: Token, body: list[Token]) -> None:
        taken = self._evaluate_condition(body)
        self._level.conditionals.append(
            _ConditionalState(taken, False, head.location)
        )
        if not taken:
            self._skip_to_next_branch()

    def _do_ifdef(self, head: Token, body: list[Token]) -> None:
        taken = bool(body) and body[0].spelling in self.macros
        self._level.conditionals.append(
            _ConditionalState(taken, False, head.location)
        )
        if not taken:
            self._skip_to_next_branch()

    def _do_ifndef(self, head: Token, body: list[Token]) -> None:
        taken = bool(body) and body[0].spelling not in self.macros
        self._level.conditionals.append(
            _ConditionalState(taken, False, head.location)
        )
        if not taken:
            self._skip_to_next_branch()

    def _do_elif(self, head: Token, body: list[Token]) -> None:
        if not self._level.conditionals:
            self.diags.report(
                Severity.ERROR, "#elif without #if", head.location
            )
            return
        state = self._level.conditionals[-1]
        if state.in_else:
            self.diags.report(
                Severity.ERROR, "#elif after #else", head.location
            )
        # Arriving here in normal lexing means the previous branch was taken;
        # skip to #endif.
        self._skip_to_endif()

    def _do_else(self, head: Token, body: list[Token]) -> None:
        if not self._level.conditionals:
            self.diags.report(
                Severity.ERROR, "#else without #if", head.location
            )
            return
        state = self._level.conditionals[-1]
        if state.in_else:
            self.diags.report(
                Severity.ERROR, "#else after #else", head.location
            )
        state.in_else = True
        # The previous branch was taken -> skip the else branch.
        self._skip_to_endif()

    def _do_endif(self, head: Token, body: list[Token]) -> None:
        if not self._level.conditionals:
            self.diags.report(
                Severity.ERROR, "#endif without #if", head.location
            )
            return
        self._level.conditionals.pop()

    def _skip_tokens_until_branch(
        self, stop_at_branches: bool
    ) -> None:
        """Skip raw tokens tracking #if nesting.

        When *stop_at_branches* is true, stops at #elif/#else at depth 0
        (evaluating #elif conditions); otherwise only #endif terminates.
        """
        depth = 0
        while True:
            tok = self._level.lex()
            if tok.kind == TokenKind.EOF:
                self._level.unlex(tok)
                self.diags.report(
                    Severity.ERROR,
                    "unterminated conditional directive",
                    self._level.conditionals[-1].location
                    if self._level.conditionals
                    else None,
                )
                if self._level.conditionals:
                    self._level.conditionals.pop()
                return
            if not (tok.kind == TokenKind.HASH and tok.at_line_start):
                continue
            dtoks = self._collect_directive_tokens()
            if not dtoks:
                continue
            name = dtoks[0].spelling
            if name in ("if", "ifdef", "ifndef"):
                depth += 1
            elif name == "endif":
                if depth == 0:
                    self._level.conditionals.pop()
                    return
                depth -= 1
            elif depth == 0 and stop_at_branches:
                if name == "elif":
                    state = self._level.conditionals[-1]
                    if not state.was_taken and self._evaluate_condition(
                        dtoks[1:]
                    ):
                        state.was_taken = True
                        return
                elif name == "else":
                    state = self._level.conditionals[-1]
                    state.in_else = True
                    if not state.was_taken:
                        state.was_taken = True
                        return

    def _skip_to_next_branch(self) -> None:
        self._skip_tokens_until_branch(stop_at_branches=True)

    def _skip_to_endif(self) -> None:
        self._skip_tokens_until_branch(stop_at_branches=False)

    # --- #pragma --------------------------------------------------------
    def _do_pragma(self, head: Token, body: list[Token]) -> None:
        if not body:
            return
        first = body[0]
        if first.is_identifier("omp"):
            if not self.options.openmp:
                # Without -fopenmp clang ignores omp pragmas (with a
                # warning when -Wsource-uses-openmp).
                self.diags.report(
                    Severity.WARNING,
                    "unexpected '#pragma omp ...' in program; "
                    "use -fopenmp to enable OpenMP support",
                    head.location,
                )
                return
            directive_tokens = body[1:]
            if (
                self.options.strip_omp_transforms
                and directive_tokens
                and directive_tokens[0].spelling
                in TRANSFORM_DIRECTIVES
            ):
                # the whole directive (clauses included) vanishes; any
                # following directive then associates directly with the
                # loop nest underneath.
                return
            annot = Token(
                TokenKind.ANNOT_PRAGMA_OPENMP,
                "#pragma omp",
                head.location,
                annotation_value=directive_tokens,
            )
            end = Token(
                TokenKind.ANNOT_PRAGMA_OPENMP_END,
                "",
                (directive_tokens[-1].end_location()
                 if directive_tokens
                 else head.location),
            )
            self._push_pending([annot, end])
            return
        if (
            first.is_identifier("clang")
            and len(body) >= 2
            and body[1].is_identifier("loop")
        ):
            annot = Token(
                TokenKind.ANNOT_PRAGMA_LOOPHINT,
                "#pragma clang loop",
                head.location,
                annotation_value=body[2:],
            )
            self._push_pending([annot])
            return
        if first.is_identifier("once"):
            return  # we have no re-include tracking; benign to ignore
        self.diags.report(
            Severity.WARNING,
            f"unknown pragma '{first.spelling}' ignored",
            head.location,
        )

    # --- misc ------------------------------------------------------------
    def _do_line(self, head: Token, body: list[Token]) -> None:
        if not body or body[0].kind != TokenKind.NUMERIC_CONSTANT:
            self.diags.report(
                Severity.ERROR,
                "#line directive requires a positive integer argument",
                head.location,
            )
            return
        line = int(body[0].spelling)
        filename = self.sm.get_filename(head.location)
        if len(body) > 1 and body[1].kind == TokenKind.STRING_LITERAL:
            filename = body[1].spelling[1:-1]
        # The override applies from the *next* line on.
        next_loc = (
            body[-1].end_location()
        )
        self.sm.add_line_override(next_loc, filename, line - 1)

    def _do_error(self, head: Token, body: list[Token]) -> None:
        message = " ".join(t.spelling for t in body)
        self.diags.report(Severity.ERROR, message or "#error", head.location)

    def _do_warning(self, head: Token, body: list[Token]) -> None:
        message = " ".join(t.spelling for t in body)
        self.diags.report(
            Severity.WARNING, message or "#warning", head.location
        )
