"""Macro definitions and substitution (clang's ``MacroInfo``)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lex.tokens import Token, TokenKind


@dataclass
class MacroInfo:
    """One ``#define``.

    ``params is None`` distinguishes an object-like macro from a
    function-like macro with zero parameters (``#define F()``), exactly as
    in clang.
    """

    name: str
    replacement: list[Token] = field(default_factory=list)
    params: list[str] | None = None
    is_variadic: bool = False
    is_builtin: bool = False

    @property
    def is_function_like(self) -> bool:
        return self.params is not None

    def param_index(self, name: str) -> int:
        if self.params is None:
            return -1
        try:
            return self.params.index(name)
        except ValueError:
            return -1

    def definition_equals(self, other: "MacroInfo") -> bool:
        """C11 6.10.3p2 compatible-redefinition check (token-wise)."""
        if (self.params is None) != (other.params is None):
            return False
        if self.params is not None and self.params != other.params:
            return False
        if len(self.replacement) != len(other.replacement):
            return False
        return all(
            a.kind == b.kind and a.spelling == b.spelling
            for a, b in zip(self.replacement, other.replacement)
        )


def stringify_tokens(tokens: list[Token]) -> Token:
    """Implement the ``#`` operator: produce a string-literal token."""
    parts: list[str] = []
    for i, tok in enumerate(tokens):
        if i > 0 and tok.has_leading_space:
            parts.append(" ")
        spelling = tok.spelling
        if tok.kind in (TokenKind.STRING_LITERAL, TokenKind.CHAR_CONSTANT):
            spelling = spelling.replace("\\", "\\\\").replace('"', '\\"')
        parts.append(spelling)
    return Token(TokenKind.STRING_LITERAL, '"' + "".join(parts) + '"')


def paste_tokens(left: Token, right: Token) -> Token | None:
    """Implement the ``##`` operator by re-lexing the concatenation.

    Returns ``None`` when the concatenation does not form a single valid
    token (which is UB in C; the caller reports a diagnostic).
    """
    from repro.lex.lexer import tokenize_string

    combined = left.spelling + right.spelling
    if not combined:
        return Token(TokenKind.UNKNOWN, "")
    toks = tokenize_string(combined)
    # lex_all appends EOF; a valid paste yields exactly [token, EOF].
    if len(toks) != 2 or toks[0].kind == TokenKind.UNKNOWN:
        return None
    result = toks[0]
    return Token(result.kind, result.spelling, left.location)
