"""Preprocessor layer (paper Fig. 1).

Implements the subset of the C preprocessor the reproduction needs:

* ``#include`` (quoted and angled, via :class:`repro.sourcemgr.FileManager`),
* object-like and function-like ``#define`` / ``#undef`` with ``#``
  stringification and ``##`` pasting,
* conditional compilation ``#if/#ifdef/#ifndef/#elif/#else/#endif`` with a
  full constant-expression evaluator including ``defined(...)``,
* ``#line``, ``#error``, ``#warning``,
* ``#pragma omp ...`` — turned into the annotation-token sandwich
  ``ANNOT_PRAGMA_OPENMP <body tokens> ANNOT_PRAGMA_OPENMP_END`` exactly like
  clang, so that the Parser can treat an OpenMP directive as a statement
  introducer, and
* ``#pragma clang loop ...`` — turned into ``ANNOT_PRAGMA_LOOPHINT``; the
  paper's shadow-AST unroll implementation reuses this ``LoopHintAttr``
  mechanism for deferring unrolling to the mid-end.

The OpenMP `metadirective`-style per-target selection the paper motivates
(choosing different transformations per hardware) is exercised in the
examples via plain ``#if`` + ``-D`` definitions.
"""

from repro.preprocessor.macro import MacroInfo
from repro.preprocessor.preprocessor import Preprocessor, PreprocessorOptions

__all__ = ["MacroInfo", "Preprocessor", "PreprocessorOptions"]
