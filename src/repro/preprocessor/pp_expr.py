"""``#if`` constant-expression evaluation.

A precedence-climbing evaluator over preprocessor tokens.  Per C semantics:

* arithmetic is performed in (here unbounded, then wrapped) ``intmax_t``,
* ``defined NAME`` / ``defined(NAME)`` must be resolved *before* macro
  expansion — the caller is responsible for that ordering,
* any remaining identifier evaluates to 0,
* division by zero is a diagnosable error.
"""

from __future__ import annotations

from repro.diagnostics import DiagnosticsEngine, Severity
from repro.lex.tokens import Token, TokenKind

_UINT64_MASK = (1 << 64) - 1


def _wrap64(value: int) -> int:
    """Wrap to signed 64-bit (intmax_t in our model)."""
    value &= _UINT64_MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class _EvalError(Exception):
    pass


_BINOP_PRECEDENCE: dict[TokenKind, int] = {
    TokenKind.PIPEPIPE: 1,
    TokenKind.AMPAMP: 2,
    TokenKind.PIPE: 3,
    TokenKind.CARET: 4,
    TokenKind.AMP: 5,
    TokenKind.EQUALEQUAL: 6,
    TokenKind.EXCLAIMEQUAL: 6,
    TokenKind.LESS: 7,
    TokenKind.LESSEQUAL: 7,
    TokenKind.GREATER: 7,
    TokenKind.GREATEREQUAL: 7,
    TokenKind.LESSLESS: 8,
    TokenKind.GREATERGREATER: 8,
    TokenKind.PLUS: 9,
    TokenKind.MINUS: 9,
    TokenKind.STAR: 10,
    TokenKind.SLASH: 10,
    TokenKind.PERCENT: 10,
}


def parse_integer_literal(spelling: str) -> int | None:
    """Parse a C integer literal spelling (with suffixes); None on failure."""
    text = spelling.rstrip("uUlL")
    if not text:
        return None
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        if text.lower().startswith("0b"):
            return int(text, 2)
        if text.startswith("0") and len(text) > 1:
            return int(text, 8)
        return int(text, 10)
    except ValueError:
        return None


class PPExpressionEvaluator:
    """Evaluates a fully macro-expanded token list to an integer."""

    def __init__(
        self, tokens: list[Token], diags: DiagnosticsEngine
    ) -> None:
        self.tokens = [t for t in tokens if t.kind != TokenKind.EOF]
        self.pos = 0
        self.diags = diags
        #: >0 while evaluating an operand that short-circuiting made
        #: dead (`0 && X`, `1 || X`): still parsed, but division by zero
        #: there is not an error (C11 6.10.1).
        self._dead = 0

    def _peek(self) -> Token:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return Token(TokenKind.EOD, "")

    def _next(self) -> Token:
        tok = self._peek()
        self.pos += 1
        return tok

    def evaluate(self) -> int:
        """Evaluate; on malformed input report a diagnostic and return 0."""
        if not self.tokens:
            self.diags.report(
                Severity.ERROR, "expected value in #if expression"
            )
            return 0
        try:
            value = self._parse_expression(0)
            if self.pos < len(self.tokens):
                raise _EvalError(
                    f"unexpected token {self._peek().spelling!r} "
                    "in #if expression"
                )
            return value
        except _EvalError as err:
            self.diags.report(
                Severity.ERROR, str(err), self.tokens[0].location
            )
            return 0

    # Precedence climbing ------------------------------------------------
    def _parse_expression(self, min_prec: int) -> int:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            # Conditional operator binds loosest.
            if tok.kind == TokenKind.QUESTION and min_prec == 0:
                self._next()
                then_val = self._parse_expression(0)
                if self._next().kind != TokenKind.COLON:
                    raise _EvalError("expected ':' in #if expression")
                else_val = self._parse_expression(0)
                lhs = then_val if lhs else else_val
                continue
            prec = _BINOP_PRECEDENCE.get(tok.kind)
            if prec is None or prec < min_prec:
                return lhs
            self._next()
            if tok.kind in (TokenKind.AMPAMP, TokenKind.PIPEPIPE):
                # Short-circuit: parse the rhs either way (syntax must be
                # checked), but mark it dead when the lhs decides.
                dead = (
                    tok.kind == TokenKind.AMPAMP and not lhs
                ) or (tok.kind == TokenKind.PIPEPIPE and bool(lhs))
                if dead:
                    self._dead += 1
                try:
                    rhs = self._parse_expression(prec + 1)
                finally:
                    if dead:
                        self._dead -= 1
            else:
                rhs = self._parse_expression(prec + 1)
            lhs = self._apply(tok.kind, lhs, rhs)

    def _apply(self, kind: TokenKind, lhs: int, rhs: int) -> int:
        if kind == TokenKind.PIPEPIPE:
            return 1 if (lhs or rhs) else 0
        if kind == TokenKind.AMPAMP:
            return 1 if (lhs and rhs) else 0
        if kind == TokenKind.PIPE:
            return _wrap64(lhs | rhs)
        if kind == TokenKind.CARET:
            return _wrap64(lhs ^ rhs)
        if kind == TokenKind.AMP:
            return _wrap64(lhs & rhs)
        if kind == TokenKind.EQUALEQUAL:
            return 1 if lhs == rhs else 0
        if kind == TokenKind.EXCLAIMEQUAL:
            return 1 if lhs != rhs else 0
        if kind == TokenKind.LESS:
            return 1 if lhs < rhs else 0
        if kind == TokenKind.LESSEQUAL:
            return 1 if lhs <= rhs else 0
        if kind == TokenKind.GREATER:
            return 1 if lhs > rhs else 0
        if kind == TokenKind.GREATEREQUAL:
            return 1 if lhs >= rhs else 0
        if kind == TokenKind.LESSLESS:
            return _wrap64(lhs << (rhs & 63))
        if kind == TokenKind.GREATERGREATER:
            return _wrap64(lhs >> (rhs & 63))
        if kind == TokenKind.PLUS:
            return _wrap64(lhs + rhs)
        if kind == TokenKind.MINUS:
            return _wrap64(lhs - rhs)
        if kind == TokenKind.STAR:
            return _wrap64(lhs * rhs)
        if kind in (TokenKind.SLASH, TokenKind.PERCENT):
            if rhs == 0:
                if self._dead:
                    return 0  # short-circuited operand: never evaluated
                raise _EvalError("division by zero in #if expression")
            quotient = abs(lhs) // abs(rhs)
            if (lhs < 0) != (rhs < 0):
                quotient = -quotient
            if kind == TokenKind.SLASH:
                return _wrap64(quotient)
            return _wrap64(lhs - quotient * rhs)
        raise _EvalError(f"unsupported operator in #if expression")

    def _parse_unary(self) -> int:
        tok = self._next()
        if tok.kind == TokenKind.MINUS:
            return _wrap64(-self._parse_unary())
        if tok.kind == TokenKind.PLUS:
            return self._parse_unary()
        if tok.kind == TokenKind.EXCLAIM:
            return 0 if self._parse_unary() else 1
        if tok.kind == TokenKind.TILDE:
            return _wrap64(~self._parse_unary())
        if tok.kind == TokenKind.L_PAREN:
            value = self._parse_expression(0)
            if self._next().kind != TokenKind.R_PAREN:
                raise _EvalError("expected ')' in #if expression")
            return value
        if tok.kind == TokenKind.NUMERIC_CONSTANT:
            value = parse_integer_literal(tok.spelling)
            if value is None:
                raise _EvalError(
                    f"invalid integer constant {tok.spelling!r} in "
                    "#if expression"
                )
            return _wrap64(value)
        if tok.kind == TokenKind.CHAR_CONSTANT:
            body = tok.spelling[1:-1]
            if body.startswith("\\"):
                escapes = {
                    "n": 10, "t": 9, "r": 13, "0": 0,
                    "\\": 92, "'": 39, '"': 34,
                }
                return escapes.get(body[1:2], 0)
            return ord(body[0]) if body else 0
        if tok.kind == TokenKind.IDENTIFIER or tok.kind.is_keyword():
            if tok.spelling in ("true",):
                return 1
            # C: any identifier surviving macro expansion evaluates to 0.
            return 0
        raise _EvalError(
            f"unexpected token {tok.spelling!r} in #if expression"
        )
