"""``miniclang-cache`` — operator CLI for the on-disk compilation
cache (the moral equivalent of ``ccache -s`` / ``ccache -c``).

Three subcommands, all safe to run against a live cache directory
because every mutation the disk tier makes is an atomic rename:

``verify [--repair]``
    Recompute the SHA-256 envelope of every object and alias.  Reports
    corrupt entries; with ``--repair`` they are deleted (a deleted
    entry is just a future miss).  Exits 1 when corruption remains on
    disk, 0 otherwise.

``gc``
    Remove stale temp files and orphan aliases, then enforce the byte
    budget (oldest-mtime-first, like ``ccache -c``).

``doctor``
    Environment triage: directory present/writable, format stamp,
    free space, entry counts, plus a full verify pass.  Exits 1 on
    any finding that needs operator attention.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from typing import Optional

from repro.cache.disk import DiskTier, _FORMAT_STAMP

EXIT_OK = 0
EXIT_PROBLEMS = 1
EXIT_USER_ERROR = 2

DEFAULT_DIR = "miniclang-cache"


def _tier(directory: str, max_bytes: Optional[int]) -> DiskTier:
    kwargs = {}
    if max_bytes is not None:
        kwargs["max_bytes"] = max_bytes
    return DiskTier(directory, **kwargs)


def _emit(report: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return
    for key in sorted(report):
        value = report[key]
        if isinstance(value, list):
            for item in value:
                print(f"  {key}: {item}")
        else:
            print(f"{key:>16}: {value}")


def _cmd_verify(args: argparse.Namespace) -> int:
    tier = _tier(args.directory, args.max_bytes)
    report = tier.verify(repair=args.repair)
    _emit(report, args.json)
    remaining = report["corrupt"] - (
        report["removed"] if args.repair else 0
    )
    if report["corrupt"] and not args.repair:
        print(
            f"miniclang-cache: {report['corrupt']} corrupt entr"
            f"{'y' if report['corrupt'] == 1 else 'ies'}; rerun with "
            "--repair to delete",
            file=sys.stderr,
        )
    return EXIT_PROBLEMS if remaining > 0 else EXIT_OK


def _cmd_gc(args: argparse.Namespace) -> int:
    tier = _tier(args.directory, args.max_bytes)
    report = tier.gc()
    _emit(report, args.json)
    return EXIT_OK


def _probe_writable(directory: str) -> Optional[str]:
    """None when we can create+rename a file in *directory*, else the
    error text.  Mirrors what a cache put actually does."""
    try:
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-probe-")
        os.close(fd)
        dest = tmp + ".probed"
        os.replace(tmp, dest)
        os.unlink(dest)
    except OSError as err:
        return str(err)
    return None


def _cmd_doctor(args: argparse.Namespace) -> int:
    directory = args.directory
    problems: list[str] = []
    report: dict = {"directory": directory}

    if not os.path.isdir(directory):
        report["exists"] = False
        _emit(report, args.json)
        print(
            f"miniclang-cache: {directory}: no such cache directory "
            "(a fresh one is created on first -fcache compile)",
            file=sys.stderr,
        )
        return EXIT_PROBLEMS
    report["exists"] = True

    stamp_path = os.path.join(directory, "format")
    try:
        with open(stamp_path, "r", encoding="utf-8") as fh:
            stamp = fh.read()
    except OSError:
        stamp = ""
    report["format_ok"] = stamp == _FORMAT_STAMP
    if not report["format_ok"]:
        problems.append(
            "format stamp missing or foreign (entries from another "
            "cache version are ignored, not corrupt)"
        )

    write_error = _probe_writable(directory)
    report["writable"] = write_error is None
    if write_error is not None:
        problems.append(f"cache directory not writable: {write_error}")

    try:
        usage = shutil.disk_usage(directory)
        report["free_bytes"] = usage.free
        if usage.free < 64 * 1024 * 1024:
            problems.append(
                f"only {usage.free} bytes free on the cache volume"
            )
    except OSError:
        report["free_bytes"] = None

    tier = _tier(directory, args.max_bytes)
    verify = tier.verify(repair=False)
    report["objects"] = verify["objects"]
    report["aliases"] = verify["aliases"]
    report["corrupt"] = verify["corrupt"]
    report["tmp"] = verify["tmp"]
    report["bytes"] = tier.bytes
    if verify["corrupt"]:
        problems.append(
            f"{verify['corrupt']} corrupt entries (run "
            "`miniclang-cache verify --repair`)"
        )
    if verify["tmp"]:
        problems.append(
            f"{verify['tmp']} stale temp files (run "
            "`miniclang-cache gc`)"
        )

    report["problems"] = problems
    _emit(report, args.json)
    if problems:
        for problem in problems:
            print(f"miniclang-cache: doctor: {problem}", file=sys.stderr)
        return EXIT_PROBLEMS
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="miniclang-cache",
        description=(
            "inspect and maintain a miniclang on-disk compilation "
            "cache"
        ),
    )
    parser.add_argument(
        "-d",
        "--directory",
        default=DEFAULT_DIR,
        help=f"cache directory (default: {DEFAULT_DIR})",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte budget used by gc eviction (default: tier default)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser(
        "verify", help="recompute every entry checksum"
    )
    p_verify.add_argument(
        "--repair",
        action="store_true",
        help="delete corrupt entries and stale temp files",
    )
    p_verify.set_defaults(func=_cmd_verify)

    p_gc = sub.add_parser(
        "gc", help="drop temp files, orphan aliases; enforce budget"
    )
    p_gc.set_defaults(func=_cmd_gc)

    p_doctor = sub.add_parser(
        "doctor", help="triage the cache directory end to end"
    )
    p_doctor.set_defaults(func=_cmd_doctor)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except OSError as err:
        print(f"miniclang-cache: {err}", file=sys.stderr)
        return EXIT_USER_ERROR


if __name__ == "__main__":
    raise SystemExit(main())
