"""Driver exit codes and the shared batch-aggregation policy.

Both drivers (``miniclang`` multi-input batches and ``miniclang-serve``
request batches) reduce many per-input outcomes to one process exit
code.  A plain ``max()`` gets this wrong: an internal compiler error
(70) must dominate a timeout (124) even though 70 < 124 numerically —
an ICE is the most severe diagnosis a batch can produce.  The policy
lives here once, as an explicit severity ranking.
"""

from __future__ import annotations

#: success
EXIT_OK = 0
#: diagnosable user errors (bad source, traps, guest guardrails)
EXIT_USER_ERROR = 1
#: internal compiler error (BSD sysexits EX_SOFTWARE)
EXIT_ICE = 70
#: service temporarily unable to serve (BSD sysexits EX_TEMPFAIL):
#: load shed / admission queue over capacity
EXIT_UNAVAILABLE = 75
#: wall-clock timeout / fuel exhaustion (coreutils timeout(1))
EXIT_TIMEOUT = 124

#: severity ranking for batch aggregation — higher loses to nothing
#: below it.  Unknown nonzero codes (guest main() return values) rank
#: with user errors.
_SEVERITY = {
    EXIT_OK: 0,
    EXIT_USER_ERROR: 1,
    EXIT_UNAVAILABLE: 2,
    EXIT_TIMEOUT: 3,
    EXIT_ICE: 4,
}


def _severity(code: int) -> int:
    return _SEVERITY.get(code, 1)


def worst_exit_code(*codes: int) -> int:
    """Reduce exit codes to the most severe one ("worst code wins").

    Severity order: 0 < 1/other-nonzero < 75 < 124 < 70.  On severity
    ties the first code is kept, so a batch of distinct guest exit
    codes reports the earliest failing input.
    """
    worst = EXIT_OK
    for code in codes:
        if _severity(code) > _severity(worst):
            worst = code
    return worst
