"""``miniclang`` — clang-flavoured CLI for the reproduction.

Supported flags (mirroring the clang workflow the paper's listings use)::

    miniclang source.c                 # compile, print IR
    miniclang -ast-dump source.c       # clang -Xclang -ast-dump
    miniclang -ast-dump-shadow ...     # dump including shadow AST
    miniclang -fsyntax-only source.c
    miniclang -fopenmp ...             # (default on)
    miniclang -fno-openmp ...
    miniclang -fopenmp-enable-irbuilder ...   # paper's §3 path
    miniclang -O ...                   # run the mid-end pipeline
    miniclang --run [--entry main] ... # compile and execute
    miniclang -DNAME[=V] -Ipath ...
    miniclang --num-threads N --run ...

Observability flags (paper-adjacent tooling; see README "Observability")::

    miniclang -ftime-trace[=FILE] ...  # Chrome trace of compile+run
    miniclang -print-stats ...         # LLVM -stats style counter dump
    miniclang -fcache[=DIR] ...        # content-addressed compile cache
    miniclang -fno-cache ...           # (default)
    miniclang -fcache-max-entries=N -fcache-max-bytes=N ...
    miniclang -print-cache-stats ...   # cache.* counters + tier summary
    miniclang -Rpass=REGEX ...         # optimization remarks (passed)
    miniclang -Rpass-missed=REGEX ...
    miniclang -Rpass-analysis=REGEX ...
    miniclang -fprofile-report --run . # per-thread/per-loop exec profile

Pass-pipeline introspection (README "Debugging the pass pipeline")::

    miniclang -print-pipeline-passes   # configured pass order, one/line
    miniclang -print-before=PASS ...   # IR dump before PASS executions
    miniclang -print-after=PASS ...
    miniclang -print-before-all ...
    miniclang -print-after-all ...
    miniclang -print-changed ...       # unified diff per changing pass
    miniclang -verify-each ...         # verify IR after every pass
    miniclang -opt-bisect-limit=N ...  # run only executions 1..N
    miniclang -debug-counter=NAME=SKIP[,COUNT] ...  # gate sites
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.crash_recovery import (
    InternalCompilerError,
    crash_recovery_enabled,
    set_crash_recovery_enabled,
)
from repro.driver.exitcodes import (
    EXIT_ICE,
    EXIT_OK,
    EXIT_TIMEOUT,
    EXIT_USER_ERROR,
    worst_exit_code,
)
from repro.instrument import (
    DEBUG_COUNTERS,
    FAULTS,
    STATS,
    PassInstrumentation,
    PassVerificationError,
    disable_time_trace,
    enable_time_trace,
)
from repro.interp import (
    DeadlockError,
    ExecutionTimeout,
    InterpreterError,
    MemoryError_,
    Trap,
)
from repro.pipeline import CompilationError, compile_source, run_source


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="miniclang",
        description=(
            "MiniC compiler reproducing Clang's OpenMP 5.1 loop "
            "transformation implementation (tile/unroll via shadow AST "
            "or OMPCanonicalLoop + OpenMPIRBuilder)"
        ),
    )
    parser.add_argument(
        "inputs",
        nargs="*",
        default=[],
        metavar="input",
        help="C source file(s) ('-' for stdin); with several inputs the "
        "driver compiles each in turn and keeps going past failures "
        "(exit code is the worst outcome); optional with "
        "-print-pipeline-passes/-print-fault-sites",
    )
    parser.add_argument(
        "-ast-dump",
        action="store_true",
        dest="ast_dump",
        help="print the AST (clang -Xclang -ast-dump style)",
    )
    parser.add_argument(
        "-ast-dump-shadow",
        action="store_true",
        dest="ast_dump_shadow",
        help="print the AST including shadow (transformed) subtrees",
    )
    parser.add_argument(
        "-fsyntax-only",
        action="store_true",
        dest="syntax_only",
        help="stop after semantic analysis",
    )
    parser.add_argument(
        "-fopenmp",
        action="store_true",
        default=True,
        dest="openmp",
        help="enable OpenMP (default)",
    )
    parser.add_argument(
        "-fno-openmp",
        action="store_false",
        dest="openmp",
        help="disable OpenMP pragma handling",
    )
    parser.add_argument(
        "-fopenmp-enable-irbuilder",
        action="store_true",
        dest="enable_irbuilder",
        help="use the OMPCanonicalLoop/OpenMPIRBuilder representation "
        "(paper section 3)",
    )
    parser.add_argument(
        "-O",
        "-O1",
        "-O2",
        action="store_true",
        dest="optimize",
        help="run the mid-end pass pipeline (incl. LoopUnroll); "
        "-O1/-O2 are accepted aliases",
    )
    parser.add_argument(
        "-O0",
        action="store_false",
        dest="optimize",
        help="disable the mid-end pass pipeline (default)",
    )
    parser.add_argument(
        "-emit-llvm",
        action="store_true",
        default=True,
        dest="emit_llvm",
        help="print textual IR (default action)",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="interpret the compiled module",
    )
    parser.add_argument("--entry", default="main")
    parser.add_argument(
        "-fexec",
        choices=("interp", "closures"),
        default="interp",
        dest="exec_engine",
        metavar="ENGINE",
        help="with --run: execution engine — 'interp' (reference "
        "tree-walking interpreter, default) or 'closures' "
        "(closure-compiled engine, identical observable semantics)",
    )
    parser.add_argument(
        "--num-threads",
        type=int,
        default=4,
        help="simulated OpenMP team size for --run",
    )
    parser.add_argument(
        "-D",
        action="append",
        default=[],
        dest="defines",
        metavar="NAME[=VALUE]",
    )
    parser.add_argument(
        "-I",
        action="append",
        default=[],
        dest="include_paths",
        metavar="DIR",
    )
    parser.add_argument(
        "--function",
        default=None,
        help="restrict -ast-dump to one function",
    )
    parser.add_argument("-o", dest="output", default=None)
    parser.add_argument(
        "-print-stats",
        action="store_true",
        dest="print_stats",
        help="dump internal statistics counters (LLVM -stats style)",
    )
    parser.add_argument(
        "--stats-json",
        default=None,
        dest="stats_json",
        metavar="FILE",
        help="write this invocation's statistics deltas as sorted JSON "
        "('-' for stdout)",
    )
    parser.add_argument(
        "-print-cache-stats",
        action="store_true",
        dest="print_cache_stats",
        help="dump the cache.* counters and cache tier summary "
        "(use with -fcache)",
    )
    parser.add_argument(
        "-fcache-max-entries",
        type=int,
        default=1024,
        dest="cache_max_entries",
        metavar="N",
        help="in-memory cache tier capacity in entries (default 1024)",
    )
    parser.add_argument(
        "-fcache-max-bytes",
        type=int,
        default=256 * 1024 * 1024,
        dest="cache_max_bytes",
        metavar="N",
        help="on-disk cache tier budget in bytes (default 256 MiB); "
        "oldest entries are evicted past it",
    )
    parser.add_argument(
        "-Rpass",
        dest="rpass",
        default=None,
        metavar="REGEX",
        help="report transformations applied by passes matching REGEX",
    )
    parser.add_argument(
        "-Rpass-missed",
        dest="rpass_missed",
        default=None,
        metavar="REGEX",
        help="report transformations rejected by passes matching REGEX",
    )
    parser.add_argument(
        "-Rpass-analysis",
        dest="rpass_analysis",
        default=None,
        metavar="REGEX",
        help="report pass analysis remarks matching REGEX",
    )
    parser.add_argument(
        "-fprofile-report",
        action="store_true",
        dest="profile_report",
        help="with --run: print the dynamic execution profile",
    )
    parser.add_argument(
        "-print-pipeline-passes",
        action="store_true",
        dest="print_pipeline_passes",
        help="print the configured pass order, one per line, and exit",
    )
    parser.add_argument(
        "-print-before",
        action="append",
        default=[],
        dest="print_before",
        metavar="PASS",
        help="dump IR to stderr before executions of PASS",
    )
    parser.add_argument(
        "-print-after",
        action="append",
        default=[],
        dest="print_after",
        metavar="PASS",
        help="dump IR to stderr after executions of PASS",
    )
    parser.add_argument(
        "-print-before-all",
        action="store_true",
        dest="print_before_all",
        help="dump IR before every pass execution",
    )
    parser.add_argument(
        "-print-after-all",
        action="store_true",
        dest="print_after_all",
        help="dump IR after every pass execution",
    )
    parser.add_argument(
        "-print-changed",
        action="store_true",
        dest="print_changed",
        help="print a unified IR diff after each pass execution that "
        "changed the function (quiet for no-change passes)",
    )
    parser.add_argument(
        "-verify-each",
        action="store_true",
        dest="verify_each",
        help="verify the module after every pass execution; on failure "
        "report the offending pass and write before/after IR to the "
        "crash-reproducer directory",
    )
    parser.add_argument(
        "-opt-bisect-limit",
        type=int,
        default=None,
        dest="opt_bisect_limit",
        metavar="N",
        help="run only the first N pass executions (-1: run all, but "
        "log 'BISECT:' lines for every execution)",
    )
    parser.add_argument(
        "-debug-counter",
        action="append",
        default=[],
        dest="debug_counters",
        metavar="NAME=SKIP[,COUNT]",
        help="suppress the first SKIP occurrences of a counted "
        "transformation site, execute the next COUNT (default: all), "
        "then suppress the rest (e.g. unroll-transform, "
        "mem2reg-promote, simplifycfg-transform)",
    )
    parser.add_argument(
        "-crash-reproducer-dir",
        default=os.environ.get(
            "MINICLANG_CRASH_DIR", "miniclang-crashes"
        ),
        dest="crash_reproducer_dir",
        metavar="DIR",
        help="where internal-compiler-error reproducers (source + "
        "invocation + traceback) and -verify-each before/after IR are "
        "written (default: $MINICLANG_CRASH_DIR or miniclang-crashes)",
    )
    parser.add_argument(
        "-ferror-limit",
        type=int,
        default=0,
        dest="error_limit",
        metavar="N",
        help="stop compilation after N error diagnostics "
        "(0 = unlimited, the default)",
    )
    parser.add_argument(
        "-finject-fault",
        action="append",
        default=[],
        dest="inject_faults",
        metavar="SITE[:N]",
        help="deterministically raise an internal fault at the N-th "
        "(default first) hit of the named pipeline site; see "
        "-print-fault-sites for the site list",
    )
    parser.add_argument(
        "-print-fault-sites",
        action="store_true",
        dest="print_fault_sites",
        help="list the registered -finject-fault sites and exit",
    )
    parser.add_argument(
        "-fno-crash-recovery",
        action="store_false",
        dest="crash_recovery",
        default=True,
        help="disable crash recovery scopes: internal faults escape as "
        "raw Python tracebacks (compiler-developer mode)",
    )
    parser.add_argument(
        "--strip-omp-transforms",
        action="store_true",
        dest="strip_omp_transforms",
        help="discard '#pragma omp unroll/tile/reverse/interchange/"
        "fuse' directives before parsing (worksharing directives are "
        "kept) — the differential-testing reference configuration: by "
        "the paper's semantics-preservation claim the stripped program "
        "must behave identically",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        dest="timeout",
        metavar="SECONDS",
        help="with --run: wall-clock limit for guest execution "
        f"(exit code {EXIT_TIMEOUT} with a scheduler snapshot)",
    )
    parser.add_argument(
        "--fuel",
        type=int,
        default=None,
        dest="fuel",
        metavar="N",
        help="with --run: maximum retired guest instructions "
        f"(exit code {EXIT_TIMEOUT} with a scheduler snapshot)",
    )
    parser.add_argument(
        "--max-memory",
        type=int,
        default=None,
        dest="max_memory",
        metavar="BYTES",
        help="with --run: guest memory ceiling",
    )
    parser.add_argument(
        "--max-recursion",
        type=int,
        default=256,
        dest="max_recursion",
        metavar="FRAMES",
        help="with --run: guest call-depth limit (default 256)",
    )
    return parser


def _build_instrumentation(args) -> PassInstrumentation | None:
    """A PassInstrumentation when any introspection flag is active."""
    instrument = PassInstrumentation(
        print_before=args.print_before,
        print_after=args.print_after,
        print_before_all=args.print_before_all,
        print_after_all=args.print_after_all,
        print_changed=args.print_changed,
        verify_each=args.verify_each,
        opt_bisect_limit=args.opt_bisect_limit,
        reproducer_dir=args.crash_reproducer_dir,
    )
    return instrument if instrument.enabled else None


def _extract_time_trace(
    argv: list[str],
) -> tuple[list[str], str | None]:
    """Pull ``-ftime-trace[=FILE]`` out of *argv*.

    Handled outside argparse: with ``nargs="?"`` the bare flag would
    swallow the following positional (the input file).  Returns the
    remaining argv and the requested trace path ("" = derive from the
    input name).
    """
    remaining: list[str] = []
    trace: str | None = None
    for arg in argv:
        if arg == "-ftime-trace":
            trace = ""
        elif arg.startswith("-ftime-trace="):
            trace = arg.split("=", 1)[1]
        else:
            remaining.append(arg)
    return remaining, trace


#: where ``-fcache`` without an explicit directory keeps its entries
DEFAULT_CACHE_DIR = ".miniclang-cache"


def _extract_cache_flags(
    argv: list[str],
) -> tuple[list[str], str | None, bool]:
    """Pull ``-fcache[=DIR]`` / ``-fno-cache`` / ``-fcache-durable``
    out of *argv* (manual for the same ``nargs="?"`` reason as
    ``-ftime-trace``; last flag wins, clang-style).  Returns the
    remaining argv, the cache directory (None = caching disabled), and
    whether durable (fsync-before-rename) writes were requested."""
    remaining: list[str] = []
    cache_dir: str | None = None
    durable = False
    for arg in argv:
        if arg == "-fcache":
            cache_dir = DEFAULT_CACHE_DIR
        elif arg.startswith("-fcache="):
            cache_dir = arg.split("=", 1)[1] or DEFAULT_CACHE_DIR
        elif arg == "-fno-cache":
            cache_dir = None
        elif arg == "-fcache-durable":
            durable = True
        else:
            remaining.append(arg)
    return remaining, cache_dir, durable


def _write_stats_json(
    path: str, stats_before: dict[str, int]
) -> None:
    """Write the statistics deltas since *stats_before* as JSON with
    deterministically sorted keys (``-`` = stdout).  Shared by
    ``miniclang --stats-json`` and ``miniclang-serve --stats-json``."""
    import json

    payload = json.dumps(
        STATS.render_json(STATS.delta_since(stats_before)),
        indent=1,
        sort_keys=True,
    )
    if path == "-":
        print(payload)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")


def _default_trace_path(input_name: str) -> str:
    if input_name == "-":
        return "stdin.time-trace.json"
    base, _ = os.path.splitext(os.path.basename(input_name))
    return f"{base}.time-trace.json"


def _emit_remarks(args, compile_result) -> None:
    """Print ``-Rpass*``-selected optimization remarks to stderr."""
    if not (args.rpass or args.rpass_missed or args.rpass_analysis):
        return
    selected = compile_result.remarks.filtered(
        passed=args.rpass,
        missed=args.rpass_missed,
        analysis=args.rpass_analysis,
    )
    for remark in selected:
        print(
            remark.render(compile_result.source_manager),
            file=sys.stderr,
        )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    invocation = "miniclang " + " ".join(argv)
    argv, time_trace = _extract_time_trace(argv)
    argv, cache_dir, cache_durable = _extract_cache_flags(argv)
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.print_pipeline_passes:
        from repro.midend import default_pass_pipeline

        for name in default_pass_pipeline().pass_names():
            print(name)
        return EXIT_OK
    if args.print_fault_sites:
        for name in FAULTS.site_names():
            print(f"{name}\t{FAULTS.scope_of(name)}\t{FAULTS.describe(name)}")
        return EXIT_OK
    if not args.inputs:
        parser.error("an input file is required")
    armed_counters = []
    for spec in args.debug_counters:
        try:
            armed_counters.append(DEBUG_COUNTERS.apply_spec(spec))
        except ValueError as err:
            print(f"miniclang: error: {err}", file=sys.stderr)
            return EXIT_USER_ERROR
    try:
        for spec in args.inject_faults:
            FAULTS.arm_spec(spec)
    except ValueError as err:
        print(f"miniclang: error: {err}", file=sys.stderr)
        return EXIT_USER_ERROR
    set_crash_recovery_enabled(args.crash_recovery)

    defines: dict[str, str] = {}
    for item in args.defines:
        if "=" in item:
            name, value = item.split("=", 1)
        else:
            name, value = item, "1"
        defines[name] = value

    cache = None
    if cache_dir is not None:
        from repro.cache import CompilationCache

        cache = CompilationCache(
            cache_dir,
            max_entries=args.cache_max_entries,
            max_disk_bytes=args.cache_max_bytes,
            durable=cache_durable,
        )

    stats_before = STATS.snapshot()
    if time_trace is not None:
        enable_time_trace()
    code = EXIT_OK
    try:
        for input_path in args.inputs:
            if input_path == "-":
                source = sys.stdin.read()
                filename = "<stdin>"
            else:
                try:
                    with open(
                        input_path, "r", encoding="utf-8"
                    ) as fh:
                        source = fh.read()
                except UnicodeDecodeError as err:
                    print(
                        f"miniclang: error: {input_path}: invalid "
                        f"UTF-8 in source file: {err}",
                        file=sys.stderr,
                    )
                    code = worst_exit_code(code, EXIT_USER_ERROR)
                    continue
                except OSError as err:
                    print(
                        f"miniclang: error: {err}", file=sys.stderr
                    )
                    code = worst_exit_code(code, EXIT_USER_ERROR)
                    continue
                filename = input_path
            # A crashing input must not stop the batch: every outcome
            # is contained to its input, the worst exit code wins
            # (severity policy shared with miniclang-serve, see
            # repro.driver.exitcodes).
            code = worst_exit_code(
                code,
                _drive(
                    args, source, filename, defines, invocation, cache
                ),
            )
    finally:
        FAULTS.disarm_all()
        set_crash_recovery_enabled(True)
        for counter in armed_counters:
            counter.unset()
        profiler = disable_time_trace()
        if time_trace is not None and profiler is not None:
            trace_path = time_trace or _default_trace_path(
                args.inputs[0]
            )
            with open(trace_path, "w", encoding="utf-8") as fh:
                fh.write(profiler.to_chrome_json())
        if args.print_stats:
            print(
                STATS.render_text(STATS.delta_since(stats_before)),
                file=sys.stderr,
            )
        if args.stats_json:
            _write_stats_json(args.stats_json, stats_before)
        if args.print_cache_stats:
            delta = {
                key: value
                for key, value in STATS.delta_since(
                    stats_before
                ).items()
                if key.startswith("cache.")
            }
            print(STATS.render_text(delta), file=sys.stderr)
            if cache is not None:
                print(cache.describe(), file=sys.stderr)
    return code


def _drive(
    args,
    source: str,
    filename: str,
    defines: dict,
    invocation: str,
    cache=None,
) -> int:
    """Map every outcome of one input to its exit code.

    0 = success, 1 = user diagnostics / guest failure, 70 = internal
    compiler error (EX_SOFTWARE), 124 = timeout or fuel exhaustion.  The
    ordering matters: ExecutionTimeout and DeadlockError subclass
    InterpreterError."""
    from repro.runtime.team import TeamError

    try:
        return _drive_one(
            args, source, filename, defines, invocation, cache
        )
    except CompilationError as err:
        print(err.diagnostics_text, file=sys.stderr)
        return EXIT_ICE if err.ice else EXIT_USER_ERROR
    except InternalCompilerError as err:
        print(err.render(), file=sys.stderr)
        return EXIT_ICE
    except PassVerificationError as err:
        # A pass broke the IR invariants: a compiler bug, not user error.
        print(f"miniclang: error: {err}", file=sys.stderr)
        return EXIT_ICE
    except ExecutionTimeout as err:
        print(f"miniclang: error: {err}", file=sys.stderr)
        if err.snapshot is not None:
            print(err.snapshot.render(), file=sys.stderr)
        return EXIT_TIMEOUT
    except DeadlockError as err:
        print(f"miniclang: error: {err}", file=sys.stderr)
        if err.snapshot is not None:
            print(err.snapshot.render(), file=sys.stderr)
        return EXIT_USER_ERROR
    except (Trap, InterpreterError, MemoryError_, TeamError) as err:
        print(f"miniclang: error: {err}", file=sys.stderr)
        return EXIT_USER_ERROR
    except Exception as err:  # last-resort driver-level containment
        if not crash_recovery_enabled():
            raise
        print(
            "miniclang: error: internal compiler error in driver: "
            f"{type(err).__name__}: {err}",
            file=sys.stderr,
        )
        return EXIT_ICE


def _drive_one(
    args,
    source: str,
    filename: str,
    defines: dict,
    invocation: str,
    cache=None,
) -> int:
    """The actual compile/run logic for one input (exceptions are
    mapped to exit codes by :func:`_drive`)."""
    instrument = _build_instrumentation(args)
    if (
        cache is not None
        and not args.run
        and not args.ast_dump
        and not args.ast_dump_shadow
        and not args.syntax_only
        and instrument is None
        and not (args.rpass or args.rpass_missed or args.rpass_analysis)
    ):
        # Plain compile: the memoized path.  Introspection flags
        # (-print-before/-Rpass/-verify-each/...) need the passes to
        # actually execute, so they fall through to the cold pipeline.
        from repro.pipeline import compile_source_cached

        cc = compile_source_cached(
            source,
            cache,
            filename=filename,
            openmp=args.openmp,
            enable_irbuilder=args.enable_irbuilder,
            optimize=args.optimize,
            defines=defines,
            include_paths=args.include_paths,
            strip_omp_transforms=args.strip_omp_transforms,
            error_limit=args.error_limit,
            crash_reproducer_dir=args.crash_reproducer_dir,
            invocation=invocation,
        )
        if cc.diagnostics_text:
            print(cc.diagnostics_text, file=sys.stderr)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(cc.ir_text + "\n")
        else:
            print(cc.ir_text)
        return 0
    if args.run:
        result = run_source(
            source,
            entry=args.entry,
            num_threads=args.num_threads,
            filename=filename,
            openmp=args.openmp,
            enable_irbuilder=args.enable_irbuilder,
            defines=defines,
            optimize=args.optimize,
            profile_detail=args.profile_report,
            instrument=instrument,
            error_limit=args.error_limit,
            crash_reproducer_dir=args.crash_reproducer_dir,
            invocation=invocation,
            fuel=args.fuel,
            timeout_s=args.timeout,
            memory_limit=args.max_memory,
            max_call_depth=args.max_recursion,
            strip_omp_transforms=args.strip_omp_transforms,
            exec_engine=args.exec_engine,
        )
        _emit_remarks(args, result.compile_result)
        if args.profile_report:
            print(
                result.profile.render_text(
                    result.compile_result.module
                ),
                file=sys.stderr,
            )
        sys.stdout.write(result.stdout)
        code = result.exit_code
        return int(code) & 0xFF if isinstance(code, int) else 0

    result = compile_source(
        source,
        filename=filename,
        openmp=args.openmp,
        enable_irbuilder=args.enable_irbuilder,
        syntax_only=args.syntax_only
        or args.ast_dump
        or args.ast_dump_shadow,
        defines=defines,
        include_paths=args.include_paths,
        error_limit=args.error_limit,
        crash_reproducer_dir=args.crash_reproducer_dir,
        invocation=invocation,
        strip_omp_transforms=args.strip_omp_transforms,
    )

    warnings = result.diagnostics.render_all()
    if warnings:
        print(warnings, file=sys.stderr)

    output_text = ""
    if args.ast_dump or args.ast_dump_shadow:
        output_text = result.ast_dump(
            function=args.function,
            dump_shadow=args.ast_dump_shadow,
        )
    elif not args.syntax_only:
        if args.optimize and result.module is not None:
            from repro.core.crash_recovery import crash_context
            from repro.midend import default_pass_pipeline

            with crash_context(
                source,
                filename,
                invocation,
                args.crash_reproducer_dir,
            ):
                default_pass_pipeline(
                    remarks=result.diagnostics.remarks,
                    instrument=instrument,
                ).run(result.module)
        output_text = result.ir_text()
    _emit_remarks(args, result)

    if output_text:
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(output_text + "\n")
        else:
            print(output_text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
