"""``miniclang`` — clang-flavoured CLI for the reproduction.

Supported flags (mirroring the clang workflow the paper's listings use)::

    miniclang source.c                 # compile, print IR
    miniclang -ast-dump source.c       # clang -Xclang -ast-dump
    miniclang -ast-dump-shadow ...     # dump including shadow AST
    miniclang -fsyntax-only source.c
    miniclang -fopenmp ...             # (default on)
    miniclang -fno-openmp ...
    miniclang -fopenmp-enable-irbuilder ...   # paper's §3 path
    miniclang -O ...                   # run the mid-end pipeline
    miniclang --run [--entry main] ... # compile and execute
    miniclang -DNAME[=V] -Ipath ...
    miniclang --num-threads N --run ...
"""

from __future__ import annotations

import argparse
import sys

from repro.pipeline import CompilationError, compile_source, run_source


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="miniclang",
        description=(
            "MiniC compiler reproducing Clang's OpenMP 5.1 loop "
            "transformation implementation (tile/unroll via shadow AST "
            "or OMPCanonicalLoop + OpenMPIRBuilder)"
        ),
    )
    parser.add_argument("input", help="C source file ('-' for stdin)")
    parser.add_argument(
        "-ast-dump",
        action="store_true",
        dest="ast_dump",
        help="print the AST (clang -Xclang -ast-dump style)",
    )
    parser.add_argument(
        "-ast-dump-shadow",
        action="store_true",
        dest="ast_dump_shadow",
        help="print the AST including shadow (transformed) subtrees",
    )
    parser.add_argument(
        "-fsyntax-only",
        action="store_true",
        dest="syntax_only",
        help="stop after semantic analysis",
    )
    parser.add_argument(
        "-fopenmp",
        action="store_true",
        default=True,
        dest="openmp",
        help="enable OpenMP (default)",
    )
    parser.add_argument(
        "-fno-openmp",
        action="store_false",
        dest="openmp",
        help="disable OpenMP pragma handling",
    )
    parser.add_argument(
        "-fopenmp-enable-irbuilder",
        action="store_true",
        dest="enable_irbuilder",
        help="use the OMPCanonicalLoop/OpenMPIRBuilder representation "
        "(paper section 3)",
    )
    parser.add_argument(
        "-O",
        action="store_true",
        dest="optimize",
        help="run the mid-end pass pipeline (incl. LoopUnroll)",
    )
    parser.add_argument(
        "-emit-llvm",
        action="store_true",
        default=True,
        dest="emit_llvm",
        help="print textual IR (default action)",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="interpret the compiled module",
    )
    parser.add_argument("--entry", default="main")
    parser.add_argument(
        "--num-threads",
        type=int,
        default=4,
        help="simulated OpenMP team size for --run",
    )
    parser.add_argument(
        "-D",
        action="append",
        default=[],
        dest="defines",
        metavar="NAME[=VALUE]",
    )
    parser.add_argument(
        "-I",
        action="append",
        default=[],
        dest="include_paths",
        metavar="DIR",
    )
    parser.add_argument(
        "--function",
        default=None,
        help="restrict -ast-dump to one function",
    )
    parser.add_argument("-o", dest="output", default=None)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.input == "-":
        source = sys.stdin.read()
        filename = "<stdin>"
    else:
        try:
            with open(args.input, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as err:
            print(f"miniclang: error: {err}", file=sys.stderr)
            return 1
        filename = args.input

    defines: dict[str, str] = {}
    for item in args.defines:
        if "=" in item:
            name, value = item.split("=", 1)
        else:
            name, value = item, "1"
        defines[name] = value

    if args.run:
        try:
            result = run_source(
                source,
                entry=args.entry,
                num_threads=args.num_threads,
                filename=filename,
                openmp=args.openmp,
                enable_irbuilder=args.enable_irbuilder,
                defines=defines,
                optimize=args.optimize,
            )
        except CompilationError as err:
            print(err.diagnostics_text, file=sys.stderr)
            return 1
        sys.stdout.write(result.stdout)
        code = result.exit_code
        return int(code) & 0xFF if isinstance(code, int) else 0

    try:
        result = compile_source(
            source,
            filename=filename,
            openmp=args.openmp,
            enable_irbuilder=args.enable_irbuilder,
            syntax_only=args.syntax_only
            or args.ast_dump
            or args.ast_dump_shadow,
            defines=defines,
            include_paths=args.include_paths,
        )
    except CompilationError as err:
        print(err.diagnostics_text, file=sys.stderr)
        return 1

    warnings = result.diagnostics.render_all()
    if warnings:
        print(warnings, file=sys.stderr)

    output_text = ""
    if args.ast_dump or args.ast_dump_shadow:
        output_text = result.ast_dump(
            function=args.function,
            dump_shadow=args.ast_dump_shadow,
        )
    elif not args.syntax_only:
        if args.optimize and result.module is not None:
            from repro.midend import default_pass_pipeline

            default_pass_pipeline().run(result.module)
        output_text = result.ir_text()

    if output_text:
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(output_text + "\n")
        else:
            print(output_text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
