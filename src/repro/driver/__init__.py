"""The compiler driver: a clang-like command line over the pipeline."""

from repro.driver.cli import main

__all__ = ["main"]
