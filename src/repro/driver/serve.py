"""``miniclang-serve`` — batch front-end for the resilient compile
service.

Each input file becomes one :class:`~repro.service.CompileRequest`; the
batch is executed on a pool of isolated worker processes with per-attempt
wall-clock deadlines, retry with backoff, optional hedging, per-input
circuit breaking, bounded admission, and shadow-AST <-> IRBuilder
graceful degradation.  With ``-fcache[=DIR]`` terminal responses and
per-stage compile artifacts are memoized in a content-addressed cache
(workers share the disk tier), and concurrent identical requests
collapse onto one execution (single-flight; disable with
``--no-single-flight``).  Successful payloads (IR text or guest stdout) go
to stdout; one status line per request goes to stderr with stable tokens
for FileCheck::

    miniclang-serve: r00001 <file>: ok [shadow] attempts=1
    miniclang-serve: r00002 <file>: degraded (irbuilder->shadow) attempts=4
    miniclang-serve: r00003 <file>: circuit-open ... reproducer=...

The process exit code is the batch's worst outcome under the shared
severity policy (:mod:`repro.driver.exitcodes`).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

from repro.driver.exitcodes import (
    EXIT_ICE,
    EXIT_OK,
    EXIT_TIMEOUT,
    EXIT_UNAVAILABLE,
    EXIT_USER_ERROR,
    worst_exit_code,
)
from repro.instrument.stats import STATS
from repro.service import (
    STATUS_CIRCUIT_OPEN,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_ICE,
    STATUS_OK,
    STATUS_RESOURCE_EXHAUSTED,
    STATUS_TIMEOUT,
    CompileRequest,
    CompileResponse,
    CompileService,
    RetryPolicy,
    ServiceConfig,
    other_mode,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="miniclang-serve",
        description=(
            "execute a batch of compile/run requests on a resilient "
            "worker-pool service (isolation, deadlines, retry, circuit "
            "breaking, shadow<->IRBuilder degradation)"
        ),
    )
    parser.add_argument(
        "inputs",
        nargs="*",
        metavar="input",
        help="C source file(s), '-' for stdin (omitted with --listen)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker pool size"
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve over TCP instead of executing an input batch: "
        "accept length-prefixed JSON frames, route across --shards "
        "worker pools, drain gracefully on SIGTERM (port 0 = pick a "
        "free port; the bound address is printed to stderr)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="with --listen: number of independent worker-pool shards "
        "(least-queue-depth routing, per-shard breaker boards)",
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=64,
        dest="max_connections",
        metavar="N",
        help="with --listen: concurrent-connection cap (excess "
        "connections get a retryable server-busy error frame)",
    )
    parser.add_argument(
        "--frame-timeout",
        type=float,
        default=10.0,
        dest="frame_timeout",
        metavar="SECONDS",
        help="with --listen: a started frame must finish arriving "
        "within this window (slow-loris eviction)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        dest="idle_timeout",
        metavar="SECONDS",
        help="with --listen: close connections idle this long",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-attempt wall-clock deadline (overrunning workers are "
        "killed and the attempt retried)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per representation after the first attempt",
    )
    parser.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help="dispatch a duplicate attempt for stragglers after this "
        "many seconds (default: hedging off)",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=256,
        help="bounded admission: requests over this unresolved load "
        f"are shed with exit code {EXIT_UNAVAILABLE}",
    )
    parser.add_argument(
        "--mode",
        choices=("shadow", "irbuilder"),
        default="shadow",
        help="requested representation (the other serves as the "
        "graceful-degradation fallback)",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="interpret the compiled module instead of printing IR",
    )
    parser.add_argument("--entry", default="main")
    parser.add_argument(
        "--num-threads",
        type=int,
        default=4,
        help="simulated OpenMP team size for --run",
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the mid-end pass pipeline",
    )
    parser.add_argument(
        "--fuel",
        type=int,
        default=None,
        metavar="N",
        help="with --run: maximum retired guest instructions",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="disable representation fallback: persistent failures "
        "answer ice/timeout instead of degrading",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        dest="inject_faults",
        metavar="SITE[:N]",
        help="arm this fault spec inside workers (chaos testing); "
        "see miniclang -print-fault-sites",
    )
    parser.add_argument(
        "--fault-attempts",
        type=int,
        default=1,
        metavar="N",
        help="arm --inject-fault on the first N attempts only "
        "(-1 = every attempt, simulating a poison input)",
    )
    parser.add_argument(
        "--quarantine-dir",
        default=os.environ.get(
            "MINICLANG_QUARANTINE_DIR", "service-quarantine"
        ),
        metavar="DIR",
        help="where poison-input reproducers are written "
        "('' disables quarantine reproducers; default: "
        "$MINICLANG_QUARANTINE_DIR or service-quarantine)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        dest="state_dir",
        metavar="DIR",
        help="persist the breaker board and poison-input quarantine "
        "here; a restart restores them (quarantined inputs are "
        "rejected without re-execution, aged breakers re-enter "
        "half-open probing)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        dest="drain_timeout",
        metavar="SECONDS",
        help="on SIGTERM/SIGINT: let in-flight requests finish this "
        "long before shedding the rest (second signal exits "
        "immediately)",
    )
    parser.add_argument(
        "--worker-max-requests",
        type=int,
        default=None,
        dest="worker_max_requests",
        metavar="N",
        help="preemptively recycle each worker after N completed "
        "attempts (zero request loss; gunicorn-style max_requests)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=5.0,
        dest="heartbeat_interval",
        metavar="SECONDS",
        help="liveness-check idle workers this often (0 disables)",
    )
    # -fcache[=DIR] / -fno-cache are extracted manually in main()
    # (same nargs="?"-vs-positional hazard as miniclang's -ftime-trace)
    parser.add_argument(
        "-fcache-max-entries",
        type=int,
        default=1024,
        dest="cache_max_entries",
        metavar="N",
        help="in-memory cache tier capacity in entries (default 1024)",
    )
    parser.add_argument(
        "-fcache-max-bytes",
        type=int,
        default=256 * 1024 * 1024,
        dest="cache_max_bytes",
        metavar="N",
        help="on-disk cache tier byte budget (default 256 MiB)",
    )
    parser.add_argument(
        "--no-single-flight",
        action="store_true",
        help="do not coalesce concurrent identical requests onto one "
        "execution",
    )
    parser.add_argument(
        "-print-cache-stats",
        action="store_true",
        dest="print_cache_stats",
        help="dump the cache.* counters and cache tier summary",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit one JSON response object per request to stdout "
        "instead of raw payloads",
    )
    parser.add_argument(
        "--print-stats",
        action="store_true",
        dest="print_stats",
        help="dump the service.* and compile statistics to stderr",
    )
    # -ftrace-requests[=DIR] is extracted manually in main() (the same
    # nargs="?"-vs-positional hazard as -fcache / -ftime-trace)
    parser.add_argument(
        "--stats-json",
        default=None,
        dest="stats_json",
        metavar="FILE",
        help="write this batch's statistics deltas as sorted JSON "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        dest="metrics_json",
        metavar="FILE",
        help="write the service metrics snapshot (counters, gauges, "
        "latency histograms with p50/p95/p99) as JSON",
    )
    parser.add_argument(
        "--metrics-prom",
        default=None,
        dest="metrics_prom",
        metavar="FILE",
        help="write the service metrics in Prometheus text exposition "
        "format",
    )
    parser.add_argument(
        "--log-jsonl",
        default=None,
        dest="log_jsonl",
        metavar="FILE",
        help="append one JSON line per request lifecycle event "
        "(submit/dispatch/retry/.../response), keyed by request and "
        "trace ids",
    )
    return parser


#: where ``-ftrace-requests`` without an explicit directory writes
DEFAULT_TRACE_DIR = "service-traces"


class _DrainSignals:
    """SIGTERM/SIGINT -> graceful drain (systemd-style stop protocol).

    First signal: admission closes, in-flight work gets the drain
    deadline, state is snapshotted, the process exits 0.  Second
    signal: immediate exit with the conventional ``128 + signum``.
    """

    def __init__(self, service, drain_deadline_s: float) -> None:
        self.service = service
        self.drain_deadline_s = drain_deadline_s
        self.triggered = False
        self._previous: dict[int, object] = {}

    def _handle(self, signum, frame) -> None:
        if self.triggered:
            os._exit(128 + signum)
        self.triggered = True
        name = signal.Signals(signum).name
        print(
            f"miniclang-serve: {name} received: draining "
            f"(deadline {self.drain_deadline_s:.1f}s; send again to "
            "exit immediately)",
            file=sys.stderr,
        )
        self.service.begin_drain(self.drain_deadline_s)

    def install(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(
                    signum, self._handle
                )
            except (ValueError, OSError):  # pragma: no cover
                pass  # non-main thread / unsupported platform

    def restore(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass


def _extract_trace_requests(
    argv: list[str],
) -> tuple[list[str], str | None]:
    """Pull ``-ftrace-requests[=DIR]`` out of *argv*.  Returns the
    remaining argv and the trace directory (None = tracing off)."""
    remaining: list[str] = []
    trace_dir: str | None = None
    for arg in argv:
        if arg == "-ftrace-requests":
            trace_dir = DEFAULT_TRACE_DIR
        elif arg.startswith("-ftrace-requests="):
            trace_dir = arg.split("=", 1)[1] or DEFAULT_TRACE_DIR
        else:
            remaining.append(arg)
    return remaining, trace_dir


def _status_line(name: str, request, response: CompileResponse) -> str:
    bits = [f"miniclang-serve: {response.request_id} {name}:"]
    if response.status == STATUS_DEGRADED:
        bits.append(
            f"degraded ({request.mode}->{other_mode(request.mode)})"
        )
    elif response.status == STATUS_OK:
        bits.append(f"ok [{response.mode_used}]")
    else:
        bits.append(response.status)
    bits.append(f"attempts={response.attempts}")
    if response.retries:
        bits.append(f"retries={response.retries}")
    if response.hedged:
        bits.append("hedged")
    if response.cache_hit:
        bits.append("cached")
    if response.coalesced:
        bits.append("coalesced")
    if response.exit_code not in (None, 0):
        bits.append(f"exit={response.exit_code}")
    if response.reproducer_path:
        bits.append(f"reproducer={response.reproducer_path}")
    return " ".join(bits)


def _response_exit_code(response: CompileResponse) -> int:
    """One response -> the exit code it contributes to the batch."""
    if response.status in (STATUS_OK, STATUS_DEGRADED):
        code = response.exit_code
        return int(code) & 0xFF if isinstance(code, int) else EXIT_OK
    if response.status == STATUS_ERROR:
        code = response.exit_code
        if isinstance(code, int) and code != 0:
            return int(code) & 0xFF
        return EXIT_USER_ERROR
    if response.status == STATUS_TIMEOUT:
        return EXIT_TIMEOUT
    if response.status == STATUS_RESOURCE_EXHAUSTED:
        return EXIT_UNAVAILABLE
    # ice and circuit-open (a quarantined input is a persistent
    # internal failure) both diagnose a compiler-side defect
    return EXIT_ICE


def _shard_configs(
    args, cache_dir, cache_durable, trace_dir, event_log
) -> list[ServiceConfig]:
    """One ServiceConfig per shard, from the shared CLI knobs.  Every
    shard gets its own state subdirectory (independent breaker boards
    persist independently) and skips response retention (a long-lived
    server answers through the response hook, not the batch map)."""
    configs: list[ServiceConfig] = []
    for index in range(max(1, args.shards)):
        configs.append(
            ServiceConfig(
                workers=args.workers,
                queue_capacity=args.queue_capacity,
                deadline_s=args.deadline,
                retry=RetryPolicy(
                    max_attempts=1 + max(0, args.retries)
                ),
                hedge_delay_s=args.hedge_delay,
                allow_degraded=not args.no_degrade,
                quarantine_dir=args.quarantine_dir or None,
                enable_cache=cache_dir is not None,
                cache_dir=cache_dir,
                cache_max_entries=args.cache_max_entries,
                cache_max_bytes=args.cache_max_bytes,
                cache_durable=cache_durable,
                single_flight=not args.no_single_flight,
                state_dir=(
                    os.path.join(args.state_dir, f"shard-{index}")
                    if args.state_dir
                    else None
                ),
                drain_deadline_s=args.drain_timeout,
                worker_max_requests=args.worker_max_requests,
                heartbeat_interval_s=args.heartbeat_interval,
                trace_requests=trace_dir is not None,
                trace_dir=trace_dir,
                event_log=event_log,
                retain_responses=False,
            )
        )
    return configs


def _run_server(
    args, cache_dir, cache_durable, trace_dir
) -> int:
    """``--listen`` mode: the asyncio TCP front door over a shard
    router.  Runs until a drain completes (SIGTERM/SIGINT; a second
    signal exits immediately) and exits 0 on a graceful drain."""
    import asyncio

    from repro.instrument.telemetry import EventLog
    from repro.service.net import (
        NetServer,
        NetServerConfig,
        ShardRouter,
        parse_address,
    )

    try:
        host, port = parse_address(args.listen)
    except ValueError as err:
        print(f"miniclang-serve: error: {err}", file=sys.stderr)
        return EXIT_USER_ERROR
    event_log = (
        EventLog(path=args.log_jsonl) if args.log_jsonl else None
    )
    stats_before = STATS.snapshot()
    router = ShardRouter(
        _shard_configs(
            args, cache_dir, cache_durable, trace_dir, event_log
        )
    )
    net_config = NetServerConfig(
        host=host,
        port=port,
        max_connections=args.max_connections,
        frame_timeout_s=args.frame_timeout,
        idle_timeout_s=args.idle_timeout,
        drain_deadline_s=args.drain_timeout,
    )

    async def _serve() -> None:
        server = NetServer(router, net_config)
        bound_host, bound_port = await server.start()
        print(
            f"miniclang-serve: listening on {bound_host}:{bound_port} "
            f"({router.shard_count} shard(s), {args.workers} "
            "worker(s) each)",
            file=sys.stderr,
            flush=True,
        )
        loop = asyncio.get_running_loop()
        triggered: set[int] = set()

        def on_signal(signum: int) -> None:
            if triggered:
                os._exit(128 + signum)
            triggered.add(signum)
            name = signal.Signals(signum).name
            print(
                f"miniclang-serve: {name} received: draining "
                f"(deadline {args.drain_timeout:.1f}s; send again to "
                "exit immediately)",
                file=sys.stderr,
                flush=True,
            )
            server.request_drain(args.drain_timeout)

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, on_signal, signum
                )
            except (NotImplementedError, RuntimeError):
                pass  # pragma: no cover - non-unix platforms
        await server.serve_until_drained()

    router.start()
    try:
        asyncio.run(_serve())
    finally:
        router.shutdown()
        if event_log is not None:
            event_log.close()
    metrics = router.merged_metrics()
    requests_total = 0.0
    responses_total = 0.0
    req_metric = metrics.get("service_requests_total")
    if req_metric is not None:
        requests_total = req_metric.value
    resp_metric = metrics.get("service_responses_total")
    if resp_metric is not None:
        responses_total = sum(
            cell.value for _, cell in resp_metric.series()
        )
    print(
        "miniclang-serve: drained: "
        f"{int(requests_total)} request(s) admitted, "
        f"{int(responses_total)} terminal response(s), "
        "state snapshotted; exiting 0",
        file=sys.stderr,
    )
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(metrics.snapshot(), fh, indent=1)
            fh.write("\n")
    if args.metrics_prom:
        with open(args.metrics_prom, "w", encoding="utf-8") as fh:
            fh.write(metrics.render_prometheus())
    if args.print_stats:
        print(
            STATS.render_text(STATS.delta_since(stats_before)),
            file=sys.stderr,
        )
    if args.stats_json:
        from repro.driver.cli import _write_stats_json

        _write_stats_json(args.stats_json, stats_before)
    # A graceful drain is a successful shutdown (systemd's clean-stop
    # contract) — the accounting line above is the audit trail.
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    from repro.driver.cli import (
        _extract_cache_flags,
        _write_stats_json,
    )
    from repro.instrument.telemetry import EventLog

    argv = list(sys.argv[1:] if argv is None else argv)
    argv, cache_dir, cache_durable = _extract_cache_flags(argv)
    argv, trace_dir = _extract_trace_requests(argv)
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.listen is not None:
        if args.inputs:
            parser.error("--listen takes no input files")
        return _run_server(args, cache_dir, cache_durable, trace_dir)
    if not args.inputs:
        parser.error("input files required (or --listen HOST:PORT)")

    requests: list[CompileRequest] = []
    names: list[str] = []
    read_errors = 0
    for input_path in args.inputs:
        if input_path == "-":
            source = sys.stdin.read()
            filename = "<stdin>"
        else:
            try:
                with open(input_path, "r", encoding="utf-8") as fh:
                    source = fh.read()
            except (OSError, UnicodeDecodeError) as err:
                print(
                    f"miniclang-serve: error: {err}", file=sys.stderr
                )
                read_errors += 1
                continue
            filename = input_path
        requests.append(
            CompileRequest(
                source=source,
                filename=filename,
                action="run" if args.run else "compile",
                mode=args.mode,
                optimize=args.optimize,
                num_threads=args.num_threads,
                entry=args.entry,
                fuel=args.fuel,
                deadline_s=args.deadline,
                allow_degraded=not args.no_degrade,
                inject_faults=tuple(args.inject_faults),
                fault_attempts=args.fault_attempts,
            )
        )
        names.append(filename)

    event_log = (
        EventLog(path=args.log_jsonl) if args.log_jsonl else None
    )
    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        deadline_s=args.deadline,
        retry=RetryPolicy(max_attempts=1 + max(0, args.retries)),
        hedge_delay_s=args.hedge_delay,
        allow_degraded=not args.no_degrade,
        quarantine_dir=args.quarantine_dir or None,
        enable_cache=cache_dir is not None,
        cache_dir=cache_dir,
        cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes,
        cache_durable=cache_durable,
        single_flight=not args.no_single_flight,
        state_dir=args.state_dir,
        drain_deadline_s=args.drain_timeout,
        worker_max_requests=args.worker_max_requests,
        heartbeat_interval_s=args.heartbeat_interval,
        trace_requests=trace_dir is not None,
        trace_dir=trace_dir,
        event_log=event_log,
    )
    stats_before = STATS.snapshot()
    code = EXIT_USER_ERROR if read_errors else EXIT_OK
    drainer = None
    try:
        with CompileService(config) as service:
            drainer = _DrainSignals(service, args.drain_timeout)
            drainer.install()
            try:
                responses = service.process_batch(requests)
            finally:
                drainer.restore()
            service_cache = service.cache
            metrics = service.metrics
            traces_written = list(service.tracer.written)
    finally:
        if event_log is not None:
            event_log.close()
    for name, request, response in zip(names, requests, responses):
        print(_status_line(name, request, response), file=sys.stderr)
        if response.status not in (STATUS_OK, STATUS_DEGRADED):
            detail = response.diagnostics or response.detail
            if detail:
                print(detail.rstrip("\n"), file=sys.stderr)
        if args.json_output:
            print(json.dumps(response.to_dict()))
        elif response.ok and response.output:
            sys.stdout.write(response.output)
            if not response.output.endswith("\n"):
                sys.stdout.write("\n")
        code = worst_exit_code(code, _response_exit_code(response))
    if drainer is not None and drainer.triggered:
        served = sum(1 for r in responses if r.ok)
        shed = sum(
            1
            for r in responses
            if r.status == STATUS_RESOURCE_EXHAUSTED
        )
        print(
            f"miniclang-serve: drained: {served} served, {shed} shed, "
            "state snapshotted; exiting 0",
            file=sys.stderr,
        )
        # A graceful drain is a *successful* shutdown: the shed work
        # got structured answers and the supervisor must not treat the
        # stop as a crash (systemd's clean-stop contract).
        code = EXIT_OK
    if trace_dir is not None and traces_written:
        print(
            f"miniclang-serve: wrote {len(traces_written)} request "
            f"trace(s) to {trace_dir}",
            file=sys.stderr,
        )
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(metrics.snapshot(), fh, indent=1)
            fh.write("\n")
    if args.metrics_prom:
        with open(args.metrics_prom, "w", encoding="utf-8") as fh:
            fh.write(metrics.render_prometheus())
    if args.print_stats:
        print(
            STATS.render_text(STATS.delta_since(stats_before)),
            file=sys.stderr,
        )
    if args.stats_json:
        _write_stats_json(args.stats_json, stats_before)
    if args.print_cache_stats:
        delta = {
            key: value
            for key, value in STATS.delta_since(stats_before).items()
            if key.startswith("cache.")
        }
        print(STATS.render_text(delta), file=sys.stderr)
        if service_cache is not None:
            print(service_cache.describe(), file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
