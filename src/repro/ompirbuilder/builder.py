"""The OpenMPIRBuilder methods (paper §3.2).

Design contract with CodeGen (matching clang's use of the real
OpenMPIRBuilder):

* Trip counts of a loop nest destined for ``tile_loops`` /
  ``collapse_loops`` are evaluated *before* the outermost skeleton is
  created (rectangular nests only), so every trip-count value dominates
  the outermost preheader.
* In a nest, an intermediate loop's body block is exactly the inner
  loop's preheader; the innermost body region contains all user code
  (including the logical-iteration-number -> user-variable conversions).
* Transformations may modify and return the input canonical loops or
  abandon the old handles and create new loops; old handles are
  invalidated (paper §3.2).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence

from repro.ir.instructions import (
    BinOp,
    BranchInst,
    ICmpPred,
)
from repro.ir.irbuilder import IRBuilder
from repro.ir.metadata import loop_metadata
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.types import (
    FunctionType,
    IntType,
    i32,
    i64,
    ptr,
    void_t,
)
from repro.ir.utils import (
    remove_unreachable_blocks,
    replace_all_uses,
)
from repro.instrument import RemarkEmitter, get_statistic
from repro.ir.values import ConstantInt, ConstantPointerNull, Value
from repro.ompirbuilder.canonical_loop_info import (
    CanonicalLoopInfo,
    SkeletonError,
    create_loop_skeleton,
)

_CANONICAL_LOOPS = get_statistic(
    "ompirbuilder",
    "canonical-loops-created",
    "OMPCanonicalLoop skeletons created by the OpenMPIRBuilder",
)
_IR_TRANSFORMS = get_statistic(
    "ompirbuilder",
    "transforms-applied",
    "Loop transformations applied on OpenMPIRBuilder skeletons",
)


class WorksharedSchedule(enum.Enum):
    """OpenMP worksharing-loop schedules (libomp ``kmp_sched`` values)."""

    STATIC_CHUNKED = 33
    STATIC = 34
    DYNAMIC_CHUNKED = 35
    GUIDED_CHUNKED = 36


#: Runtime entry points (libomp-compatible subset); the interpreter's
#: simulated runtime implements these natively.
RUNTIME_SIGNATURES: dict[str, tuple] = {
    "__kmpc_global_thread_num": (i32, [ptr]),
    "__kmpc_fork_call": (void_t, [ptr, i32, ptr, ptr]),
    "__kmpc_push_num_threads": (void_t, [ptr, i32, i32]),
    "__kmpc_barrier": (void_t, [ptr, i32]),
    "__kmpc_for_static_init_4u": (
        void_t,
        [ptr, i32, i32, ptr, ptr, ptr, ptr, i32, i32],
    ),
    "__kmpc_for_static_init_8u": (
        void_t,
        [ptr, i32, i32, ptr, ptr, ptr, ptr, i64, i64],
    ),
    "__kmpc_for_static_fini": (void_t, [ptr, i32]),
    "__kmpc_dispatch_init_4u": (
        void_t,
        [ptr, i32, i32, i32, i32, i32, i32],
    ),
    "__kmpc_dispatch_init_8u": (
        void_t,
        [ptr, i32, i32, i64, i64, i64, i64],
    ),
    "__kmpc_dispatch_next_4u": (i32, [ptr, i32, ptr, ptr, ptr, ptr]),
    "__kmpc_dispatch_next_8u": (i32, [ptr, i32, ptr, ptr, ptr, ptr]),
    "__kmpc_critical": (void_t, [ptr, i32, ptr]),
    "__kmpc_end_critical": (void_t, [ptr, i32, ptr]),
    "__kmpc_master": (i32, [ptr, i32]),
    "__kmpc_end_master": (void_t, [ptr, i32]),
    "__kmpc_single": (i32, [ptr, i32]),
    "__kmpc_end_single": (void_t, [ptr, i32]),
    "__kmpc_reduce_combine": (void_t, [ptr, i32, ptr, ptr, i64, i32]),
}


class OpenMPIRBuilder:
    """Base-language-independent OpenMP lowering over a module."""

    def __init__(
        self, module: Module, remarks: RemarkEmitter | None = None
    ) -> None:
        self.module = module
        #: optimization remarks sink (CodeGen hands in the engine-wide
        #: emitter; standalone users get a private one)
        self.remarks = remarks if remarks is not None else RemarkEmitter()

    # ==================================================================
    # Runtime declarations
    # ==================================================================
    def get_runtime_function(self, name: str) -> Function:
        sig = RUNTIME_SIGNATURES.get(name)
        if sig is None:
            raise KeyError(f"unknown OpenMP runtime function {name}")
        ret, params = sig
        return self.module.add_function(
            name, FunctionType(ret, params)
        )

    def default_loc(self, builder: IRBuilder) -> Value:
        """The `ident_t *` source-location argument; we pass null (the
        simulated runtime ignores it, as libomp does for most purposes)."""
        return ConstantPointerNull()

    def get_global_thread_num(self, builder: IRBuilder) -> Value:
        fn = self.get_runtime_function("__kmpc_global_thread_num")
        return builder.call(fn, [self.default_loc(builder)], "gtid")

    # ==================================================================
    # create_canonical_loop (paper Fig. 7; patch D71226)
    # ==================================================================
    def create_canonical_loop(
        self,
        builder: IRBuilder,
        trip_count: Value,
        body_gen: Optional[
            Callable[[IRBuilder, Value], None]
        ] = None,
        name: str = "omp_loop",
    ) -> CanonicalLoopInfo:
        """Create the loop skeleton; ``body_gen(builder, indvar)`` is
        called with the insertion point inside the body ("for re-entry
        into callback-ception", paper footnote 3).  On return the builder
        points at the after block."""
        cli = create_loop_skeleton(builder, trip_count, name)
        _CANONICAL_LOOPS.inc()
        if body_gen is not None:
            body_gen(builder, cli.indvar)
        builder.set_insert_point(cli.after, 0)
        return cli

    # ==================================================================
    # Unrolling (paper §2.2 semantics, IRBuilder variant)
    # ==================================================================
    def unroll_loop_heuristic(self, cli: CanonicalLoopInfo) -> None:
        """Let the mid-end decide (``llvm.loop.unroll.enable``)."""
        term = cli.latch.terminator
        assert term is not None
        term.metadata["llvm.loop"] = loop_metadata(unroll_enable=True)
        self.remarks.analysis(
            "unroll",
            "loop marked for heuristic unrolling by the mid-end "
            "(OpenMPIRBuilder)",
            function=cli.function.name,
        )

    def unroll_loop_full(self, cli: CanonicalLoopInfo) -> None:
        """Request full expansion by the mid-end ``LoopUnroll`` pass.

        No duplication happens here — exactly the paper's point that the
        front-end only annotates.
        """
        term = cli.latch.terminator
        assert term is not None
        term.metadata["llvm.loop"] = loop_metadata(unroll_full=True)
        self.remarks.passed(
            "unroll",
            "marked loop for full unrolling by the mid-end LoopUnroll "
            "pass (OpenMPIRBuilder)",
            function=cli.function.name,
            full=True,
        )

    def unroll_loop_partial(
        self,
        builder: IRBuilder,
        cli: CanonicalLoopInfo,
        factor: int,
    ) -> CanonicalLoopInfo:
        """Partial unroll: strip-mine by *factor* via :meth:`tile_loops`,
        mark the intra-tile loop for complete unrolling by the mid-end,
        and return the (consumable) outer tile-count loop.

        This mirrors LLVM's ``unrollLoopPartial``: "Partial unrolling can
        be understood as first tiling the loop by an unroll-factor, then
        fully unrolling the inner loop" (paper §1.1).
        """
        assert factor >= 1
        fn_name = cli.function.name
        floor_cli, tile_cli = self.tile_loops(
            builder, [cli], [factor], _emit_remark=False
        )
        term = tile_cli.latch.terminator
        assert term is not None
        term.metadata["llvm.loop"] = loop_metadata(
            unroll_count=factor, unroll_enable=True
        )
        _IR_TRANSFORMS.inc()
        self.remarks.passed(
            "unroll",
            f"unrolled loop by a factor of {factor} "
            "(strip-mined via tile_loops; intra-tile loop marked for "
            "full unrolling)",
            function=fn_name,
            factor=factor,
        )
        return floor_cli

    # ==================================================================
    # tile_loops (patch D76342)
    # ==================================================================
    def tile_loops(
        self,
        builder: IRBuilder,
        loops: Sequence[CanonicalLoopInfo],
        sizes: Sequence[int | Value],
        _emit_remark: bool = True,
    ) -> list[CanonicalLoopInfo]:
        """Tile a perfect rectangular nest; returns 2n new canonical
        loops (n floor loops iterating tile origins, then n intra-tile
        loops).  The old handles are invalidated."""
        assert loops and len(loops) == len(sizes)
        n = len(loops)
        for cli in loops:
            cli.assert_ok()
        fn = loops[0].function

        outer = loops[0]
        inner = loops[-1]
        entry_preheader = outer.preheader
        final_after = outer.after
        body_entry = inner.body
        old_inner_latch = inner.latch

        trip_counts = [cli.trip_count for cli in loops]
        iv_types: list[IntType] = [cli.indvar_type for cli in loops]
        size_values: list[Value] = [
            ConstantInt(iv_types[k], s) if isinstance(s, int) else s
            for k, s in enumerate(sizes)
        ]
        old_indvars = [cli.indvar for cli in loops]

        # The innermost body region keeps its own terminator to the old
        # latch; detach the nest by removing the old preheader's branch.
        old_term = entry_preheader.terminator
        assert old_term is not None
        old_term.erase()

        # --- floor trip counts: ceil(tc / size), unsigned --------------
        builder.set_insert_point(entry_preheader)
        floor_trips: list[Value] = []
        for k in range(n):
            ty = iv_types[k]
            tc, size = trip_counts[k], size_values[k]
            num = builder.add(
                tc,
                builder.sub(size, builder.const_int(ty, 1), "szm1"),
                "tile.num",
            )
            floor_trips.append(builder.udiv(num, size, "floor.tc"))

        # --- floor loops ------------------------------------------------
        floor_clis: list[CanonicalLoopInfo] = []
        for k in range(n):
            cli = create_loop_skeleton(
                builder, floor_trips[k], f"floor.{k}"
            )
            floor_clis.append(cli)
            builder.set_insert_point(cli.body, 0)

        # --- tile loops ---------------------------------------------------
        # In each tile-loop preheader compute: origin = floor_iv * size,
        # remaining = tc - origin, tile_tc = min(size, remaining).
        tile_clis: list[CanonicalLoopInfo] = []
        origins: list[Value] = []
        for k in range(n):
            ty = iv_types[k]
            origin = builder.mul(
                floor_clis[k].indvar, size_values[k], f"origin.{k}"
            )
            remaining = builder.sub(
                trip_counts[k], origin, f"remaining.{k}"
            )
            is_partial = builder.icmp(
                ICmpPred.ULT, remaining, size_values[k], "is.partial"
            )
            tile_tc = builder.select(
                is_partial, remaining, size_values[k], f"tile.tc.{k}"
            )
            origins.append(origin)
            cli = create_loop_skeleton(builder, tile_tc, f"tile.{k}")
            tile_clis.append(cli)
            builder.set_insert_point(cli.body, 0)

        # --- new logical ivs and body splice ----------------------------
        innermost = tile_clis[-1]
        new_ivs: list[Value] = []
        for k in range(n):
            new_ivs.append(
                builder.add(
                    origins[k], tile_clis[k].indvar, f"tiled.iv.{k}"
                )
            )
        # Replace the innermost tile body's `br latch` with a branch into
        # the original body region.
        body_term = innermost.body.terminator
        assert isinstance(body_term, BranchInst)
        body_term.target = body_entry
        # The original body region's exits targeted the old inner latch;
        # retarget them to the innermost tile latch.
        for block in fn.blocks:
            term = block.terminator
            if term is None or block is innermost.latch:
                continue
            for succ in list(term.successors()):
                if succ is old_inner_latch and block is not old_inner_latch:
                    from repro.ir.utils import redirect_branch

                    redirect_branch(block, old_inner_latch, innermost.latch)

        # Old induction variables now come from the tiled ivs.
        for old_iv, new_iv in zip(old_indvars, new_ivs):
            replace_all_uses(fn, old_iv, new_iv)

        # Chain the outermost after to the code following the old nest.
        builder.set_insert_point(floor_clis[0].after)
        builder.br(final_after)

        for cli in loops:
            cli.invalidate()
        remove_unreachable_blocks(fn)

        result = [*floor_clis, *tile_clis]
        for cli in result:
            cli.assert_ok()
        if _emit_remark:
            _IR_TRANSFORMS.inc()
            shown = tuple(
                s if isinstance(s, int) else f"%{s.name}"
                for s in sizes
            )
            self.remarks.passed(
                "tile",
                f"tiled loop nest of depth {n} with sizes "
                f"({', '.join(str(s) for s in shown)})",
                function=fn.name,
                sizes=shown,
            )
        return result

    # ==================================================================
    # collapse_loops (patch D83261)
    # ==================================================================
    def collapse_loops(
        self,
        builder: IRBuilder,
        loops: Sequence[CanonicalLoopInfo],
    ) -> CanonicalLoopInfo:
        """Merge a perfect rectangular nest into a single canonical loop
        whose trip count is the product of the nest's trip counts; the
        original logical indvars are recomputed by div/rem chains."""
        assert loops
        if len(loops) == 1:
            return loops[0]  # nothing to do
        for cli in loops:
            cli.assert_ok()
        n = len(loops)
        fn = loops[0].function
        outer, inner = loops[0], loops[-1]
        entry_preheader = outer.preheader
        final_after = outer.after
        body_entry = inner.body
        old_inner_latch = inner.latch

        trip_counts = [cli.trip_count for cli in loops]
        # Widest indvar type wins.
        ty = max(
            (cli.indvar_type for cli in loops), key=lambda t: t.bits
        )
        old_indvars = [cli.indvar for cli in loops]

        old_term = entry_preheader.terminator
        assert old_term is not None
        old_term.erase()

        builder.set_insert_point(entry_preheader)
        widened = [
            builder.cast(
                __import__(
                    "repro.ir.instructions", fromlist=["CastOp"]
                ).CastOp.ZEXT,
                tc,
                ty,
                "wide.tc",
            )
            if isinstance(tc.type, IntType) and tc.type.bits < ty.bits
            else tc
            for tc in trip_counts
        ]
        total: Value = widened[0]
        for tc in widened[1:]:
            total = builder.mul(total, tc, "collapsed.tc")

        cli = create_loop_skeleton(builder, total, "collapsed")
        builder.set_insert_point(cli.body, 0)

        # iv_k = (iv / prod_{j>k} tc_j) % tc_k
        new_ivs: list[Value] = []
        for k in range(n):
            value: Value = cli.indvar
            inner_product: Value | None = None
            for j in range(k + 1, n):
                inner_product = (
                    widened[j]
                    if inner_product is None
                    else builder.mul(inner_product, widened[j], "prod")
                )
            if inner_product is not None:
                value = builder.udiv(value, inner_product, f"unpack.{k}")
            value = builder.binop(
                BinOp.UREM, value, widened[k], f"iv.{k}"
            )
            if loops[k].indvar_type.bits < ty.bits:
                from repro.ir.instructions import CastOp

                value = builder.cast(
                    CastOp.TRUNC, value, loops[k].indvar_type, "narrow"
                )
            new_ivs.append(value)

        body_term = cli.body.terminator
        assert isinstance(body_term, BranchInst)
        body_term.target = body_entry
        from repro.ir.utils import redirect_branch

        for block in fn.blocks:
            if block is cli.latch:
                continue
            term = block.terminator
            if term is None:
                continue
            if old_inner_latch in term.successors():
                redirect_branch(block, old_inner_latch, cli.latch)

        for old_iv, new_iv in zip(old_indvars, new_ivs):
            replace_all_uses(fn, old_iv, new_iv)

        builder.set_insert_point(cli.after)
        builder.br(final_after)

        for old in loops:
            old.invalidate()
        remove_unreachable_blocks(fn)
        cli.assert_ok()
        _IR_TRANSFORMS.inc()
        self.remarks.passed(
            "collapse",
            f"collapsed {n} nested loops into one loop",
            function=fn.name,
            depth=n,
        )
        return cli

    # ==================================================================
    # OpenMP 6.0 extensions (paper §4: "The additional abstractions
    # provided by the OMPCanonicalLoop AST node and the OpenMPIRBuilder
    # build the foundation for implementing these extensions")
    # ==================================================================
    def fuse_loops(
        self,
        builder: IRBuilder,
        loops: Sequence[CanonicalLoopInfo],
    ) -> CanonicalLoopInfo:
        """``omp fuse``: merge a *sibling* sequence of canonical loops
        (laid out consecutively in control flow, every trip count
        evaluated before the first preheader) into one loop iterating
        ``max(tc...)``, each original body guarded by ``iv < tc_k`` —
        the OpenMP 6.0 semantics mirrored from the shadow-AST
        ``build_fuse``.  The old handles are invalidated."""
        from repro.ir.instructions import CastOp
        from repro.ir.utils import redirect_branch

        assert len(loops) >= 2
        for cli in loops:
            cli.assert_ok()
        n = len(loops)
        fn = loops[0].function
        entry_preheader = loops[0].preheader
        final_after = loops[-1].after
        body_entries = [cli.body for cli in loops]
        old_latches = [cli.latch for cli in loops]
        old_indvars = [cli.indvar for cli in loops]

        # Widest induction type wins (as in collapse_loops).
        ty = max(
            (cli.indvar_type for cli in loops), key=lambda t: t.bits
        )

        old_term = entry_preheader.terminator
        assert old_term is not None
        old_term.erase()
        builder.set_insert_point(entry_preheader)
        widened: list[Value] = []
        for k, old in enumerate(loops):
            tc: Value = old.trip_count
            if isinstance(tc.type, IntType) and tc.type.bits < ty.bits:
                tc = builder.cast(CastOp.ZEXT, tc, ty, f"fuse.tc.{k}")
            widened.append(tc)
        total: Value = widened[0]
        for tc in widened[1:]:
            is_less = builder.icmp(
                ICmpPred.ULT, total, tc, "fuse.max.lt"
            )
            total = builder.select(is_less, tc, total, "fuse.max")
        cli = create_loop_skeleton(builder, total, "fused")

        # Replace the placeholder body terminator with a guard chain:
        # each guard jumps into the corresponding original body region,
        # whose exits (the old latch) are retargeted to the join block
        # holding the next guard.
        body_term = cli.body.terminator
        assert isinstance(body_term, BranchInst)
        body_term.erase()
        builder.set_insert_point(cli.body)
        narrowed: list[Value] = []
        for k, old in enumerate(loops):
            iv: Value = cli.indvar
            if old.indvar_type.bits < ty.bits:
                iv = builder.cast(
                    CastOp.TRUNC, iv, old.indvar_type, f"fuse.iv.{k}"
                )
            narrowed.append(iv)
        for k in range(n):
            join = fn.append_block(f"fused.join.{k}")
            guard = builder.icmp(
                ICmpPred.ULT, cli.indvar, widened[k], f"fuse.guard.{k}"
            )
            builder.cond_br(guard, body_entries[k], join)
            for block in fn.blocks:
                term = block.terminator
                if term is None or block is old_latches[k]:
                    continue
                if old_latches[k] in term.successors():
                    redirect_branch(block, old_latches[k], join)
            builder.set_insert_point(join)
        builder.br(cli.latch)

        for old_iv, new_iv in zip(old_indvars, narrowed):
            replace_all_uses(fn, old_iv, new_iv)

        builder.set_insert_point(cli.after)
        builder.br(final_after)

        for old in loops:
            old.invalidate()
        remove_unreachable_blocks(fn)
        cli.assert_ok()
        _IR_TRANSFORMS.inc()
        self.remarks.passed(
            "fuse",
            f"fused {n} loops into one (OpenMPIRBuilder)",
            function=fn.name,
            num_loops=n,
        )
        return cli

    def reverse_loop(
        self, builder: IRBuilder, cli: CanonicalLoopInfo
    ) -> CanonicalLoopInfo:
        """``omp reverse``: mirror the logical iteration order by
        replacing body uses of the induction variable with
        ``trip - 1 - indvar``.  The skeleton is untouched, so the same
        handle remains valid and consumable."""
        cli.assert_ok()
        builder.set_insert_point(cli.body, 0)
        ty = cli.indvar_type
        mirrored = builder.sub(
            builder.sub(
                cli.trip_count,
                ConstantInt(ty, 1),
                "rev.last",
            ),
            cli.indvar,
            "rev.iv",
        )
        fn = cli.function
        indvar = cli.indvar
        latch_inc = indvar.incoming_for(cli.latch)
        cmp = cli.compare
        for inst in fn.instructions():
            if inst is mirrored or inst is latch_inc or inst is cmp:
                continue
            # `rev.last` feeds `rev.iv`; don't rewrite its operand.
            if (
                inst.opcode == "binop"
                and getattr(inst, "name", "").startswith("rev.")
            ):
                continue
            if any(op is indvar for op in inst.operands()):
                inst.replace_operand(indvar, mirrored)
        cli.assert_ok()
        _IR_TRANSFORMS.inc()
        self.remarks.passed(
            "reverse",
            "reversed loop iteration order",
            function=fn.name,
        )
        return cli

    def interchange_loops(
        self,
        builder: IRBuilder,
        loops: Sequence[CanonicalLoopInfo],
        permutation: Sequence[int],
    ) -> list[CanonicalLoopInfo]:
        """``omp interchange``: permute a perfect rectangular nest.

        Builds a fresh nest of skeletons iterating the original logical
        spaces in permuted order, splices the original innermost body,
        and maps each original induction variable onto the corresponding
        new loop's.  Old handles are abandoned.
        """
        assert sorted(permutation) == list(range(len(loops)))
        for cli in loops:
            cli.assert_ok()
        fn = loops[0].function
        outer, inner = loops[0], loops[-1]
        entry_preheader = outer.preheader
        final_after = outer.after
        body_entry = inner.body
        old_inner_latch = inner.latch
        trip_counts = [cli.trip_count for cli in loops]
        old_indvars = [cli.indvar for cli in loops]

        old_term = entry_preheader.terminator
        assert old_term is not None
        old_term.erase()

        builder.set_insert_point(entry_preheader)
        new_by_level: dict[int, CanonicalLoopInfo] = {}
        for position, original_index in enumerate(permutation):
            cli = create_loop_skeleton(
                builder,
                trip_counts[original_index],
                f"interchange.{position}",
            )
            new_by_level[original_index] = cli
            builder.set_insert_point(cli.body, 0)

        innermost = new_by_level[permutation[-1]]
        body_term = innermost.body.terminator
        assert isinstance(body_term, BranchInst)
        body_term.target = body_entry
        from repro.ir.utils import redirect_branch

        for block in list(fn.blocks):
            if block is innermost.latch:
                continue
            term = block.terminator
            if term is not None and old_inner_latch in term.successors():
                redirect_branch(block, old_inner_latch, innermost.latch)

        for k, old_iv in enumerate(old_indvars):
            replace_all_uses(fn, old_iv, new_by_level[k].indvar)

        outermost = new_by_level[permutation[0]]
        builder.set_insert_point(outermost.after)
        builder.br(final_after)

        for cli in loops:
            cli.invalidate()
        remove_unreachable_blocks(fn)
        result = [new_by_level[i] for i in permutation]
        for cli in result:
            cli.assert_ok()
        _IR_TRANSFORMS.inc()
        perm_1based = tuple(p + 1 for p in permutation)
        self.remarks.passed(
            "interchange",
            f"interchanged loop nest with permutation {perm_1based}",
            function=fn.name,
            permutation=perm_1based,
        )
        return result

    # ==================================================================
    # create_workshare_loop (patch D73111)
    # ==================================================================
    def create_workshare_loop(
        self,
        builder: IRBuilder,
        cli: CanonicalLoopInfo,
        schedule: WorksharedSchedule = WorksharedSchedule.STATIC,
        chunk: Value | int | None = None,
        nowait: bool = False,
    ) -> CanonicalLoopInfo:
        """Apply a worksharing schedule to a canonical loop.

        Static: one ``__kmpc_for_static_init`` call in the preheader
        computes this thread's [lower, upper] slice; the loop's trip
        count becomes the slice span and body uses of the indvar are
        shifted by the slice start (LLVM's ``applyStaticWorkshareLoop``).
        Dynamic/guided: a dispatch loop around the canonical loop pulls
        chunks from the runtime until exhausted.
        """
        cli.assert_ok()
        if schedule == WorksharedSchedule.STATIC:
            self._apply_static_workshare(
                builder, cli, schedule, chunk, nowait
            )
            cli.assert_ok()
        else:
            # Chunked/dynamic/guided wrap the canonical loop in a
            # dispatch loop; the skeleton invariants no longer hold, so
            # the handle is consumed ("abandon the old handles",
            # paper §3.2).
            self._apply_dynamic_workshare(
                builder, cli, schedule, chunk, nowait
            )
            cli.invalidate()
        return cli

    # ------------------------------------------------------------------
    def _runtime_suffix(self, ty: IntType) -> str:
        return "4u" if ty.bits <= 32 else "8u"

    def _shift_indvar_uses(
        self,
        builder: IRBuilder,
        cli: CanonicalLoopInfo,
        offset: Value,
    ) -> None:
        """Insert ``shifted = indvar + offset`` at the body entry and
        replace all non-skeleton uses of the indvar with it."""
        fn = cli.function
        indvar = cli.indvar
        builder.set_insert_point(cli.body, 0)
        shifted = builder.add(indvar, offset, "omp.shifted.iv")
        skeleton_insts = set()
        # Keep the skeleton's own uses: the latch increment, the cond
        # compare, and the shift itself.
        term_cmp = cli.compare
        latch_inc = cli.indvar.incoming_for(cli.latch)
        for inst in fn.instructions():
            if inst is shifted or inst is term_cmp or inst is latch_inc:
                continue
            if any(op is indvar for op in inst.operands()):
                inst.replace_operand(indvar, shifted)

    def _apply_static_workshare(
        self,
        builder: IRBuilder,
        cli: CanonicalLoopInfo,
        schedule: WorksharedSchedule,
        chunk: Value | int | None,
        nowait: bool,
    ) -> None:
        ty = cli.indvar_type
        suffix = self._runtime_suffix(ty)
        init_fn = self.get_runtime_function(
            f"__kmpc_for_static_init_{suffix}"
        )
        fini_fn = self.get_runtime_function("__kmpc_for_static_fini")
        loc = self.default_loc(builder)

        builder.set_insert_point_before(cli.preheader.terminator)
        gtid = self.get_global_thread_num(builder)
        p_last = builder.alloca(i32, name="p.lastiter")
        p_lower = builder.alloca(ty, name="p.lowerbound")
        p_upper = builder.alloca(ty, name="p.upperbound")
        p_stride = builder.alloca(ty, name="p.stride")
        zero = builder.const_int(ty, 0)
        one = builder.const_int(ty, 1)
        trip = cli.trip_count
        builder.store(builder.const_int(i32, 0), p_last)
        builder.store(zero, p_lower)
        builder.store(builder.sub(trip, one, "omp.ub"), p_upper)
        builder.store(one, p_stride)
        chunk_val = (
            builder.const_int(ty, chunk)
            if isinstance(chunk, int)
            else chunk
            if chunk is not None
            else one
        )
        builder.call(
            init_fn,
            [
                loc,
                gtid,
                builder.const_int(i32, schedule.value),
                p_last,
                p_lower,
                p_upper,
                p_stride,
                one,
                chunk_val,
            ],
        )
        lower = builder.load(ty, p_lower, "omp.lb.new")
        upper = builder.load(ty, p_upper, "omp.ub.new")
        span = builder.add(
            builder.sub(upper, lower, "omp.range"), one, "omp.span"
        )
        # A thread with an empty slice gets upper < lower; the unsigned
        # wrap would produce a huge span, so clamp: span = (upper >= lower)
        # ? span : 0.
        nonempty = builder.icmp(
            ICmpPred.UGE, upper, lower, "omp.nonempty"
        )
        span = builder.select(nonempty, span, zero, "omp.tc.thread")
        cli.set_trip_count(span)
        self._shift_indvar_uses(builder, cli, lower)

        # Finalization + implicit barrier in the after block.
        builder.set_insert_point(cli.after, 0)
        builder.call(fini_fn, [loc, gtid])
        if not nowait:
            self.create_barrier(builder, gtid)

    def _apply_dynamic_workshare(
        self,
        builder: IRBuilder,
        cli: CanonicalLoopInfo,
        schedule: WorksharedSchedule,
        chunk: Value | int | None,
        nowait: bool,
    ) -> None:
        ty = cli.indvar_type
        suffix = self._runtime_suffix(ty)
        init_fn = self.get_runtime_function(
            f"__kmpc_dispatch_init_{suffix}"
        )
        next_fn = self.get_runtime_function(
            f"__kmpc_dispatch_next_{suffix}"
        )
        loc = self.default_loc(builder)
        fn = cli.function

        builder.set_insert_point_before(cli.preheader.terminator)
        gtid = self.get_global_thread_num(builder)
        p_last = builder.alloca(i32, name="p.lastiter")
        p_lower = builder.alloca(ty, name="p.lowerbound")
        p_upper = builder.alloca(ty, name="p.upperbound")
        p_stride = builder.alloca(ty, name="p.stride")
        zero = builder.const_int(ty, 0)
        one = builder.const_int(ty, 1)
        trip = cli.trip_count
        chunk_val = (
            builder.const_int(ty, chunk)
            if isinstance(chunk, int)
            else chunk
            if chunk is not None
            else one
        )
        builder.call(
            init_fn,
            [
                loc,
                gtid,
                builder.const_int(i32, schedule.value),
                zero,
                builder.sub(trip, one, "omp.ub"),
                one,
                chunk_val,
            ],
        )

        dispatch_cond = fn.append_block("omp.dispatch.cond", after=cli.preheader)
        dispatch_body = fn.append_block("omp.dispatch.body", after=dispatch_cond)

        # preheader now enters the dispatch loop.
        pre_term = cli.preheader.terminator
        assert isinstance(pre_term, BranchInst)
        pre_term.target = dispatch_cond

        builder.set_insert_point(dispatch_cond)
        more = builder.call(
            next_fn,
            [loc, gtid, p_last, p_lower, p_upper, p_stride],
            "omp.more",
        )
        has_chunk = builder.icmp(
            ICmpPred.NE, more, builder.const_int(i32, 0), "omp.haschunk"
        )
        builder.cond_br(has_chunk, dispatch_body, cli.after)

        builder.set_insert_point(dispatch_body)
        lower = builder.load(ty, p_lower, "omp.lb.chunk")
        upper = builder.load(ty, p_upper, "omp.ub.chunk")
        span = builder.add(
            builder.sub(upper, lower, "omp.range"), one, "omp.span"
        )
        builder.br(cli.header)
        cli.indvar.replace_incoming_block(cli.preheader, dispatch_body)

        cli.set_trip_count(span)
        self._shift_indvar_uses(builder, cli, lower)

        # The canonical loop's exit returns to the dispatcher.
        exit_term = cli.exit.terminator
        assert isinstance(exit_term, BranchInst)
        exit_term.target = dispatch_cond

        builder.set_insert_point(cli.after, 0)
        if not nowait:
            self.create_barrier(builder, gtid)

    # ==================================================================
    # Parallel regions / synchronization
    # ==================================================================
    def create_parallel(
        self,
        builder: IRBuilder,
        outlined_fn: Function,
        context_ptr: Value,
        num_threads: Value | None = None,
    ) -> None:
        """Emit a parallel region: optional num_threads push, then
        ``__kmpc_fork_call(loc, 1, outlined_fn, context)``."""
        loc = self.default_loc(builder)
        if num_threads is not None:
            push = self.get_runtime_function("__kmpc_push_num_threads")
            gtid = self.get_global_thread_num(builder)
            builder.call(push, [loc, gtid, num_threads])
        fork = self.get_runtime_function("__kmpc_fork_call")
        builder.call(
            fork,
            [loc, builder.const_int(i32, 1), outlined_fn, context_ptr],
        )

    def create_barrier(
        self, builder: IRBuilder, gtid: Value | None = None
    ) -> None:
        barrier = self.get_runtime_function("__kmpc_barrier")
        if gtid is None:
            gtid = self.get_global_thread_num(builder)
        builder.call(barrier, [self.default_loc(builder), gtid])

    def create_critical(
        self,
        builder: IRBuilder,
        body_gen: Callable[[IRBuilder], None],
        name: str = "unnamed",
    ) -> None:
        enter = self.get_runtime_function("__kmpc_critical")
        leave = self.get_runtime_function("__kmpc_end_critical")
        loc = self.default_loc(builder)
        gtid = self.get_global_thread_num(builder)
        lock = self.module.add_global(
            self.module.unique_global_name(f".gomp_critical_{name}"),
            i32,
        )
        builder.call(enter, [loc, gtid, lock])
        body_gen(builder)
        builder.call(leave, [loc, gtid, lock])
