"""``CanonicalLoopInfo``: the loop-skeleton handle (paper §3.2, Fig. 7).

The skeleton created by ``create_canonical_loop``::

      preheader:
          br label %header
      header:
          %iv = phi [0, %preheader], [%iv.next, %latch]
          br label %cond
      cond:
          %cmp = icmp ult %iv, %tripcount
          br i1 %cmp, label %body, label %exit
      body:
          ; ... user code ...
          br label %latch
      latch:
          %iv.next = add %iv, 1
          br label %header
      exit:
          br label %after
      after:

Invariants (checked by :meth:`CanonicalLoopInfo.assert_ok`):

* explicit basic blocks for preheader, header, condition check, body
  entry, latch, exit and after,
* an identifiable logical induction variable (the header phi, starting at
  0 and incremented by 1 in the latch),
* an identifiable trip count (the ``icmp ult`` bound in the condition
  block) "without requiring analysis by ScalarEvolution".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ir.instructions import (
    BinaryInst,
    BinOp,
    BranchInst,
    CondBranchInst,
    ICmpInst,
    ICmpPred,
    PhiInst,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import IntType
from repro.ir.values import ConstantInt, Value

if TYPE_CHECKING:
    from repro.ir.irbuilder import IRBuilder


class SkeletonError(Exception):
    """A CanonicalLoopInfo invariant does not hold."""


@dataclass
class CanonicalLoopInfo:
    """Handle to one canonical loop in the IR.

    Returned by ``create_canonical_loop`` and by every loop transformation
    (which "may either modify and return the input canonical loops, or
    abandon the old handles and create new loops using the skeleton" —
    paper §3.2).  After a transformation consumed a handle it must not be
    used again (``invalidate``).
    """

    preheader: BasicBlock
    header: BasicBlock
    cond: BasicBlock
    body: BasicBlock
    latch: BasicBlock
    exit: BasicBlock
    after: BasicBlock

    _valid: bool = True

    # ------------------------------------------------------------------
    # Identifiable components (no ScalarEvolution needed)
    # ------------------------------------------------------------------
    @property
    def indvar(self) -> PhiInst:
        """The logical iteration counter: the header's (only) phi."""
        phis = self.header.phis()
        if len(phis) != 1:
            raise SkeletonError(
                f"header {self.header.name} must have exactly one phi, "
                f"found {len(phis)}"
            )
        return phis[0]

    @property
    def compare(self) -> ICmpInst:
        for inst in self.cond.instructions:
            if isinstance(inst, ICmpInst):
                return inst
        raise SkeletonError(
            f"condition block {self.cond.name} has no compare"
        )

    @property
    def trip_count(self) -> Value:
        """The loop's trip count operand (rhs of the ``icmp ult``)."""
        return self.compare.rhs

    def set_trip_count(self, value: Value) -> None:
        self.compare.rhs = value

    @property
    def function(self) -> Function:
        assert self.header.parent is not None
        return self.header.parent

    @property
    def indvar_type(self) -> IntType:
        ty = self.indvar.type
        assert isinstance(ty, IntType)
        return ty

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        self._valid = False

    @property
    def is_valid(self) -> bool:
        return self._valid

    # ------------------------------------------------------------------
    # Invariant checking
    # ------------------------------------------------------------------
    def assert_ok(self) -> None:
        if not self._valid:
            raise SkeletonError("using an invalidated CanonicalLoopInfo")
        blocks = {
            "preheader": self.preheader,
            "header": self.header,
            "cond": self.cond,
            "body": self.body,
            "latch": self.latch,
            "exit": self.exit,
            "after": self.after,
        }
        fn = self.function
        for label, block in blocks.items():
            if block.parent is not fn:
                raise SkeletonError(
                    f"{label} block {block.name} is not in function "
                    f"@{fn.name}"
                )
            if block.terminator is None and label != "after":
                # The after block belongs to the code following the loop
                # and may still be under construction.
                raise SkeletonError(
                    f"{label} block {block.name} lacks a terminator"
                )
        # Edges.
        self._expect_branch("preheader", self.preheader, self.header)
        self._expect_branch("header", self.header, self.cond)
        term = self.cond.terminator
        if not (
            isinstance(term, CondBranchInst)
            and term.true_block is self.body
            and term.false_block is self.exit
        ):
            raise SkeletonError(
                "condition block must conditionally branch to body/exit"
            )
        self._expect_branch("latch", self.latch, self.header)
        self._expect_branch("exit", self.exit, self.after)
        # Induction variable.
        indvar = self.indvar
        start = indvar.incoming_for(self.preheader)
        if not (isinstance(start, ConstantInt) and start.value == 0):
            raise SkeletonError(
                "induction variable must start at 0 from the preheader"
            )
        step_val = indvar.incoming_for(self.latch)
        if not (
            isinstance(step_val, BinaryInst)
            and step_val.op == BinOp.ADD
            and step_val.parent is self.latch
            and (
                (step_val.lhs is indvar
                 and isinstance(step_val.rhs, ConstantInt)
                 and step_val.rhs.value == 1)
                or (step_val.rhs is indvar
                    and isinstance(step_val.lhs, ConstantInt)
                    and step_val.lhs.value == 1)
            )
        ):
            raise SkeletonError(
                "induction variable must be incremented by 1 in the latch"
            )
        # Compare.
        cmp = self.compare
        if cmp.pred != ICmpPred.ULT or cmp.lhs is not indvar:
            raise SkeletonError(
                "condition must be `icmp ult indvar, tripcount` "
                "(the logical iteration counter is unsigned)"
            )

    @staticmethod
    def _expect_branch(
        label: str, block: BasicBlock, target: BasicBlock
    ) -> None:
        term = block.terminator
        if not (isinstance(term, BranchInst) and term.target is target):
            raise SkeletonError(
                f"{label} block {block.name} must branch directly to "
                f"{target.name}"
            )

    def block_names(self) -> dict[str, str]:
        """Role -> block-name mapping (used by the Fig. 7 test/bench)."""
        return {
            "preheader": self.preheader.name,
            "header": self.header.name,
            "cond": self.cond.name,
            "body": self.body.name,
            "latch": self.latch.name,
            "exit": self.exit.name,
            "after": self.after.name,
        }


def create_loop_skeleton(
    builder: "IRBuilder",
    trip_count: Value,
    name: str = "omp_loop",
) -> CanonicalLoopInfo:
    """Emit the Fig. 7 skeleton at the builder's insertion point.

    The current block becomes the preheader (its existing terminator, if
    any, is preserved by splitting); after return the builder points into
    the body block, and the code that followed the insertion point is
    reachable from the after block.
    """
    from repro.ir.instructions import BranchInst

    assert builder.insert_block is not None
    fn = builder.insert_block.parent
    assert fn is not None
    ip_block = builder.insert_block
    ip_index = builder.save_ip().index

    # Move any trailing instructions of the insertion block into the
    # 'after' block so that the skeleton is inserted "in the middle".
    after = fn.append_block(f"{name}.after", after=ip_block)
    trailing = ip_block.instructions[ip_index:]
    del ip_block.instructions[ip_index:]
    for inst in trailing:
        after.append(inst)
    for succ in after.successors():
        for phi in succ.phis():
            phi.replace_incoming_block(ip_block, after)

    preheader = ip_block
    header = fn.append_block(f"{name}.header", after=preheader)
    cond = fn.append_block(f"{name}.cond", after=header)
    body = fn.append_block(f"{name}.body", after=cond)
    latch = fn.append_block(f"{name}.inc", after=body)
    exit_block = fn.append_block(f"{name}.exit", after=latch)

    iv_type = trip_count.type
    assert isinstance(iv_type, IntType)

    builder.set_insert_point(preheader)
    builder.br(header)

    builder.set_insert_point(header)
    indvar = builder.phi(iv_type, f"{name}.iv")
    builder.br(cond)

    builder.set_insert_point(cond)
    # Unsigned compare: the logical iteration counter is always unsigned
    # (paper §3.1).
    cmp = builder.icmp(ICmpPred.ULT, indvar, trip_count, f"{name}.cmp")
    builder.cond_br(cmp, body, exit_block)

    builder.set_insert_point(body)
    builder.br(latch)

    builder.set_insert_point(latch)
    next_iv = builder.add(
        indvar, builder.const_int(iv_type, 1), f"{name}.next"
    )
    builder.br(header)

    indvar.add_incoming(builder.const_int(iv_type, 0), preheader)
    indvar.add_incoming(next_iv, latch)

    builder.set_insert_point(exit_block)
    builder.br(after)

    # Leave the builder at the body insertion point (before its branch to
    # the latch) so callers can fill in user code.
    builder.set_insert_point(body, 0)
    return CanonicalLoopInfo(
        preheader=preheader,
        header=header,
        cond=cond,
        body=body,
        latch=latch,
        exit=exit_block,
        after=after,
    )
