"""The OpenMPIRBuilder (paper §3.2).

Extracts the base-language-independent portion of OpenMP lowering out of
CodeGen so it can be shared between front-ends (Clang, Flang/MLIR in the
paper; our MiniC CodeGen here).  The central abstraction is
:class:`~repro.ompirbuilder.canonical_loop_info.CanonicalLoopInfo`: a
handle to a loop skeleton in IR with explicit preheader / header / cond /
body / latch / exit / after blocks, an identifiable induction variable and
an identifiable trip count — no ScalarEvolution-style analysis required
(the paper's loop skeleton invariants).

Methods (each mirroring an LLVM patch cited by the paper):

* ``create_canonical_loop``  (D71226) — emit the Fig. 7 skeleton,
* ``create_workshare_loop``  (D73111) — apply a worksharing schedule,
* ``tile_loops``             (D76342) — the tile transformation,
* ``collapse_loops``         (D83261) — merge a nest into one loop,
* ``unroll_loop_full / _partial / _heuristic`` — unrolling, deferring
  duplication to the mid-end via ``llvm.loop.unroll.*`` metadata,
* ``create_parallel`` — IR-level outlining of parallel regions.
"""

from repro.ompirbuilder.canonical_loop_info import (
    CanonicalLoopInfo,
    SkeletonError,
)
from repro.ompirbuilder.builder import OpenMPIRBuilder, WorksharedSchedule

__all__ = [
    "CanonicalLoopInfo",
    "OpenMPIRBuilder",
    "SkeletonError",
    "WorksharedSchedule",
]
