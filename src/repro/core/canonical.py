"""Construction of ``OMPCanonicalLoop`` meta-nodes (paper §3.1).

The canonical representation abstracts the loop iteration space behind a
*logical iteration counter* — always a normalized unsigned integer starting
at 0 and incremented by 1 — and resolves, at the Sema layer, exactly the
minimal base-language-dependent meta-information:

1. **Distance function** — an expression evaluable before entering the
   loop yielding the trip count, wrapped in a lambda
   (``CapturedStmt``) so CodeGen can call it with any argument::

       [&](size_t &Result) { Result = __end - __begin; }

2. **User value function** — converts a logical iteration number into the
   value of the loop user variable; ``__begin`` is captured **by value**
   so it retains the loop iteration variable's *start* value even though
   the variable is modified inside the loop::

       [&,__begin](auto &Result, size_t __i) { Result = __begin + __i; }

3. **User variable reference** — the variable to update before each
   iteration.

Results are communicated through a by-reference ``Result`` parameter, not
a return value: returning a value of user-defined type would require
language-dependent copy/move semantics only Sema can resolve (paper §3.1).
"""

from __future__ import annotations

from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.context import ASTContext
from repro.astlib.decls import CapturedDecl, ImplicitParamDecl, VarDecl
from repro.astlib.omp import OMPCanonicalLoop
from repro.astlib.tree_transform import TreeTransform
from repro.astlib.types import QualType, desugar
from repro.core.shadow import ShadowTransformBuilder
from repro.sema.canonical_loop import CanonicalLoopAnalysis


class CanonicalLoopBuilder:
    """Builds the ``OMPCanonicalLoop`` wrapper for an analyzed loop."""

    def __init__(self, ctx: ASTContext) -> None:
        self.ctx = ctx
        # The trip-count arithmetic is identical in both representations;
        # reuse the shadow builder's expression factory.
        self._exprs = ShadowTransformBuilder(ctx)

    # ------------------------------------------------------------------
    def build(self, analysis: CanonicalLoopAnalysis) -> OMPCanonicalLoop:
        distance = self._build_distance_function(analysis)
        loop_value = self._build_user_value_function(analysis)
        user_ref = self._build_user_variable_ref(analysis)
        return OMPCanonicalLoop(
            analysis.loop_stmt,
            distance,
            loop_value,
            user_ref,
            analysis.loop_stmt.location,
        )

    # ------------------------------------------------------------------
    # 1. Distance function
    # ------------------------------------------------------------------
    def _build_distance_function(
        self, analysis: CanonicalLoopAnalysis
    ) -> s.CapturedStmt:
        logical = analysis.logical_type
        result_param = ImplicitParamDecl(
            "Result", self.ctx.get_reference(logical)
        )
        trip_expr = self._exprs.build_trip_count_expr(analysis)
        assign = e.BinaryOperator(
            e.BinaryOperatorKind.ASSIGN,
            e.DeclRefExpr(result_param, logical, e.ValueCategory.LVALUE),
            trip_expr,
            logical,
        )
        body = s.CompoundStmt([assign])
        decl = CapturedDecl(body, [result_param])
        captured = s.CapturedStmt(decl, self._free_variables(trip_expr))
        return captured

    # ------------------------------------------------------------------
    # 2. User value function
    # ------------------------------------------------------------------
    def _build_user_value_function(
        self, analysis: CanonicalLoopAnalysis
    ) -> s.CapturedStmt:
        logical = analysis.logical_type
        user_ty = self._user_variable_type(analysis)
        result_param = ImplicitParamDecl(
            "Result", self.ctx.get_reference(user_ty)
        )
        i_param = ImplicitParamDecl("__i", logical)
        i_ref = e.ImplicitCastExpr(
            e.CastKind.LVALUE_TO_RVALUE,
            e.DeclRefExpr(i_param, logical, e.ValueCategory.LVALUE),
            logical,
        )
        value_expr = self._build_value_expr(analysis, i_ref, user_ty)
        assign = e.BinaryOperator(
            e.BinaryOperatorKind.ASSIGN,
            e.DeclRefExpr(result_param, user_ty, e.ValueCategory.LVALUE),
            value_expr,
            user_ty,
        )
        body = s.CompoundStmt([assign])
        decl = CapturedDecl(body, [result_param, i_param])
        captured = s.CapturedStmt(decl, self._free_variables(value_expr))
        # __begin is captured by value (paper §3.1): at any time it must
        # contain the *start* value even though the loop modifies the
        # iteration variable.
        captured.by_value.add(analysis.iter_var.name)
        return captured

    def _build_value_expr(
        self,
        analysis: CanonicalLoopAnalysis,
        logical_ref: e.Expr,
        user_ty: QualType,
    ) -> e.Expr:
        B = e.BinaryOperatorKind
        x = self._exprs
        if isinstance(analysis.loop_stmt, s.CXXForRangeStmt):
            # Result = *(__begin_start + __i)
            begin_start = x._copy(analysis.lower_bound)
            ptr = e.BinaryOperator(
                B.ADD,
                begin_start,
                x._cast_to(logical_ref, self.ctx.ptrdiff_type),
                begin_start.type,
            )
            return e.UnaryOperator(
                e.UnaryOperatorKind.DEREF,
                ptr,
                user_ty,
                e.ValueCategory.LVALUE,
            )
        # Literal for-loop: Result = lb + __i * step
        var_ty = QualType(desugar(analysis.iter_var.type).type)
        step = x._copy(analysis.step)
        if desugar(var_ty).is_pointer():
            scaled = e.BinaryOperator(
                B.MUL,
                x._cast_to(logical_ref, self.ctx.ptrdiff_type),
                x._cast_to(step, self.ctx.ptrdiff_type),
                self.ctx.ptrdiff_type,
            )
            return e.BinaryOperator(
                B.ADD, x._copy(analysis.lower_bound), scaled, var_ty
            )
        scaled = e.BinaryOperator(
            B.MUL,
            x._cast_to(logical_ref, var_ty),
            x._cast_to(step, var_ty),
            var_ty,
        )
        return e.BinaryOperator(
            B.ADD,
            x._cast_to(x._copy(analysis.lower_bound), var_ty),
            scaled,
            var_ty,
        )

    # ------------------------------------------------------------------
    # 3. User variable reference
    # ------------------------------------------------------------------
    def _user_variable_decl(
        self, analysis: CanonicalLoopAnalysis
    ) -> VarDecl:
        if isinstance(analysis.loop_stmt, s.CXXForRangeStmt):
            return analysis.loop_stmt.loop_variable
        return analysis.iter_var

    def _user_variable_type(
        self, analysis: CanonicalLoopAnalysis
    ) -> QualType:
        decl = self._user_variable_decl(analysis)
        canonical = desugar(decl.type)
        from repro.astlib.types import ReferenceType

        if isinstance(canonical.type, ReferenceType):
            return canonical.type.pointee
        return QualType(canonical.type)

    def _build_user_variable_ref(
        self, analysis: CanonicalLoopAnalysis
    ) -> e.DeclRefExpr:
        decl = self._user_variable_decl(analysis)
        return e.DeclRefExpr(
            decl,
            self._user_variable_type(analysis),
            e.ValueCategory.LVALUE,
        )

    # ------------------------------------------------------------------
    def _free_variables(self, expr: e.Expr) -> list[VarDecl]:
        """Variables referenced by *expr*, i.e. the lambda's captures."""
        seen: dict[int, VarDecl] = {}
        for node in expr.walk():
            if isinstance(node, e.DeclRefExpr) and isinstance(
                node.decl, VarDecl
            ) and not isinstance(node.decl, ImplicitParamDecl):
                seen.setdefault(id(node.decl), node.decl)
        return list(seen.values())


def build_canonical_loop(
    ctx: ASTContext, analysis: CanonicalLoopAnalysis
) -> OMPCanonicalLoop:
    """Wrap an analyzed canonical loop in an ``OMPCanonicalLoop`` node."""
    return CanonicalLoopBuilder(ctx).build(analysis)
