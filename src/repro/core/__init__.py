"""The paper's primary contribution: the two loop-transformation
representations.

* :mod:`repro.core.shadow` — the **shadow AST** representation (paper §2):
  tile/unroll are applied at the Sema layer producing a transformed AST
  stored as a hidden child of ``OMPTileDirective``/``OMPUnrollDirective``;
  consuming directives re-analyse ``get_transformed_stmt()``.

* :mod:`repro.core.canonical` — the **canonical loop** representation
  (paper §3): a single ``OMPCanonicalLoop`` meta-node carrying the
  distance function, the loop user value function, and the user variable
  reference; code generation happens in the OpenMPIRBuilder
  (:mod:`repro.ompirbuilder`).
"""

from repro.core.shadow import (
    ShadowTransformBuilder,
    build_tile_transform,
    build_unroll_transform,
)
from repro.core.canonical import (
    CanonicalLoopBuilder,
    build_canonical_loop,
)

__all__ = [
    "CanonicalLoopBuilder",
    "ShadowTransformBuilder",
    "build_canonical_loop",
    "build_tile_transform",
    "build_unroll_transform",
]
