"""Shadow-AST loop transformations (paper §2).

Transformations are applied on the loops in the AST, creating a new AST —
"similar to how TreeTransform works already".  The result is stored as the
*transformed statement* of ``OMPUnrollDirective``/``OMPTileDirective`` and
is a shadow AST: invisible to ``children()`` and dumps, retrievable via
``get_transformed_stmt()`` by a consuming directive.

Naming follows the paper's Listing "Transformed AST of the unroll
directive": the strip-mined outer loop's variable is ``unrolled.iv.<name>``
and the retained inner loop's is ``unroll_inner.iv.<name>``; tiling uses
clang's ``.floor.<k>.iv.<name>`` / ``.tile.<k>.iv.<name>``.  Materialized
bounds are named ``.capture_expr.`` — these internal names are exactly what
leaks into diagnostics when a consuming context constant-evaluates the
shadow AST (the paper's ``read of non-const variable '.capture_expr.'``
example), which the tests reproduce.

Partial unrolling does **not** clone the body: the inner loop is kept and
annotated with ``LoopHintAttr(UnrollCount, factor)``; the code generator
lowers that to ``llvm.loop.unroll.count`` metadata and the mid-end
``LoopUnroll`` pass performs the duplication ("No duplication takes place
until that point").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.astlib import exprs as e
from repro.astlib import stmts as s
from repro.astlib.context import ASTContext
from repro.astlib.decls import VarDecl
from repro.astlib.tree_transform import TreeTransform
from repro.astlib.types import QualType, desugar
from repro.instrument import get_statistic
from repro.sema.canonical_loop import (
    CanonicalLoopAnalysis,
    LoopDirection,
)

_SHADOW_NODES = get_statistic(
    "shadow", "nodes-built", "Shadow AST nodes constructed"
)
_SHADOW_TRANSFORMS = get_statistic(
    "shadow", "transforms-built", "Shadow-AST loop transformations built"
)


@dataclass
class TransformResult:
    """Outcome of a shadow transform."""

    #: the generated loop nest (None when no generated loop remains, e.g.
    #: a full unroll)
    transformed_stmt: Optional[s.Stmt]
    #: declarations that must run before the generated loops
    pre_inits: Optional[s.Stmt]
    #: number of generated loops available for consumption by an outer
    #: directive
    num_generated_loops: int


class ShadowTransformBuilder:
    """Builds transformed ASTs for the OpenMP 5.1 loop transformations."""

    def __init__(self, ctx: ASTContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------
    # Small AST helpers
    # ------------------------------------------------------------------
    def _copy(self, expr: e.Expr) -> e.Expr:
        copy = TreeTransform().transform_expr(expr)
        assert copy is not None
        _SHADOW_NODES.inc()
        return copy

    def _int(self, value: int, ty: QualType) -> e.Expr:
        _SHADOW_NODES.inc()
        if value < 0:
            return e.UnaryOperator(
                e.UnaryOperatorKind.MINUS,
                e.IntegerLiteral(-value, ty),
                ty,
            )
        return e.IntegerLiteral(value, ty)

    def _ref(self, decl: VarDecl) -> e.DeclRefExpr:
        canonical = desugar(decl.type)
        _SHADOW_NODES.inc()
        return e.DeclRefExpr(
            decl, QualType(canonical.type), e.ValueCategory.LVALUE
        )

    def _load(self, decl: VarDecl) -> e.Expr:
        ref = self._ref(decl)
        return e.ImplicitCastExpr(
            e.CastKind.LVALUE_TO_RVALUE, ref, ref.type.unqualified()
        )

    def _cast_to(self, expr: e.Expr, ty: QualType) -> e.Expr:
        src = desugar(expr.type)
        dst = desugar(ty)
        if src.type is dst.type:
            return expr
        if src.is_pointer() or dst.is_pointer():
            kind = e.CastKind.BITCAST
        elif src.is_floating() and dst.is_integer():
            kind = e.CastKind.FLOATING_TO_INTEGRAL
        else:
            kind = e.CastKind.INTEGRAL_CAST
        return e.ImplicitCastExpr(kind, expr, ty)

    def _bin(
        self,
        op: e.BinaryOperatorKind,
        lhs: e.Expr,
        rhs: e.Expr,
        ty: QualType | None = None,
    ) -> e.Expr:
        result_ty = ty or lhs.type
        if op.is_comparison():
            result_ty = self.ctx.int_type
        _SHADOW_NODES.inc()
        return e.BinaryOperator(op, lhs, rhs, result_ty)

    # ------------------------------------------------------------------
    # Trip count (the "distance function" in shadow-AST form)
    # ------------------------------------------------------------------
    def build_trip_count_expr(
        self, analysis: CanonicalLoopAnalysis
    ) -> e.Expr:
        """``precond ? (ub - lb [+/- adj]) / step : 0`` in the unsigned
        logical iteration type.

        The precondition guard implements "evaluating to 0 if __begin is
        larger than __end" (paper §3.1); the unsigned type makes the
        INT32_MIN..INT32_MAX iteration space representable.
        """
        B = e.BinaryOperatorKind
        logical = analysis.logical_type
        lb = self._copy(analysis.lower_bound)
        ub = self._copy(analysis.upper_bound)
        step = self._copy(analysis.step)
        iter_canonical = desugar(analysis.iter_var.type)

        if analysis.is_inequality:
            # (ub - lb) / step, known to divide exactly per OpenMP rules.
            if iter_canonical.is_pointer():
                distance = self._bin(B.SUB, ub, lb, self.ctx.ptrdiff_type)
            else:
                distance = self._bin(B.SUB, ub, lb, ub.type)
            distance = self._cast_to(distance, logical)
            quotient = self._bin(
                B.DIV, distance, self._cast_to(step, logical), logical
            )
            return quotient

        up = analysis.direction == LoopDirection.UP
        # positive step magnitude
        if analysis.step_value is not None:
            magnitude: e.Expr = self._int(
                abs(analysis.step_value), logical
            )
        else:
            mag_src = (
                step
                if up
                else e.UnaryOperator(
                    e.UnaryOperatorKind.MINUS, step, step.type
                )
            )
            magnitude = self._cast_to(mag_src, logical)

        if iter_canonical.is_pointer():
            raw_distance = (
                self._bin(B.SUB, ub, lb, self.ctx.ptrdiff_type)
                if up
                else self._bin(B.SUB, lb, ub, self.ctx.ptrdiff_type)
            )
        else:
            raw_distance = (
                self._bin(B.SUB, ub, lb, ub.type)
                if up
                else self._bin(B.SUB, lb, ub, lb.type)
            )
        distance = self._cast_to(raw_distance, logical)
        if analysis.inclusive:
            distance = self._bin(
                B.ADD, distance, e.IntegerLiteral(1, logical), logical
            )
        # ceil-div: (distance + magnitude - 1) / magnitude
        numerator = self._bin(
            B.SUB,
            self._bin(B.ADD, distance, self._copy(magnitude), logical),
            e.IntegerLiteral(1, logical),
            logical,
        )
        quotient = self._bin(B.DIV, numerator, magnitude, logical)

        # Precondition: does at least one iteration run?
        cmp_op = {
            (True, False): B.LT,
            (True, True): B.LE,
            (False, False): B.GT,
            (False, True): B.GE,
        }[(up, analysis.inclusive)]
        precond = self._bin(
            cmp_op,
            self._copy(analysis.lower_bound),
            self._copy(analysis.upper_bound),
        )
        return e.ConditionalOperator(
            precond,
            quotient,
            e.IntegerLiteral(0, logical),
            logical,
        )

    def materialize_trip_count(
        self, analysis: CanonicalLoopAnalysis
    ) -> tuple[VarDecl, s.Stmt]:
        """Bind the trip count to a ``.capture_expr.`` variable evaluated
        once before the generated loops (clang materializes such bounds the
        same way — and its internal name is what leaks into diagnostics,
        paper §2).

        When the trip count folds to a constant the variable is declared
        ``const`` with a literal initializer, so an enclosing directive
        that needs a constant trip count (e.g. ``unroll full``) can see
        through it.  A runtime trip count stays non-const — and a consumer
        that constant-evaluates it then reports exactly the paper's
        ``read of non-const variable '.capture_expr.'`` diagnostic.
        """
        from repro.sema.expr_eval import IntExprEvaluator

        trip = self.build_trip_count_expr(analysis)
        folded = IntExprEvaluator(self.ctx).try_evaluate(trip)
        ty = analysis.logical_type
        if folded is not None:
            trip = e.IntegerLiteral(folded, ty)
            ty = ty.with_const()
        decl = VarDecl(".capture_expr.", ty, trip)
        decl.is_implicit = True
        return decl, s.DeclStmt([decl])

    # ------------------------------------------------------------------
    # User iteration variable reconstruction
    # ------------------------------------------------------------------
    def _rebuild_user_var(
        self,
        analysis: CanonicalLoopAnalysis,
        logical_ref: e.Expr,
    ) -> tuple[VarDecl, s.Stmt]:
        """``T i = lb + logical * step;`` — converts a logical iteration
        number back into the loop user variable (the same role as the
        canonical representation's user value function)."""
        B = e.BinaryOperatorKind
        var = analysis.iter_var
        var_ty = QualType(desugar(var.type).type)
        step = self._copy(analysis.step)
        if desugar(var_ty).is_pointer():
            offset = self._cast_to(logical_ref, self.ctx.ptrdiff_type)
            scaled = self._bin(
                B.MUL, offset, self._cast_to(step, self.ctx.ptrdiff_type),
                self.ctx.ptrdiff_type,
            )
            value = self._bin(
                B.ADD, self._copy(analysis.lower_bound), scaled, var_ty
            )
        else:
            scaled = self._bin(
                B.MUL,
                self._cast_to(logical_ref, var_ty),
                self._cast_to(step, var_ty),
                var_ty,
            )
            value = self._bin(
                B.ADD,
                self._cast_to(self._copy(analysis.lower_bound), var_ty),
                scaled,
                var_ty,
            )
        new_var = VarDecl(var.name, var.type, value)
        return new_var, s.DeclStmt([new_var])

    def _rebuild_user_env(
        self,
        analysis: CanonicalLoopAnalysis,
        logical_ref: e.Expr,
    ) -> tuple[list[s.Stmt], dict[int, VarDecl], list]:
        """Re-materialize the per-iteration user environment.

        For a literal for-loop that is the iteration variable itself; a
        range-based for-loop additionally re-declares the *loop user
        variable* (``T &Val = *__begin;``) from the rebuilt iterator.
        Returns (statements, substitution map for TreeTransform,
        (old, new) decl pairs for CodeGen redirection).
        """
        new_iter, iter_stmt = self._rebuild_user_var(
            analysis, logical_ref
        )
        stmts: list[s.Stmt] = [iter_stmt]
        subs: dict[int, VarDecl] = {id(analysis.iter_var): new_iter}
        pairs: list = [(analysis.iter_var, new_iter)]
        if isinstance(analysis.loop_stmt, s.CXXForRangeStmt):
            loop_var = analysis.loop_stmt.loop_variable
            tt = TreeTransform()
            tt.substitute_decl(analysis.iter_var, new_iter)
            new_init = tt.transform_expr(loop_var.init)
            new_loop_var = VarDecl(
                loop_var.name, loop_var.type, new_init
            )
            stmts.append(s.DeclStmt([new_loop_var]))
            subs[id(loop_var)] = new_loop_var
            pairs.append((loop_var, new_loop_var))
        return stmts, subs, pairs

    def _remap_body(
        self,
        analysis: CanonicalLoopAnalysis,
        subs: dict[int, VarDecl],
    ) -> s.Stmt:
        """Copy the loop body, remapping the old iteration/user variables
        to the freshly declared ones (TreeTransform, paper §1.3/§2)."""
        transform = TreeTransform()
        for key, new_var in subs.items():
            transform.decl_substitutions[key] = new_var
        body = transform.transform_stmt(analysis.body)
        assert body is not None
        return body

    # ------------------------------------------------------------------
    # Unroll (paper §2.1, Listing "transformedast")
    # ------------------------------------------------------------------
    def build_unroll_partial(
        self,
        analysis: CanonicalLoopAnalysis,
        factor: int,
    ) -> TransformResult:
        """Strip-mine by *factor*; keep the inner loop and annotate it with
        ``LoopHintAttr(UnrollCount, factor)`` instead of cloning the body.
        """
        assert factor >= 1
        B = e.BinaryOperatorKind
        logical = analysis.logical_type
        var_name = analysis.iter_var.name

        trip_decl, pre_inits = self.materialize_trip_count(analysis)

        # Outer loop: for (L unrolled.iv.i = 0; iv < trip; iv += factor)
        outer_var = VarDecl(
            f"unrolled.iv.{var_name}",
            logical,
            e.IntegerLiteral(0, logical),
        )
        outer_var.is_implicit = True
        outer_cond = self._bin(
            B.LT, self._load(outer_var), self._load(trip_decl)
        )
        outer_inc = e.CompoundAssignOperator(
            B.ADD_ASSIGN,
            self._ref(outer_var),
            e.IntegerLiteral(factor, logical),
            logical,
            logical,
        )

        # Inner loop:
        # for (L unroll_inner.iv.i = unrolled.iv.i;
        #      inner < unrolled.iv.i + factor && inner < trip; ++inner)
        inner_var = VarDecl(
            f"unroll_inner.iv.{var_name}", logical, self._load(outer_var)
        )
        inner_var.is_implicit = True
        inner_cond = self._bin(
            B.LAND,
            self._bin(
                B.LT,
                self._load(inner_var),
                self._bin(
                    B.ADD,
                    self._load(outer_var),
                    e.IntegerLiteral(factor, logical),
                    logical,
                ),
            ),
            self._bin(B.LT, self._load(inner_var), self._load(trip_decl)),
            self.ctx.int_type,
        )
        inner_inc = e.UnaryOperator(
            e.UnaryOperatorKind.PRE_INC,
            self._ref(inner_var),
            logical,
        )

        env_stmts, subs, _ = self._rebuild_user_env(
            analysis, self._load(inner_var)
        )
        body = self._remap_body(analysis, subs)
        inner_body = s.CompoundStmt([*env_stmts, body])
        inner_loop = s.ForStmt(
            s.DeclStmt([inner_var]), inner_cond, inner_inc, inner_body
        )
        annotated = s.AttributedStmt(
            [
                s.LoopHintAttr(
                    s.LoopHintAttr.UNROLL_COUNT,
                    e.IntegerLiteral(factor, self.ctx.int_type),
                )
            ],
            inner_loop,
        )
        outer_loop = s.ForStmt(
            s.DeclStmt([outer_var]), outer_cond, outer_inc, annotated
        )
        return TransformResult(outer_loop, pre_inits, 1)

    def build_unroll_full(
        self, analysis: CanonicalLoopAnalysis
    ) -> TransformResult:
        """Full unroll: there is **no generated loop** that another
        directive could be associated with (paper §1.1), so no transformed
        AST is produced; CodeGen emits the loop with
        ``llvm.loop.unroll.enable``/full metadata and the mid-end pass
        performs the expansion (paper §2.2)."""
        return TransformResult(None, None, 0)

    # ------------------------------------------------------------------
    # Tile (paper §1.1: generates twice as many loops)
    # ------------------------------------------------------------------
    def build_tile(
        self,
        analyses: list[CanonicalLoopAnalysis],
        sizes: list[int],
    ) -> TransformResult:
        """Tile an n-deep perfect nest with the given tile sizes.

        Generates ``2n`` loops: n *floor* loops iterating tile origins over
        each logical iteration space, then n *tile* (intra-tile) loops::

            for (.floor.0.iv.i = 0; < tc_i; += size_0)
              for (.floor.1.iv.j = 0; < tc_j; += size_1)
                for (.tile.0.iv.i = floor0; < min(floor0+size_0, tc_i); ++)
                  for (.tile.1.iv.j = floor1; < min(...); ++) body

        ``min`` is expressed as a conjunction in the condition, exactly as
        the shadow-AST unroll does.
        """
        assert len(analyses) == len(sizes) and analyses
        B = e.BinaryOperatorKind
        n = len(analyses)

        pre_stmts: list[s.Stmt] = []
        trip_decls: list[VarDecl] = []
        for analysis in analyses:
            decl, stmt = self.materialize_trip_count(analysis)
            trip_decls.append(decl)
            pre_stmts.append(stmt)

        floor_vars: list[VarDecl] = []
        tile_vars: list[VarDecl] = []
        for k, (analysis, size) in enumerate(zip(analyses, sizes)):
            logical = analysis.logical_type
            name = analysis.iter_var.name
            fv = VarDecl(
                f".floor.{k}.iv.{name}",
                logical,
                e.IntegerLiteral(0, logical),
            )
            fv.is_implicit = True
            floor_vars.append(fv)
            tv = VarDecl(f".tile.{k}.iv.{name}", logical, None)
            tv.is_implicit = True
            tile_vars.append(tv)

        # Innermost body: re-materialize each user variable then the body.
        transform = TreeTransform()
        body_stmts: list[s.Stmt] = []
        for k, analysis in enumerate(analyses):
            env_stmts, subs, _ = self._rebuild_user_env(
                analysis, self._load(tile_vars[k])
            )
            for key, new_var in subs.items():
                transform.decl_substitutions[key] = new_var
            body_stmts.extend(env_stmts)
        innermost_body = transform.transform_stmt(analyses[-1].body)
        assert innermost_body is not None
        body_stmts.append(innermost_body)
        current: s.Stmt = s.CompoundStmt(body_stmts)

        # Tile loops, innermost outwards.
        for k in range(n - 1, -1, -1):
            analysis, size = analyses[k], sizes[k]
            logical = analysis.logical_type
            tv = tile_vars[k]
            tv.init = self._load(floor_vars[k])
            cond = self._bin(
                B.LAND,
                self._bin(
                    B.LT,
                    self._load(tv),
                    self._bin(
                        B.ADD,
                        self._load(floor_vars[k]),
                        e.IntegerLiteral(size, logical),
                        logical,
                    ),
                ),
                self._bin(
                    B.LT, self._load(tv), self._load(trip_decls[k])
                ),
                self.ctx.int_type,
            )
            inc = e.UnaryOperator(
                e.UnaryOperatorKind.PRE_INC, self._ref(tv), logical
            )
            current = s.ForStmt(s.DeclStmt([tv]), cond, inc, current)

        # Floor loops, innermost outwards.
        for k in range(n - 1, -1, -1):
            analysis, size = analyses[k], sizes[k]
            logical = analysis.logical_type
            fv = floor_vars[k]
            cond = self._bin(
                B.LT, self._load(fv), self._load(trip_decls[k])
            )
            inc = e.CompoundAssignOperator(
                B.ADD_ASSIGN,
                self._ref(fv),
                e.IntegerLiteral(size, logical),
                logical,
                logical,
            )
            current = s.ForStmt(s.DeclStmt([fv]), cond, inc, current)

        return TransformResult(
            current, s.CompoundStmt(pre_stmts), 2 * n
        )


    # ------------------------------------------------------------------
    # OpenMP 6.0 extensions (paper §4 future work)
    # ------------------------------------------------------------------
    def build_reverse(
        self, analysis: CanonicalLoopAnalysis
    ) -> TransformResult:
        """``omp reverse``: iterate the logical space backwards.

        Generated loop::

            for (L rev.iv = 0; rev.iv < trip; ++rev.iv) {
              T i = lb + (trip - 1 - rev.iv) * step;
              body
            }
        """
        B = e.BinaryOperatorKind
        logical = analysis.logical_type
        name = analysis.iter_var.name
        trip_decl, pre_inits = self.materialize_trip_count(analysis)

        rev_var = VarDecl(
            f"reversed.iv.{name}",
            logical,
            e.IntegerLiteral(0, logical),
        )
        rev_var.is_implicit = True
        cond = self._bin(
            B.LT, self._load(rev_var), self._load(trip_decl)
        )
        inc = e.UnaryOperator(
            e.UnaryOperatorKind.PRE_INC, self._ref(rev_var), logical
        )
        mirrored = self._bin(
            B.SUB,
            self._bin(
                B.SUB,
                self._load(trip_decl),
                e.IntegerLiteral(1, logical),
                logical,
            ),
            self._load(rev_var),
            logical,
        )
        env_stmts, subs, _ = self._rebuild_user_env(analysis, mirrored)
        body = self._remap_body(analysis, subs)
        loop = s.ForStmt(
            s.DeclStmt([rev_var]),
            cond,
            inc,
            s.CompoundStmt([*env_stmts, body]),
        )
        return TransformResult(loop, pre_inits, 1)

    def build_fuse(
        self, analyses: list[CanonicalLoopAnalysis]
    ) -> TransformResult:
        """``omp fuse``: merge a *sequence* of canonical loops (paper §4).

        Generated loop (OpenMP 6.0 semantics: iterate the union of the
        logical spaces; each body guarded by its own trip count)::

            L tcK = <distance K>; ...            // pre-inits
            for (L fused.iv = 0; fused.iv < max(tc...); ++fused.iv) {
              if (fused.iv < tc1) { T1 i = ...; body1 }
              if (fused.iv < tc2) { T2 j = ...; body2 }
            }
        """
        assert analyses
        B = e.BinaryOperatorKind
        logical = max(
            (a.logical_type for a in analyses),
            key=lambda t: self.ctx.type_width(t),
        )
        pre_stmts: list[s.Stmt] = []
        trip_decls: list[VarDecl] = []
        for analysis in analyses:
            decl, stmt = self.materialize_trip_count(analysis)
            trip_decls.append(decl)
            pre_stmts.append(stmt)
        # max of the trip counts, via chained conditionals (the AST is
        # immutable, so each use of the running max is a fresh copy).
        max_expr: e.Expr = self._cast_to(
            self._load(trip_decls[0]), logical
        )
        for decl in trip_decls[1:]:
            running_copy = TreeTransform().transform_expr(max_expr)
            rhs = self._cast_to(self._load(decl), logical)
            max_expr = e.ConditionalOperator(
                self._bin(B.LT, max_expr, rhs),
                rhs,
                running_copy,
                logical,
            )
        max_decl = VarDecl(".fuse.max", logical, max_expr)
        max_decl.is_implicit = True
        pre_stmts.append(s.DeclStmt([max_decl]))

        fused_var = VarDecl(
            "fused.iv", logical, e.IntegerLiteral(0, logical)
        )
        fused_var.is_implicit = True
        cond = self._bin(
            B.LT, self._load(fused_var), self._load(max_decl)
        )
        inc = e.UnaryOperator(
            e.UnaryOperatorKind.PRE_INC, self._ref(fused_var), logical
        )
        guarded: list[s.Stmt] = []
        for k, analysis in enumerate(analyses):
            guard = self._bin(
                B.LT,
                self._cast_to(self._load(fused_var), logical),
                self._cast_to(self._load(trip_decls[k]), logical),
            )
            env_stmts, subs, _ = self._rebuild_user_env(
                analysis,
                self._cast_to(
                    self._load(fused_var), analysis.logical_type
                ),
            )
            body = self._remap_body(analysis, subs)
            guarded.append(
                s.IfStmt(
                    guard, s.CompoundStmt([*env_stmts, body])
                )
            )
        loop = s.ForStmt(
            s.DeclStmt([fused_var]),
            cond,
            inc,
            s.CompoundStmt(guarded),
        )
        return TransformResult(loop, s.CompoundStmt(pre_stmts), 1)

    def build_interchange(
        self,
        analyses: list[CanonicalLoopAnalysis],
        permutation: list[int],
    ) -> TransformResult:
        """``omp interchange permutation(...)``: permute a perfect nest.

        *permutation* is 0-based: position k of the generated nest runs
        the original loop ``permutation[k]``.  The generated loops iterate
        each original logical space; user variables are re-materialized in
        the innermost body, so the permutation is purely an order change.
        """
        assert sorted(permutation) == list(range(len(analyses)))
        B = e.BinaryOperatorKind
        pre_stmts: list[s.Stmt] = []
        trip_decls: list[VarDecl] = []
        for analysis in analyses:
            decl, stmt = self.materialize_trip_count(analysis)
            trip_decls.append(decl)
            pre_stmts.append(stmt)

        new_vars: list[VarDecl] = []
        for k, analysis in enumerate(analyses):
            logical = analysis.logical_type
            var = VarDecl(
                f"interchanged.iv.{analysis.iter_var.name}",
                logical,
                e.IntegerLiteral(0, logical),
            )
            var.is_implicit = True
            new_vars.append(var)

        transform_subs: dict[int, VarDecl] = {}
        body_stmts: list[s.Stmt] = []
        for k, analysis in enumerate(analyses):
            env_stmts, subs, _ = self._rebuild_user_env(
                analysis, self._load(new_vars[k])
            )
            transform_subs.update(subs)
            body_stmts.extend(env_stmts)
        body = self._remap_body(analyses[-1], transform_subs)
        body_stmts.append(body)
        current: s.Stmt = s.CompoundStmt(body_stmts)

        for k in reversed(permutation):
            analysis = analyses[k]
            logical = analysis.logical_type
            var = new_vars[k]
            cond = self._bin(
                B.LT, self._load(var), self._load(trip_decls[k])
            )
            inc = e.UnaryOperator(
                e.UnaryOperatorKind.PRE_INC, self._ref(var), logical
            )
            current = s.ForStmt(s.DeclStmt([var]), cond, inc, current)

        return TransformResult(
            current, s.CompoundStmt(pre_stmts), len(analyses)
        )


# ---------------------------------------------------------------------------
# Convenience entry points (used by OpenMPSema and by library users)
# ---------------------------------------------------------------------------
def build_unroll_transform(
    ctx: ASTContext,
    analysis: CanonicalLoopAnalysis,
    factor: int | None,
    full: bool,
) -> TransformResult:
    """Build the shadow transformed AST for ``omp unroll``.

    ``factor=None`` with ``full=False`` is the heuristic mode; when the
    result must be consumable the caller passes the implementation-chosen
    factor (the current implementation uses two — paper §2.2).
    """
    _SHADOW_TRANSFORMS.inc()
    builder = ShadowTransformBuilder(ctx)
    if full:
        return builder.build_unroll_full(analysis)
    if factor is None:
        return TransformResult(None, None, 0)
    return builder.build_unroll_partial(analysis, factor)


def build_tile_transform(
    ctx: ASTContext,
    analyses: list[CanonicalLoopAnalysis],
    sizes: list[int],
) -> TransformResult:
    """Build the shadow transformed AST for ``omp tile sizes(...)``."""
    _SHADOW_TRANSFORMS.inc()
    return ShadowTransformBuilder(ctx).build_tile(analyses, sizes)


def build_reverse_transform(
    ctx: ASTContext, analysis: CanonicalLoopAnalysis
) -> TransformResult:
    """Build the shadow transformed AST for ``omp reverse`` (6.0 ext)."""
    _SHADOW_TRANSFORMS.inc()
    return ShadowTransformBuilder(ctx).build_reverse(analysis)


def build_fuse_transform(
    ctx: ASTContext, analyses: list[CanonicalLoopAnalysis]
) -> TransformResult:
    """Build the shadow transformed AST for ``omp fuse`` (6.0 ext)."""
    _SHADOW_TRANSFORMS.inc()
    return ShadowTransformBuilder(ctx).build_fuse(analyses)


def build_interchange_transform(
    ctx: ASTContext,
    analyses: list[CanonicalLoopAnalysis],
    permutation: list[int],
) -> TransformResult:
    """Build the shadow transformed AST for ``omp interchange`` (6.0)."""
    _SHADOW_TRANSFORMS.inc()
    return ShadowTransformBuilder(ctx).build_interchange(
        analyses, permutation
    )


#: The unroll factor chosen when a consumed ``omp unroll`` has no
#: ``partial`` argument ("The current implementation uses the unroll factor
#: of two in this case.  Future improvements may implement a better
#: heuristic." — paper §2.2).
DEFAULT_CONSUMED_UNROLL_FACTOR = 2
