"""Crash resilience: recovery scopes, pretty stacks, crash reproducers.

Modeled on three Clang/LLVM facilities:

* ``llvm::CrashRecoveryContext`` — run a pipeline phase so that an
  unexpected exception is contained instead of killing the process:
  :func:`recovery_scope`.
* ``llvm::PrettyStackTraceEntry`` — a stack of human-readable scope
  descriptions ("...while analysing '#pragma omp tile' at t.c:4:9")
  maintained by every layer and snapshotted into the internal compiler
  error report: :func:`pretty_stack_entry`.
* ``clang -gen-reproducer`` / ``CC_PRINT_HEADERS`` crash dumps — a
  self-contained reproducer (source + invocation line + Python
  traceback + pretty stack) written into the crash-reproducer
  directory: :func:`write_reproducer`.

Two recovery modes:

* **propagate** (default): the scope converts the exception into an
  :class:`InternalCompilerError` carrying the pretty stack, traceback
  text and reproducer path; the driver maps it to the dedicated ICE
  exit code (70) and batch drivers move on to the next input.
* **recover** (``recover=True``, used per OpenMP directive and per
  CodeGen function): the scope emits an ``internal compiler error:``
  *diagnostic* (category ``"ice"``) into the shared
  :class:`~repro.diagnostics.DiagnosticsEngine` and lets compilation of
  the remaining directives/functions continue — one crashing construct
  costs one error, not the whole translation unit.

Control-flow exceptions of the compiler itself (fatal diagnostics,
``-ferror-limit`` aborts, nested ICEs) always pass through unchanged;
callers add layer-specific pass-throughs (e.g. guest traps during
interpretation) via the ``passthrough`` parameter.
"""

from __future__ import annotations

import os
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.diagnostics import (
    Diagnostic,
    FatalErrorOccurred,
    Severity,
    TooManyErrors,
)
from repro.instrument.stats import get_statistic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.diagnostics import DiagnosticsEngine
    from repro.sourcemgr.location import SourceLocation

_ICES = get_statistic(
    "crash-recovery", "ices", "Internal compiler errors contained"
)
_REPRODUCERS = get_statistic(
    "crash-recovery",
    "reproducers-written",
    "Crash reproducer directories written",
)

#: master switch (`-fno-crash-recovery`): when False, recovery scopes
#: re-raise the original exception so compiler developers get the raw
#: Python traceback and an honest debugger stop.
_ENABLED = True


def set_crash_recovery_enabled(enabled: bool) -> None:
    global _ENABLED
    _ENABLED = enabled


def crash_recovery_enabled() -> bool:
    return _ENABLED


# ----------------------------------------------------------------------
# Pretty stack (PrettyStackTraceEntry)
# ----------------------------------------------------------------------
_PRETTY_STACK: list[str] = []


@contextmanager
def pretty_stack_entry(text: str) -> Iterator[None]:
    """Push one scope description for the duration of the block.

    Clang's PrettyStackTrace dumps at crash point (signal time); the
    Python analogue is stapling a snapshot onto the escaping exception
    at the *innermost* entry's unwind, before any entry is popped, so a
    recovery scope further out still sees the full chain."""
    _PRETTY_STACK.append(text)
    try:
        yield
    except BaseException as exc:
        if not hasattr(exc, "_pretty_stack"):
            exc._pretty_stack = list(_PRETTY_STACK)
        raise
    finally:
        _PRETTY_STACK.pop()


def pretty_stack() -> list[str]:
    """Innermost-last snapshot of the active scope descriptions."""
    return list(_PRETTY_STACK)


def format_location(
    source_manager, loc: Optional["SourceLocation"]
) -> str:
    """``file:line:col`` best effort for pretty-stack entries."""
    if loc is None or not loc.is_valid() or source_manager is None:
        return "<unknown>"
    ploc = source_manager.get_presumed_loc(loc)
    return f"{ploc.filename}:{ploc.line}:{ploc.column}"


# ----------------------------------------------------------------------
# Crash context + reproducer writing
# ----------------------------------------------------------------------
@dataclass
class CrashContext:
    """What a reproducer needs to be self-contained."""

    source: str
    filename: str
    invocation: str
    reproducer_dir: Optional[str]
    #: per-context sequence number for deterministic reproducer names
    crashes_written: int = 0


_CONTEXT: list[CrashContext] = []


@contextmanager
def crash_context(
    source: str,
    filename: str,
    invocation: str | None,
    reproducer_dir: str | None,
) -> Iterator[CrashContext]:
    ctx = CrashContext(
        source=source,
        filename=filename,
        invocation=invocation
        or f"miniclang {filename}  # (library invocation)",
        reproducer_dir=reproducer_dir,
    )
    _CONTEXT.append(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.pop()


def current_crash_context() -> CrashContext | None:
    return _CONTEXT[-1] if _CONTEXT else None


def write_reproducer(
    phase: str,
    cause: BaseException,
    traceback_text: str,
    stack: list[str] | None = None,
) -> str | None:
    """Write a self-contained crash reproducer directory.

    Layout (all plain text, loadable with ``miniclang $(cat cmd)``)::

        <dir>/<stem>-<phase>-NNN/repro.c      the source being compiled
        <dir>/<stem>-<phase>-NNN/cmd          the invocation line
        <dir>/<stem>-<phase>-NNN/traceback.txt  Python traceback + stack

    Returns the reproducer path, or None when no crash context / dir is
    configured or the write itself fails (a crash handler must never
    crash).
    """
    ctx = current_crash_context()
    if ctx is None or not ctx.reproducer_dir:
        return None
    try:
        stem = os.path.splitext(os.path.basename(ctx.filename))[0]
        stem = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in stem
        ) or "input"
        ctx.crashes_written += 1
        crash_dir = os.path.join(
            ctx.reproducer_dir,
            f"{stem}-{phase}-{ctx.crashes_written:03d}",
        )
        os.makedirs(crash_dir, exist_ok=True)
        with open(
            os.path.join(crash_dir, "repro.c"), "w", encoding="utf-8"
        ) as fh:
            fh.write(ctx.source)
        with open(
            os.path.join(crash_dir, "cmd"), "w", encoding="utf-8"
        ) as fh:
            fh.write(ctx.invocation + "\n")
        with open(
            os.path.join(crash_dir, "traceback.txt"),
            "w",
            encoding="utf-8",
        ) as fh:
            fh.write(
                f"phase: {phase}\n"
                f"exception: {type(cause).__name__}: {cause}\n\n"
            )
            entries = stack if stack is not None else pretty_stack()
            for depth, entry in enumerate(entries):
                fh.write(f"{depth}.\t{entry}\n")
            fh.write("\n" + traceback_text)
        _REPRODUCERS.inc()
        return crash_dir
    except Exception:  # pragma: no cover - defensive: never re-crash
        return None


# ----------------------------------------------------------------------
# The ICE exception + recovery scope (CrashRecoveryContext)
# ----------------------------------------------------------------------
class InternalCompilerError(Exception):
    """An unexpected exception contained by a recovery scope."""

    def __init__(
        self,
        phase: str,
        cause: BaseException,
        stack: list[str],
        traceback_text: str,
        reproducer_path: str | None = None,
    ) -> None:
        super().__init__(
            f"internal compiler error in {phase}: "
            f"{type(cause).__name__}: {cause}"
        )
        self.phase = phase
        self.cause = cause
        self.stack = stack
        self.traceback_text = traceback_text
        self.reproducer_path = reproducer_path
        # Captured here: render() typically runs after the crash
        # context was torn down.
        ctx = current_crash_context()
        self.invocation = ctx.invocation if ctx is not None else None

    def render(self, program: str = "miniclang") -> str:
        """Clang-flavoured ICE report (no raw Python traceback)."""
        lines = [f"{program}: error: {self}", "Stack dump:"]
        invocation = self.invocation
        depth = 0
        if invocation:
            lines.append(f"{depth}.\tProgram arguments: {invocation}")
            depth += 1
        for entry in self.stack:
            lines.append(f"{depth}.\t{entry}")
            depth += 1
        if self.reproducer_path is not None:
            lines.append(
                f"{program}: note: diagnostic msg: crash reproducer "
                f"written to: {self.reproducer_path}"
            )
        lines.append(
            f"{program}: note: please attach the reproducer directory "
            "when filing a bug report"
        )
        return "\n".join(lines)


#: compiler control-flow exceptions that recovery must never swallow
_ALWAYS_PASSTHROUGH: tuple[type[BaseException], ...] = (
    FatalErrorOccurred,
    TooManyErrors,
    InternalCompilerError,
)


def _contain(
    phase: str,
    exc: BaseException,
    diags: Optional["DiagnosticsEngine"],
    recover: bool,
    location: Optional["SourceLocation"],
) -> InternalCompilerError | None:
    """Build the ICE record; returns it for propagation, or None when it
    was absorbed as a diagnostic (recover mode)."""
    _ICES.inc()
    tb_text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    stack = getattr(exc, "_pretty_stack", None) or pretty_stack()
    reproducer = write_reproducer(phase, exc, tb_text, stack)
    if recover and diags is not None:
        diag = Diagnostic(
            Severity.ERROR,
            f"internal compiler error in {phase}: "
            f"{type(exc).__name__}: {exc}",
            location,
            category="ice",
        )
        for entry in reversed(stack):
            diag.add_note(entry, None)
        if reproducer is not None:
            diag.add_note(
                f"crash reproducer written to: {reproducer}", None
            )
        # Append directly: an ICE must not trip -ferror-limit re-entry
        # or -Werror remapping.
        diags.diagnostics.append(diag)
        return None
    return InternalCompilerError(phase, exc, stack, tb_text, reproducer)


@contextmanager
def recovery_scope(
    phase: str,
    diags: Optional["DiagnosticsEngine"] = None,
    *,
    recover: bool = False,
    location: Optional["SourceLocation"] = None,
    passthrough: tuple[type[BaseException], ...] = (),
) -> Iterator[None]:
    """Run a pipeline phase under crash recovery.

    ``recover=True`` (needs ``diags``) absorbs the crash as an ICE
    diagnostic and resumes after the scope; otherwise the scope raises
    :class:`InternalCompilerError`.  Exceptions in ``passthrough`` and
    the compiler's own control-flow exceptions propagate unchanged, as
    does everything when crash recovery is disabled
    (``-fno-crash-recovery``).
    """
    try:
        yield
    except _ALWAYS_PASSTHROUGH:
        raise
    except passthrough:
        raise
    except Exception as exc:
        if not _ENABLED:
            raise
        ice = _contain(phase, exc, diags, recover, location)
        if ice is not None:
            raise ice from exc
