"""The wire protocol: length-prefixed JSON frames.

Frame layout (all integers big-endian)::

    offset 0  2 bytes   magic  b"MC"
    offset 2  1 byte    protocol version (PROTOCOL_VERSION)
    offset 3  1 byte    reserved, must be 0 on send, ignored on receive
    offset 4  4 bytes   payload length N
    offset 8  N bytes   payload: one UTF-8 JSON object

Design stance: the decoder is *total* over untrusted input.  Arbitrary
byte noise, truncated frames, oversized declared lengths, non-UTF-8 or
non-object payloads all come out of :meth:`FrameDecoder.feed` as
structured :class:`FrameError` records, never exceptions — the server
turns them into error frames (or an eviction), the connection survives
whenever the stream can be resynchronized, and the property tests in
``tests/property/test_net_protocol.py`` hold the decoder to exactly
this contract.

Resynchronization: after garbage the decoder scans forward for the next
magic, coalescing the skipped run into a single ``bad-magic`` error.
Framed-but-unusable payloads (wrong version, undecodable JSON) skip
exactly the declared payload, so the stream stays aligned.  A declared
length over ``max_frame_bytes`` cannot be trusted enough to skip — the
decoder reports ``oversized-frame`` and re-enters the scan; the server
additionally treats it as connection-fatal.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field, fields as dc_fields
from typing import Iterable, Optional, Union

from repro.service.request import CompileRequest

#: bump when the frame payload schema changes incompatibly
PROTOCOL_VERSION = 1

MAGIC = b"MC"
_HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = _HEADER.size  # 8

#: default hard cap on one frame's payload (sources are small; anything
#: bigger is an attack or a bug)
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024


class ProtocolError(Exception):
    """A peer violated the protocol in a way the caller must handle."""


class FrameTooLarge(ProtocolError):
    """Refusing to *encode* a frame over the configured maximum."""


@dataclass(frozen=True)
class FrameError:
    """One structured decode failure.

    ``code`` is a stable token: ``bad-magic`` (garbage skipped until the
    next magic), ``bad-version`` (unknown protocol stamp; the frame was
    skipped), ``oversized-frame`` (declared length over the cap; the
    decoder resynchronizes by scanning), ``bad-payload`` (framing was
    fine, the payload was not a UTF-8 JSON object).  ``fatal`` marks
    errors after which the server should drop the connection.
    """

    code: str
    detail: str = ""
    skipped: int = 0
    fatal: bool = False


Event = Union[dict, FrameError]


def encode_frame(
    payload: dict,
    *,
    version: int = PROTOCOL_VERSION,
    max_frame_bytes: Optional[int] = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Serialize one JSON-object payload into a wire frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if max_frame_bytes is not None and len(body) > max_frame_bytes:
        raise FrameTooLarge(
            f"frame payload is {len(body)} bytes, cap is "
            f"{max_frame_bytes}"
        )
    return _HEADER.pack(MAGIC, version, 0, len(body)) + body


class FrameDecoder:
    """Incremental, resyncing frame decoder over an untrusted stream.

    Feed arbitrary chunks; get back decoded payload dicts and
    :class:`FrameError` records, in stream order.  Never raises on
    input bytes.  Chunking is irrelevant: any split of the same byte
    stream produces the same event sequence.
    """

    def __init__(
        self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    ) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        #: bytes skipped in the current desync run (None = in sync)
        self._desync_skipped: Optional[int] = None
        #: non-None while skipping a framed-but-unusable payload:
        #: (bytes still to discard, the error to emit once skipped)
        self._skip: Optional[tuple[int, FrameError]] = None
        #: total well-formed frames decoded
        self.frames_decoded = 0
        #: total FrameError events produced
        self.errors = 0

    @property
    def mid_frame(self) -> bool:
        """True when bytes of an incomplete frame are pending — the
        signal the server's slow-loris timer keys on."""
        return len(self._buffer) > 0 or self._skip is not None

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    # ------------------------------------------------------------------
    def _emit_error(
        self, events: list[Event], error: FrameError
    ) -> None:
        self.errors += 1
        events.append(error)

    def _end_desync(self, events: list[Event]) -> None:
        if self._desync_skipped is not None:
            self._emit_error(
                events,
                FrameError(
                    "bad-magic",
                    f"skipped {self._desync_skipped} byte(s) of "
                    "garbage before the next frame boundary",
                    skipped=self._desync_skipped,
                ),
            )
            self._desync_skipped = None

    def feed(self, data: bytes) -> list[Event]:
        """Consume *data*; return the events it completed."""
        self._buffer.extend(data)
        events: list[Event] = []
        while True:
            if self._skip is not None:
                to_skip, error = self._skip
                take = min(to_skip, len(self._buffer))
                del self._buffer[:take]
                to_skip -= take
                if to_skip:
                    self._skip = (to_skip, error)
                    break
                self._skip = None
                self._emit_error(events, error)
                continue
            if self._desync_skipped is not None:
                # Scan for the next magic; keep a tail shorter than the
                # magic in case it straddles the chunk boundary.
                pos = bytes(self._buffer).find(MAGIC)
                if pos < 0:
                    drop = max(0, len(self._buffer) - (len(MAGIC) - 1))
                    self._desync_skipped += drop
                    del self._buffer[:drop]
                    break
                self._desync_skipped += pos
                del self._buffer[:pos]
                self._end_desync(events)
                continue
            if len(self._buffer) < HEADER_SIZE:
                break
            magic, version, _reserved, length = _HEADER.unpack_from(
                self._buffer
            )
            if magic != MAGIC:
                # Enter desync: skip at least one byte so the scan
                # cannot loop on the same spot.
                self._desync_skipped = 0
                del self._buffer[:1]
                self._desync_skipped += 1
                continue
            if length > self.max_frame_bytes:
                self._emit_error(
                    events,
                    FrameError(
                        "oversized-frame",
                        f"declared payload of {length} bytes exceeds "
                        f"the {self.max_frame_bytes}-byte cap",
                        fatal=True,
                    ),
                )
                # The length cannot be trusted; drop the header and
                # scan for the next plausible frame.
                del self._buffer[:HEADER_SIZE]
                self._desync_skipped = 0
                continue
            if len(self._buffer) < HEADER_SIZE + length:
                break
            body = bytes(self._buffer[HEADER_SIZE : HEADER_SIZE + length])
            del self._buffer[: HEADER_SIZE + length]
            if version != PROTOCOL_VERSION:
                self._emit_error(
                    events,
                    FrameError(
                        "bad-version",
                        f"protocol version {version} is not "
                        f"{PROTOCOL_VERSION}; frame skipped",
                        skipped=length,
                    ),
                )
                continue
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as err:
                self._emit_error(
                    events,
                    FrameError(
                        "bad-payload",
                        f"payload is not UTF-8 JSON: {err}",
                        skipped=length,
                    ),
                )
                continue
            if not isinstance(payload, dict):
                self._emit_error(
                    events,
                    FrameError(
                        "bad-payload",
                        "payload JSON is not an object "
                        f"({type(payload).__name__})",
                        skipped=length,
                    ),
                )
                continue
            self.frames_decoded += 1
            events.append(payload)
        return events


# ----------------------------------------------------------------------
# Message constructors (the payload schema over the framing above)
# ----------------------------------------------------------------------
def request_message(
    msg_id: str,
    request: CompileRequest,
    deadline_s: Optional[float] = None,
    hedge: bool = False,
) -> dict:
    """A ``request`` frame.  ``deadline_s`` is the caller's *remaining*
    deadline budget — gRPC-style propagation: every hop (and every
    retry) sends what is left, never the original full budget."""
    msg: dict = {
        "v": PROTOCOL_VERSION,
        "type": "request",
        "id": msg_id,
        "request": request_to_wire(request),
    }
    if deadline_s is not None:
        msg["deadline_s"] = round(float(deadline_s), 6)
    if hedge:
        msg["hedge"] = True
    return msg


def response_message(
    msg_id: str, response_dict: dict, shard: Optional[int] = None
) -> dict:
    msg: dict = {
        "v": PROTOCOL_VERSION,
        "type": "response",
        "id": msg_id,
        "response": response_dict,
    }
    if shard is not None:
        msg["shard"] = shard
    return msg


def error_message(
    code: str,
    detail: str = "",
    msg_id: Optional[str] = None,
    retryable: bool = False,
) -> dict:
    msg: dict = {
        "v": PROTOCOL_VERSION,
        "type": "error",
        "code": code,
        "detail": detail,
    }
    if msg_id is not None:
        msg["id"] = msg_id
    if retryable:
        msg["retryable"] = True
    return msg


def draining_message(detail: str = "") -> dict:
    """The structured goodbye: the server is draining; in-flight work
    will still be answered, new work must go to a live instance."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "draining",
        "detail": detail,
    }


def ping_message(msg_id: str = "ping") -> dict:
    return {"v": PROTOCOL_VERSION, "type": "ping", "id": msg_id}


def pong_message(msg_id: str) -> dict:
    return {"v": PROTOCOL_VERSION, "type": "pong", "id": msg_id}


# ----------------------------------------------------------------------
# CompileRequest <-> wire dict
# ----------------------------------------------------------------------
#: request fields that cross the wire, with their expected types.
#: request_id deliberately does NOT cross: the server assigns its own
#: ids; correlation happens on the frame-level ``id``.
_WIRE_FIELDS: dict[str, tuple] = {
    "source": (str,),
    "filename": (str,),
    "action": (str,),
    "mode": (str,),
    "optimize": (bool,),
    "num_threads": (int,),
    "entry": (str,),
    "defines": (dict,),
    "fuel": (int, type(None)),
    "strip_omp_transforms": (bool,),
    "deadline_s": (int, float, type(None)),
    "allow_degraded": (bool,),
    "inject_faults": (list, tuple),
    "fault_attempts": (int,),
    "trace_id": (str, type(None)),
}

_REQUEST_DEFAULTS = {
    f.name: f
    for f in dc_fields(CompileRequest)
    if f.name in _WIRE_FIELDS
}


def request_to_wire(request: CompileRequest) -> dict:
    """The JSON-safe projection of a request for a ``request`` frame."""
    wire: dict = {}
    for name in _WIRE_FIELDS:
        value = getattr(request, name)
        if isinstance(value, tuple):
            value = list(value)
        wire[name] = value
    return wire


def request_from_wire(wire: dict) -> CompileRequest:
    """Rebuild a :class:`CompileRequest` from untrusted wire data.

    Unknown keys are rejected (a version-stamped protocol should not
    silently drop peer intent) and every value is type-checked; any
    violation raises :class:`ProtocolError` for the server to answer
    with a structured ``bad-request`` error frame.
    """
    if not isinstance(wire, dict):
        raise ProtocolError(
            f"request must be an object, got {type(wire).__name__}"
        )
    unknown = set(wire) - set(_WIRE_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {sorted(unknown)}"
        )
    if "source" not in wire:
        raise ProtocolError("request is missing 'source'")
    kwargs: dict = {}
    for name, value in wire.items():
        expected = _WIRE_FIELDS[name]
        if not isinstance(value, expected) or (
            # bool is an int subclass; don't let true/false sneak into
            # integer fields or vice versa
            isinstance(value, bool)
            and bool not in expected
        ):
            raise ProtocolError(
                f"request field {name!r} has type "
                f"{type(value).__name__}, expected "
                + "/".join(t.__name__ for t in expected)
            )
        if name == "defines":
            if not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in value.items()
            ):
                raise ProtocolError(
                    "request field 'defines' must map str -> str"
                )
            value = dict(value)
        elif name == "inject_faults":
            if not all(isinstance(s, str) for s in value):
                raise ProtocolError(
                    "request field 'inject_faults' must be a list of "
                    "strings"
                )
            value = tuple(value)
        kwargs[name] = value
    request = CompileRequest(**kwargs)
    if request.action not in ("compile", "run"):
        raise ProtocolError(
            f"request action {request.action!r} is not compile/run"
        )
    if request.mode not in ("shadow", "irbuilder"):
        raise ProtocolError(
            f"request mode {request.mode!r} is not shadow/irbuilder"
        )
    return request


def iter_frames(data: bytes, **kwargs) -> Iterable[Event]:
    """One-shot decode of a complete byte string (test helper)."""
    return FrameDecoder(**kwargs).feed(data)
