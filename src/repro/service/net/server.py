"""The asyncio TCP front door.

One :class:`NetServer` accepts connections, decodes length-prefixed
JSON frames (:mod:`repro.service.net.protocol`), and routes ``request``
messages into a :class:`~repro.service.net.router.ShardRouter`.  The
design goals, in the envoy/nginx tradition of overload handling:

* **misbehaving clients cannot take the server down** — malformed
  frames get structured ``error`` frames back (connection-fatal only
  for an oversized declared length, whose framing can't be trusted);
  a client that stops mid-frame is evicted on the ``frame_timeout_s``
  slow-loris timer; a client that stops *reading* is evicted on the
  write timeout; connection and per-connection-inflight caps bound
  resource use;
* **a dropped connection never loses accounting** — the shard service
  still resolves every admitted request; a response whose connection
  died is counted as orphaned and discarded, so requests-in equals
  terminal-statuses exactly on the service ledger;
* **drain is structured** — :meth:`NetServer.request_drain` stops
  accepting, pushes a ``draining`` frame to every live connection,
  drains the shards (in-flight work finishes, stragglers are shed with
  terminal answers), then closes everything and lets the process exit 0.

The server runs on one asyncio thread; shard callbacks re-enter via
``call_soon_threadsafe``.  :class:`NetServerThread` hosts the whole
stack (router + server + loop) on a background thread for tests and
benchmarks.
"""

from __future__ import annotations

import asyncio
import sys
import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.instrument.stats import get_statistic
from repro.instrument.telemetry import MetricsRegistry
from repro.service.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    ProtocolError,
    draining_message,
    encode_frame,
    error_message,
    pong_message,
    request_from_wire,
    response_message,
)
from repro.service.net.router import ShardRouter
from repro.service.service import ServiceConfig

_CONNECTIONS = get_statistic(
    "net", "connections", "TCP connections accepted"
)
_CONN_REJECTED = get_statistic(
    "net",
    "connections-rejected",
    "Connections turned away at the concurrency cap",
)
_FRAMES_IN = get_statistic(
    "net", "frames-in", "Well-formed frames received"
)
_FRAME_ERRORS = get_statistic(
    "net", "frame-errors", "Malformed frames answered with errors"
)
_NET_REQUESTS = get_statistic(
    "net", "requests", "Request frames admitted to the router"
)
_BAD_REQUESTS = get_statistic(
    "net", "bad-requests", "Request frames rejected at validation"
)
_RESPONSES_SENT = get_statistic(
    "net", "responses-sent", "Response frames written back"
)
_RESPONSES_ORPHANED = get_statistic(
    "net",
    "responses-orphaned",
    "Responses whose connection was gone (still counted terminal "
    "on the service ledger)",
)
_SLOW_LORIS = get_statistic(
    "net",
    "slow-loris-evictions",
    "Connections evicted for stalling mid-frame",
)
_WRITE_EVICTIONS = get_statistic(
    "net",
    "write-evictions",
    "Connections evicted for not reading their responses",
)
_DRAIN_REJECTS = get_statistic(
    "net",
    "drain-rejects",
    "Request frames refused while draining",
)
_INFLIGHT_REJECTS = get_statistic(
    "net",
    "inflight-rejects",
    "Request frames refused at the per-connection in-flight cap",
)


@dataclass
class NetServerConfig:
    host: str = "127.0.0.1"
    #: 0 = let the OS pick (tests); the bound port lands in
    #: :attr:`NetServer.address`
    port: int = 0
    #: hard cap on concurrent connections (excess get a retryable
    #: ``server-busy`` error frame and are closed)
    max_connections: int = 64
    #: per-connection cap on unanswered request frames
    max_inflight_per_conn: int = 64
    #: a connection with no pending frame bytes may sit idle this long
    idle_timeout_s: float = 300.0
    #: the slow-loris guard: once a frame has *started*, the rest of it
    #: must keep arriving within this window
    frame_timeout_s: float = 10.0
    #: a peer must drain our writes within this window
    write_timeout_s: float = 10.0
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    #: default drain deadline handed to the router on SIGTERM
    drain_deadline_s: float = 10.0


class _Connection:
    """Parent-side state of one accepted connection."""

    _next_id = 0

    def __init__(self, reader, writer) -> None:
        _Connection._next_id += 1
        self.conn_id = _Connection._next_id
        self.reader = reader
        self.writer = writer
        self.decoder: Optional[FrameDecoder] = None
        #: message ids awaiting a response
        self.inflight: set[str] = set()
        self.write_lock = asyncio.Lock()
        self.closed = False


class NetServer:
    """The asyncio acceptor in front of a :class:`ShardRouter`."""

    def __init__(
        self,
        router: ShardRouter,
        config: Optional[NetServerConfig] = None,
    ) -> None:
        self.router = router
        self.config = config or NetServerConfig()
        self.address: Optional[tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conns: set[_Connection] = set()
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        #: request frames admitted to the router, not yet answered
        #: (or orphaned) — the drain watcher waits on this
        self._inflight_total = 0

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def serve_until_drained(self) -> None:
        """Block until a drain (:meth:`request_drain`) completes."""
        assert self._drained is not None
        await self._drained.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def connection_count(self) -> int:
        return len(self._conns)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _close_connection(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            conn.writer.close()
        except (OSError, RuntimeError):
            pass

    async def _send(self, conn: _Connection, payload: dict) -> bool:
        """Write one frame; evicts the connection (and returns False)
        when the peer will not drain it within the write timeout."""
        if conn.closed:
            return False
        try:
            frame = encode_frame(
                payload, max_frame_bytes=self.config.max_frame_bytes
            )
        except FrameTooLarge:
            # The answer itself does not fit the wire contract; send a
            # structured error in its place rather than violating our
            # own max-frame-size.
            frame = encode_frame(
                error_message(
                    "response-too-large",
                    "response exceeded the max frame size",
                    msg_id=payload.get("id"),
                )
            )
        try:
            async with conn.write_lock:
                if conn.closed:
                    return False
                conn.writer.write(frame)
                await asyncio.wait_for(
                    conn.writer.drain(), self.config.write_timeout_s
                )
            return True
        except asyncio.TimeoutError:
            _WRITE_EVICTIONS.inc()
            self._close_connection(conn)
            return False
        except (ConnectionError, OSError, RuntimeError):
            self._close_connection(conn)
            return False

    # ------------------------------------------------------------------
    # Accepting and reading
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        try:
            if self._draining:
                await self._send(conn, draining_message("draining"))
                return
            if len(self._conns) >= self.config.max_connections:
                _CONN_REJECTED.inc()
                await self._send(
                    conn,
                    error_message(
                        "server-busy",
                        f"connection cap "
                        f"({self.config.max_connections}) reached",
                        retryable=True,
                    ),
                )
                return
            _CONNECTIONS.inc()
            self._conns.add(conn)
            await self._read_loop(conn)
        except (ConnectionError, OSError):
            pass
        finally:
            self._conns.discard(conn)
            self._close_connection(conn)
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _read_loop(self, conn: _Connection) -> None:
        decoder = FrameDecoder(self.config.max_frame_bytes)
        conn.decoder = decoder
        while not conn.closed:
            timeout = (
                self.config.frame_timeout_s
                if decoder.mid_frame
                else self.config.idle_timeout_s
            )
            try:
                data = await asyncio.wait_for(
                    conn.reader.read(65536), timeout
                )
            except asyncio.TimeoutError:
                if decoder.mid_frame:
                    # Slow loris: the frame started but is not being
                    # finished; evict rather than hold the slot.
                    _SLOW_LORIS.inc()
                    await self._send(
                        conn,
                        error_message(
                            "slow-client",
                            "frame not completed within "
                            f"{self.config.frame_timeout_s}s; "
                            "connection evicted",
                        ),
                    )
                else:
                    await self._send(
                        conn,
                        error_message(
                            "idle-timeout",
                            "connection idle past "
                            f"{self.config.idle_timeout_s}s",
                        ),
                    )
                return
            if not data:
                return  # peer closed cleanly
            for event in decoder.feed(data):
                if isinstance(event, FrameError):
                    _FRAME_ERRORS.inc()
                    await self._send(
                        conn,
                        error_message(event.code, event.detail),
                    )
                    if event.fatal:
                        return
                    continue
                _FRAMES_IN.inc()
                await self._handle_message(conn, event)

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    async def _handle_message(
        self, conn: _Connection, msg: dict
    ) -> None:
        msg_type = msg.get("type")
        msg_id = msg.get("id")
        if msg_type == "ping":
            await self._send(
                conn, pong_message(msg_id if isinstance(msg_id, str) else "ping")
            )
            return
        if msg_type in ("pong", "draining"):
            return  # tolerated, nothing to do server-side
        if msg_type != "request":
            await self._send(
                conn,
                error_message(
                    "bad-type",
                    f"unknown message type {msg_type!r}",
                    msg_id=msg_id if isinstance(msg_id, str) else None,
                ),
            )
            return
        if not isinstance(msg_id, str) or not msg_id:
            _BAD_REQUESTS.inc()
            await self._send(
                conn,
                error_message(
                    "bad-request", "request frame is missing 'id'"
                ),
            )
            return
        if self._draining:
            _DRAIN_REJECTS.inc()
            await self._send(
                conn,
                error_message(
                    "draining",
                    "server is draining; resubmit to a live instance",
                    msg_id=msg_id,
                    retryable=True,
                ),
            )
            return
        if len(conn.inflight) >= self.config.max_inflight_per_conn:
            _INFLIGHT_REJECTS.inc()
            await self._send(
                conn,
                error_message(
                    "too-many-inflight",
                    "per-connection in-flight cap "
                    f"({self.config.max_inflight_per_conn}) reached",
                    msg_id=msg_id,
                    retryable=True,
                ),
            )
            return
        deadline = msg.get("deadline_s")
        try:
            if deadline is not None and (
                not isinstance(deadline, (int, float))
                or isinstance(deadline, bool)
            ):
                raise ProtocolError(
                    "'deadline_s' must be a number"
                )
            request = request_from_wire(msg.get("request"))
        except ProtocolError as err:
            _BAD_REQUESTS.inc()
            await self._send(
                conn,
                error_message(
                    "bad-request", str(err), msg_id=msg_id
                ),
            )
            return
        if deadline is not None:
            # Deadline propagation: what arrives is the caller's
            # *remaining* budget; the service clamps every attempt and
            # retry decision to it.
            request.budget_s = float(deadline)
        conn.inflight.add(msg_id)
        self._inflight_total += 1
        loop = self._loop

        def on_response(response, _conn=conn, _mid=msg_id) -> None:
            # Fires on the shard pump thread; hop back to the loop.
            loop.call_soon_threadsafe(
                self._on_service_response, _conn, _mid, response
            )

        try:
            self.router.submit(request, on_response)
        except RuntimeError as err:
            conn.inflight.discard(msg_id)
            self._inflight_total -= 1
            await self._send(
                conn,
                error_message(
                    "unavailable", str(err), msg_id=msg_id,
                    retryable=True,
                ),
            )
            return
        _NET_REQUESTS.inc()

    def _on_service_response(
        self, conn: _Connection, msg_id: str, response
    ) -> None:
        self._inflight_total -= 1
        conn.inflight.discard(msg_id)
        if conn.closed:
            # The client vanished mid-request.  The service already
            # counted this response on its ledger; the wire just has
            # nobody left to tell.
            _RESPONSES_ORPHANED.inc()
            return
        asyncio.ensure_future(
            self._send_response(conn, msg_id, response)
        )

    async def _send_response(
        self, conn: _Connection, msg_id: str, response
    ) -> None:
        if await self._send(
            conn, response_message(msg_id, response.to_dict())
        ):
            _RESPONSES_SENT.inc()
        else:
            _RESPONSES_ORPHANED.inc()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def request_drain(
        self, deadline_s: Optional[float] = None
    ) -> None:
        """Begin the structured shutdown (callable from a signal
        handler registered on this loop): stop accepting, announce
        ``draining`` on every connection, drain the shards, close.
        Idempotent."""
        if self._draining:
            return
        self._draining = True
        deadline = (
            deadline_s
            if deadline_s is not None
            else self.config.drain_deadline_s
        )
        if self._server is not None:
            self._server.close()
        self.router.begin_drain(deadline)
        notices = [
            asyncio.ensure_future(
                self._send(conn, draining_message("draining"))
            )
            for conn in list(self._conns)
        ]
        asyncio.ensure_future(self._drain_watch(deadline, notices))

    async def _drain_watch(
        self, deadline_s: float, notices: Sequence = ()
    ) -> None:
        """Wait for every admitted request to resolve (the shards shed
        stragglers at their drain deadline, so this terminates), then
        close the remaining connections."""
        assert self._loop is not None and self._drained is not None
        if notices:
            # The draining goodbyes must reach the wire before the
            # connections are torn down — without this, a drain with
            # no in-flight work races the close and the peer sees a
            # bare EOF instead of the structured frame.
            await asyncio.gather(*notices, return_exceptions=True)
        hard_stop = self._loop.time() + deadline_s + 5.0
        while (
            self._inflight_total > 0
            and self._loop.time() < hard_stop
        ):
            await asyncio.sleep(0.02)
        if self._inflight_total > 0:  # pragma: no cover - safety net
            print(
                "miniclang-serve: warning: "
                f"{self._inflight_total} request(s) still unanswered "
                "past the drain deadline",
                file=sys.stderr,
            )
        for conn in list(self._conns):
            self._close_connection(conn)
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except (OSError, RuntimeError):  # pragma: no cover
                pass
        self._drained.set()


class NetServerThread:
    """Host router + server + asyncio loop on a background thread.

    The in-process harness for tests, the chaos ``--net`` campaign, and
    the TCP transport of ``tools/service_bench.py``::

        host = NetServerThread([ServiceConfig(), ServiceConfig()])
        host.start()
        ... NetClient(host.address) ...
        host.stop()
    """

    def __init__(
        self,
        configs: Sequence[ServiceConfig],
        net_config: Optional[NetServerConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.router = ShardRouter(configs, metrics)
        self.net_config = net_config or NetServerConfig()
        self.server: Optional[NetServer] = None
        self.address: Optional[tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="miniclang-netserver", daemon=True
        )
        self._startup_error: Optional[BaseException] = None
        self._stopped = False

    def start(self) -> tuple[str, int]:
        self.router.start()
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("network server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"network server failed to start: {self._startup_error}"
            )
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as err:  # noqa: BLE001 - surface later
            if not self._ready.is_set():
                self._startup_error = err
                self._ready.set()
            else:
                print(
                    f"miniclang-serve: error: server loop died: {err!r}",
                    file=sys.stderr,
                )

    async def _main(self) -> None:
        self.server = NetServer(self.router, self.net_config)
        self._loop = asyncio.get_running_loop()
        self.address = await self.server.start()
        self._ready.set()
        await self.server.serve_until_drained()

    def stop(self, drain_deadline_s: float = 5.0) -> None:
        """Drain, stop the loop, and shut the router down."""
        if self._stopped:
            return
        self._stopped = True
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.server.request_drain, drain_deadline_s
                )
            except RuntimeError:
                pass  # loop already gone
        self._thread.join(timeout=drain_deadline_s + 30.0)
        self.router.shutdown()

    def __enter__(self) -> "NetServerThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
