"""The retrying network client.

A :class:`NetClient` speaks the frame protocol over blocking sockets
and wraps every request in the full resilience treatment:

* **deadline propagation** — the caller grants one end-to-end budget;
  every attempt stamps the frame with what is *left* of it (the gRPC
  model), so a server-side retry can never outlive the caller's
  patience, and the client itself gives up with a structured
  ``timeout`` response the moment the budget runs dry;
* **retry with backoff** — transport failures and retryable error
  frames (``draining``, ``server-busy``, …) are retried on a fresh
  connection with the exponential-jitter schedule of
  :class:`repro.service.retry.RetryPolicy`, seeded from the request
  fingerprint (deterministic timing, no retry storms);
* **hedging** — with ``hedge_delay_s`` set, a primary attempt that has
  not answered in time gets a duplicate fired over a *second*
  connection; first answer wins.  Because the router routes by least
  queue depth and the primary already inflated its shard, the hedge
  naturally lands on a different shard;
* **no exceptions** — like the service itself, the client never raises
  for runtime trouble: every failure mode comes back as a structured
  :class:`~repro.service.request.CompileResponse` (status
  ``unavailable`` for transport exhaustion, ``timeout`` for budget
  exhaustion).
"""

from __future__ import annotations

import queue
import random
import socket
import threading
import time
from typing import Optional, Union

from repro.instrument.stats import get_statistic
from repro.service.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
    ping_message,
    request_message,
)
from repro.service.request import (
    STATUS_TIMEOUT,
    CompileRequest,
    CompileResponse,
)
from repro.service.retry import RetryPolicy

#: client-side terminal status: the transport never yielded an answer
#: (refused, reset, evicted, or draining on every attempt)
STATUS_UNAVAILABLE = "unavailable"

_ATTEMPTS = get_statistic(
    "net", "client-attempts", "Network attempts dispatched"
)
_CLIENT_RETRIES = get_statistic(
    "net", "client-retries", "Network attempts retried with backoff"
)
_CLIENT_HEDGES = get_statistic(
    "net", "client-hedges", "Hedged duplicate network attempts"
)
_CLIENT_HEDGE_WINS = get_statistic(
    "net", "client-hedge-wins", "Requests won by the hedged attempt"
)
_DUPLICATES = get_statistic(
    "net",
    "client-duplicate-responses",
    "Response frames received for an already-answered message id",
)


def parse_address(value: str) -> tuple[str, int]:
    """``HOST:PORT`` (IPv6 hosts in brackets: ``[::1]:9000``)."""
    text = value.strip()
    if text.startswith("["):
        host, sep, rest = text[1:].partition("]")
        if not sep or not rest.startswith(":"):
            raise ValueError(f"invalid address {value!r}")
        port_text = rest[1:]
    else:
        host, sep, port_text = text.rpartition(":")
        if not sep:
            raise ValueError(
                f"invalid address {value!r} (expected HOST:PORT)"
            )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid port in address {value!r}"
        ) from None
    if not 0 <= port < 65536:
        # 0 is legal for a server bind (the OS picks); a client
        # connect to port 0 simply fails into the structured-error path
        raise ValueError(f"port out of range in address {value!r}")
    return host or "127.0.0.1", port


class _AttemptOutcome:
    """What one wire attempt produced."""

    __slots__ = ("kind", "response", "detail", "retryable")

    def __init__(
        self,
        kind: str,  # "response" | "error"
        response: Optional[CompileResponse] = None,
        detail: str = "",
        retryable: bool = True,
    ) -> None:
        self.kind = kind
        self.response = response
        self.detail = detail
        self.retryable = retryable


class NetClient:
    """Blocking client for one server address.

    Thread-compatible: each :meth:`request` call opens its own
    connection(s), so concurrent calls from worker threads are safe.
    """

    def __init__(
        self,
        address: Union[str, tuple[str, int]],
        deadline_s: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        hedge_delay_s: Optional[float] = None,
        connect_timeout_s: float = 5.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.address = (
            parse_address(address)
            if isinstance(address, str)
            else tuple(address)
        )
        self.deadline_s = deadline_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.hedge_delay_s = hedge_delay_s
        self.connect_timeout_s = connect_timeout_s
        self.max_frame_bytes = max_frame_bytes
        self._seq = 0
        self._seq_lock = threading.Lock()
        #: frames that answered an id a second time (must stay 0 — the
        #: chaos campaign's zero-double-answer check reads this)
        self.duplicate_responses = 0

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            return f"c{self._seq:06d}"

    def _connect(self, timeout_s: float) -> socket.socket:
        return socket.create_connection(
            self.address,
            timeout=max(0.05, min(self.connect_timeout_s, timeout_s)),
        )

    # ------------------------------------------------------------------
    def ping(self, timeout_s: float = 5.0) -> bool:
        """One ping/pong round trip; False on any failure."""
        msg_id = self._next_id()
        try:
            sock = self._connect(timeout_s)
        except OSError:
            return False
        try:
            sock.settimeout(timeout_s)
            sock.sendall(encode_frame(ping_message(msg_id)))
            decoder = FrameDecoder(self.max_frame_bytes)
            deadline = time.monotonic() + timeout_s
            while time.monotonic() < deadline:
                data = sock.recv(65536)
                if not data:
                    return False
                for event in decoder.feed(data):
                    if (
                        isinstance(event, dict)
                        and event.get("type") == "pong"
                        and event.get("id") == msg_id
                    ):
                        return True
            return False
        except OSError:
            return False
        finally:
            sock.close()

    # ------------------------------------------------------------------
    def _attempt(
        self,
        request: CompileRequest,
        remaining_s: float,
        hedge: bool,
    ) -> _AttemptOutcome:
        """One connection, one request frame, one answer (or failure).

        The frame carries ``remaining_s`` — the budget left *now*, not
        the original grant — which the server adopts as the request's
        service-side budget."""
        msg_id = self._next_id()
        _ATTEMPTS.inc()
        try:
            sock = self._connect(remaining_s)
        except OSError as err:
            return _AttemptOutcome(
                "error", detail=f"connect failed: {err}"
            )
        try:
            sock.sendall(
                encode_frame(
                    request_message(
                        msg_id,
                        request,
                        deadline_s=remaining_s,
                        hedge=hedge,
                    ),
                    max_frame_bytes=self.max_frame_bytes,
                )
            )
            decoder = FrameDecoder(self.max_frame_bytes)
            deadline = time.monotonic() + remaining_s
            answered: Optional[_AttemptOutcome] = None
            while True:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    return answered or _AttemptOutcome(
                        "error",
                        detail="attempt deadline expired with no "
                        "response frame",
                    )
                sock.settimeout(budget)
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    return answered or _AttemptOutcome(
                        "error",
                        detail="attempt deadline expired with no "
                        "response frame",
                    )
                if not data:
                    return answered or _AttemptOutcome(
                        "error",
                        detail="connection closed before a response",
                    )
                for event in decoder.feed(data):
                    outcome = self._classify(event, msg_id)
                    if outcome is not None and answered is None:
                        answered = outcome
                if answered is not None:
                    return answered
        except OSError as err:
            return _AttemptOutcome(
                "error", detail=f"transport failure: {err}"
            )
        finally:
            sock.close()

    def _classify(
        self, event, msg_id: str
    ) -> Optional[_AttemptOutcome]:
        """Turn one decoded frame into an attempt outcome (or None for
        frames that do not settle this attempt)."""
        if isinstance(event, FrameError):
            # The *server* sent us bytes we cannot frame — treat like a
            # transport failure and retry elsewhere/later.
            return _AttemptOutcome(
                "error", detail=f"undecodable server frame: {event.code}"
            )
        etype = event.get("type")
        if etype == "response" and event.get("id") == msg_id:
            response = CompileResponse.from_dict(
                event.get("response") or {}
            )
            return _AttemptOutcome("response", response=response)
        if etype == "error":
            if event.get("id") not in (None, msg_id):
                return None  # someone else's trouble (shared conn)
            return _AttemptOutcome(
                "error",
                detail=(
                    f"{event.get('code', 'error')}: "
                    f"{event.get('detail', '')}"
                ),
                retryable=bool(event.get("retryable"))
                or event.get("code") == "draining",
            )
        if etype == "draining":
            return _AttemptOutcome(
                "error", detail="server draining", retryable=True
            )
        if etype == "response":
            self.duplicate_responses += 1
            _DUPLICATES.inc()
        return None

    # ------------------------------------------------------------------
    def _hedged_attempt(
        self,
        request: CompileRequest,
        remaining_s: float,
    ) -> _AttemptOutcome:
        """Primary attempt + a delayed duplicate on a second
        connection; first settled outcome wins.  Responses beat errors
        when both are already in."""
        results: "queue.Queue[tuple[str, _AttemptOutcome]]" = (
            queue.Queue()
        )
        deadline = time.monotonic() + remaining_s

        def run(tag: str, delay: float) -> None:
            if delay > 0:
                time.sleep(delay)
            left = deadline - time.monotonic()
            if left <= 0:
                return
            if tag == "hedge":
                _CLIENT_HEDGES.inc()
            results.put(
                (tag, self._attempt(request, left, tag == "hedge"))
            )

        threads = [
            threading.Thread(
                target=run, args=("primary", 0.0), daemon=True
            ),
            threading.Thread(
                target=run,
                args=("hedge", self.hedge_delay_s),
                daemon=True,
            ),
        ]
        for t in threads:
            t.start()
        first: Optional[tuple[str, _AttemptOutcome]] = None
        for _ in range(2):
            left = deadline - time.monotonic()
            if left <= 0:
                break
            try:
                tag, outcome = results.get(timeout=left)
            except queue.Empty:
                break
            if outcome.kind == "response":
                if tag == "hedge":
                    _CLIENT_HEDGE_WINS.inc()
                return outcome
            if first is None:
                first = (tag, outcome)
        if first is not None:
            return first[1]
        return _AttemptOutcome(
            "error",
            detail="hedged attempts both expired with no response",
        )

    # ------------------------------------------------------------------
    def request(
        self,
        request: CompileRequest,
        deadline_s: Optional[float] = None,
    ) -> CompileResponse:
        """Send one request; always returns a terminal response."""
        budget = (
            deadline_s if deadline_s is not None else self.deadline_s
        )
        deadline = time.monotonic() + budget
        rng = random.Random(int(request.fingerprint(), 16) ^ 0xC11E57)
        failures: list[str] = []
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self._give_up(
                    request, STATUS_TIMEOUT, budget, failures
                )
            if (
                self.hedge_delay_s is not None
                and remaining > self.hedge_delay_s
            ):
                outcome = self._hedged_attempt(request, remaining)
            else:
                outcome = self._attempt(request, remaining, False)
            if outcome.kind == "response":
                response = outcome.response
                assert response is not None
                return response
            failures.append(f"attempt {attempt}: {outcome.detail}")
            attempt += 1
            if attempt >= self.retry.max_attempts or not outcome.retryable:
                return self._give_up(
                    request, STATUS_UNAVAILABLE, budget, failures
                )
            delay = self.retry.backoff(attempt - 1, rng)
            if time.monotonic() + delay >= deadline:
                # A retry that cannot start inside the budget is not a
                # retry, it's a slower way to time out.
                return self._give_up(
                    request, STATUS_TIMEOUT, budget, failures
                )
            _CLIENT_RETRIES.inc()
            time.sleep(delay)

    @staticmethod
    def _give_up(
        request: CompileRequest,
        status: str,
        budget: float,
        failures: list[str],
    ) -> CompileResponse:
        history = "; ".join(failures) if failures else "no attempts fit"
        return CompileResponse(
            request_id=request.request_id or "",
            status=status,
            detail=(
                f"network client gave up after {len(failures)} "
                f"attempt(s) within a {budget:.3f}s budget: {history}"
            ),
            mode_used=None,
            attempts=len(failures),
            retries=max(0, len(failures) - 1),
        )
