"""Network front door for the compile service.

The paper's ecosystem treats the compiler as a long-lived server
(clangd's model); this package puts a real socket boundary in front of
:class:`repro.service.CompileService` so the robustness machinery —
breakers, shedding, drain, durable state — is exercised across a
network, not just in-process:

* :mod:`repro.service.net.protocol` — length-prefixed JSON frames with
  a protocol-version stamp, a hard max-frame-size, and a resyncing
  decoder that turns arbitrary byte noise into structured errors, never
  exceptions;
* :mod:`repro.service.net.router` — shards requests across N
  independent :class:`~repro.service.CompileService` worker pools
  (least-queue-depth routing, per-shard breaker boards and gauges);
* :mod:`repro.service.net.server` — the asyncio TCP acceptor:
  per-connection read/write timeouts, slow-loris eviction, a
  connection-level concurrency cap, malformed frames answered with
  structured error frames, and a SIGTERM drain that closes every
  connection with a ``draining`` frame;
* :mod:`repro.service.net.client` — a retrying client with *deadline
  propagation* (the remaining budget, not the full budget, crosses the
  wire on every attempt), exponential backoff reusing
  :mod:`repro.service.retry`, and hedged second attempts that naturally
  land on another shard.
"""

from __future__ import annotations

from repro.service.net.client import NetClient, parse_address
from repro.service.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    ProtocolError,
    encode_frame,
    request_from_wire,
    request_to_wire,
)
from repro.service.net.router import ShardRouter
from repro.service.net.server import (
    NetServer,
    NetServerConfig,
    NetServerThread,
)

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameDecoder",
    "FrameError",
    "FrameTooLarge",
    "NetClient",
    "NetServer",
    "NetServerConfig",
    "NetServerThread",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ShardRouter",
    "encode_frame",
    "parse_address",
    "request_from_wire",
    "request_to_wire",
]
