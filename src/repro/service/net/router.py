"""Sharded request routing across independent worker pools.

A :class:`ShardRouter` owns N :class:`~repro.service.CompileService`
instances, each pumped by a dedicated thread (one event loop per shard,
so a slow or wedged shard never stalls the others) with its own worker
processes, admission queue, and breaker board — the per-shard breaker
isolation means a poison input quarantined on shard 2 cannot poison
shard 0's view of the same traffic until it lands there.

Routing is least-queue-depth: a new request goes to the shard with the
fewest unresolved requests, ties broken round-robin.  A hedged request
naturally lands on a different shard than its primary because the
primary already inflated its shard's depth.

Thread model: callers (the asyncio server thread) call :meth:`submit`;
the request is appended to the shard's locked inbox and a wakeup byte is
written to the shard's socketpair, which interrupts the shard's
``pool.wait`` (via :meth:`CompileService.step`'s ``extra_conns``).  The
terminal :class:`~repro.service.request.CompileResponse` comes back by
invoking the submit-time callback *on the shard thread* — callers
re-schedule onto their own loop (``call_soon_threadsafe``).

Every shard keeps its own :class:`MetricsRegistry` (registries are
single-threaded by design); the router's shared registry carries only
pre-created per-shard gauge cells, each written by exactly one thread.
:meth:`merged_metrics` folds everything together exactly — call it when
the router is quiescent (after :meth:`shutdown`) for exact accounting.
"""

from __future__ import annotations

import socket
import sys
import threading
from collections import deque
from typing import Callable, Optional, Sequence

from repro.instrument.stats import get_statistic
from repro.instrument.telemetry import MetricsRegistry
from repro.service.request import (
    STATUS_ICE,
    CompileRequest,
    CompileResponse,
)
from repro.service.service import CompileService, ServiceConfig

_ROUTED = get_statistic(
    "net", "routed", "Requests routed to a shard"
)
_SHARD_FAILURES = get_statistic(
    "net",
    "shard-failures",
    "Shard pump threads lost to an unexpected exception",
)

ResponseCallback = Callable[[CompileResponse], None]


class _Shard:
    """One service + its pump thread + its submission inbox."""

    def __init__(self, index: int, config: ServiceConfig) -> None:
        self.index = index
        self.config = config
        self.service = CompileService(config)
        self.service.on_response = self._on_response
        self.inbox: deque = deque()
        self.inbox_lock = threading.Lock()
        #: request_id -> submit-time callback; shard-thread-only after
        #: start (entries are added by _ingest, removed by _on_response,
        #: both on the pump thread)
        self.callbacks: dict[str, ResponseCallback] = {}
        self.wake_recv, self.wake_send = socket.socketpair()
        self.wake_recv.setblocking(False)
        self.wake_send.setblocking(False)
        self.thread = threading.Thread(
            target=self._run,
            name=f"miniclang-shard-{index}",
            daemon=True,
        )
        self.stop_requested = False
        self.failed = False
        #: unresolved requests owned by this shard, maintained by the
        #: router under its lock (the routing signal)
        self.depth = 0
        # Router-registry gauge cells, wired in by the router before
        # the thread starts; written only from the pump thread.
        self.g_depth = None
        self.g_in_flight = None
        self.g_breakers = None

    # -- cross-thread side ---------------------------------------------
    def post(self, item: tuple) -> None:
        with self.inbox_lock:
            self.inbox.append(item)
        try:
            self.wake_send.send(b"x")
        except (BlockingIOError, OSError):
            # A full wakeup buffer means wakeups are already pending;
            # a closed pair means the shard is gone — either way the
            # inbox entry is what matters.
            pass

    # -- pump-thread side ----------------------------------------------
    def _wire_observers(self) -> None:
        """Chain the shard's queue/breaker observer hooks so they feed
        the router's per-shard gauges on top of the service's own."""
        queue = self.service.admission_queue
        inner_q = queue.on_change

        def on_queue(queued: int, in_flight: int) -> None:
            if inner_q is not None:
                inner_q(queued, in_flight)
            if self.g_depth is not None:
                self.g_depth.set(queued)
            if self.g_in_flight is not None:
                self.g_in_flight.set(in_flight)

        queue.on_change = on_queue
        board = self.service.breaker_board
        inner_b = board.on_transition

        def on_breaker(fingerprint: str, old: str, new: str) -> None:
            if inner_b is not None:
                inner_b(fingerprint, old, new)
            if self.g_breakers is not None:
                self.g_breakers.set(board.open_count)

        board.on_transition = on_breaker

    def _on_response(self, response: CompileResponse) -> None:
        callback = self.callbacks.pop(response.request_id, None)
        if callback is None:
            return
        try:
            callback(response)
        except Exception as err:  # noqa: BLE001 - a broken consumer
            # must not take the shard's event loop down with it
            print(
                f"miniclang-serve: warning: shard {self.index} "
                f"response callback failed: {err}",
                file=sys.stderr,
            )

    def _ingest(self) -> None:
        while True:
            with self.inbox_lock:
                if not self.inbox:
                    return
                item = self.inbox.popleft()
            kind = item[0]
            if kind == "submit":
                _, request, callback = item
                # Register before submit: rejects and cache hits
                # resolve synchronously inside submit() and fire
                # _on_response immediately.
                self.callbacks[request.request_id] = callback
                self.service.submit(request)
            elif kind == "drain":
                self.service.begin_drain(item[1])
            elif kind == "stop":
                self.stop_requested = True

    def _drain_wakeups(self) -> None:
        try:
            while self.wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _run(self) -> None:
        self._wire_observers()
        try:
            while True:
                self._ingest()
                if (
                    self.stop_requested
                    and not self.service.pending
                    and not self.inbox
                ):
                    break
                ready = self.service.step(
                    extra_conns=(self.wake_recv,)
                )
                if ready:
                    self._drain_wakeups()
        except Exception as err:  # noqa: BLE001 - fail structured
            self.failed = True
            _SHARD_FAILURES.inc()
            print(
                f"miniclang-serve: error: shard {self.index} pump "
                f"thread failed: {err!r}",
                file=sys.stderr,
            )
        finally:
            # The zero-lost-requests contract survives even a pump
            # bug: every registered callback still gets a terminal
            # (structured-failure) answer.
            for request_id, callback in list(self.callbacks.items()):
                self.callbacks.pop(request_id, None)
                try:
                    callback(
                        CompileResponse(
                            request_id=request_id,
                            status=STATUS_ICE,
                            detail=(
                                f"shard {self.index} pump thread "
                                "exited with this request unresolved"
                            ),
                            mode_used=None,
                        )
                    )
                except Exception:  # noqa: BLE001
                    pass
            try:
                self.service.shutdown()
            except Exception as err:  # noqa: BLE001
                print(
                    f"miniclang-serve: warning: shard {self.index} "
                    f"shutdown failed: {err}",
                    file=sys.stderr,
                )
            try:
                self.wake_recv.close()
                self.wake_send.close()
            except OSError:
                pass


class ShardRouter:
    """Least-queue-depth router over N shard services.

    Use as a context manager, or pair :meth:`start` with
    :meth:`shutdown`::

        with ShardRouter([ServiceConfig(), ServiceConfig()]) as router:
            router.submit(request, callback)
    """

    def __init__(
        self,
        configs: Sequence[ServiceConfig],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not configs:
            raise ValueError("at least one shard config required")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._shards = [
            _Shard(i, config) for i, config in enumerate(configs)
        ]
        self._lock = threading.Lock()
        self._seq = 0
        self._rr = 0
        self._started = False
        self._stopped = False
        self._draining = False
        g_depth = self.metrics.gauge(
            "service_shard_queue_depth",
            "Requests queued per shard, not yet dispatched",
            ("shard",),
        )
        g_in_flight = self.metrics.gauge(
            "service_shard_in_flight",
            "Requests dispatched per shard, not yet resolved",
            ("shard",),
        )
        g_breakers = self.metrics.gauge(
            "service_shard_breakers_open",
            "Open circuit breakers per shard",
            ("shard",),
        )
        self._m_routed = self.metrics.counter(
            "router_requests_total",
            "Requests routed, by shard",
            ("shard",),
        )
        # Pre-create every label cell from this (single) thread so the
        # pump threads only ever mutate their own existing cell.
        self._routed_cells = []
        for shard in self._shards:
            label = str(shard.index)
            shard.g_depth = g_depth.labels(shard=label)
            shard.g_in_flight = g_in_flight.labels(shard=label)
            shard.g_breakers = g_breakers.labels(shard=label)
            self._routed_cells.append(
                self._m_routed.labels(shard=label)
            )

    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def pending(self) -> int:
        """Unresolved requests across all shards."""
        with self._lock:
            return sum(s.depth for s in self._shards)

    @property
    def depths(self) -> list[int]:
        with self._lock:
            return [s.depth for s in self._shards]

    @property
    def draining(self) -> bool:
        return self._draining

    def start(self) -> "ShardRouter":
        if self._started:
            return self
        self._started = True
        for shard in self._shards:
            shard.thread.start()
        return self

    # ------------------------------------------------------------------
    def _pick(self) -> _Shard:
        """Least-depth shard, ties broken round-robin (lock held)."""
        best = None
        best_depth = None
        n = len(self._shards)
        for offset in range(n):
            shard = self._shards[(self._rr + offset) % n]
            if shard.failed:
                continue
            if best_depth is None or shard.depth < best_depth:
                best = shard
                best_depth = shard.depth
        if best is None:
            raise RuntimeError("every shard pump thread has failed")
        self._rr = (self._rr + 1) % n
        return best

    def submit(
        self, request: CompileRequest, callback: ResponseCallback
    ) -> int:
        """Route one request; *callback* fires with its terminal
        response on the owning shard's pump thread.  Returns the shard
        index the request landed on."""
        if not self._started or self._stopped:
            raise RuntimeError("router is not running")
        with self._lock:
            self._seq += 1
            request.request_id = f"n{self._seq:06d}"
            shard = self._pick()
            shard.depth += 1

        def release_and_forward(
            response: CompileResponse, _shard=shard
        ) -> None:
            with self._lock:
                _shard.depth -= 1
            callback(response)

        _ROUTED.inc()
        self._routed_cells[shard.index].inc()
        shard.post(("submit", request, release_and_forward))
        return shard.index

    # ------------------------------------------------------------------
    def begin_drain(
        self, deadline_s: Optional[float] = None
    ) -> None:
        """Ask every shard to drain: admission closes (further submits
        get structured rejects), in-flight work gets until the drain
        deadline, stragglers are shed with terminal answers."""
        self._draining = True
        for shard in self._shards:
            shard.post(("drain", deadline_s))

    def shutdown(self, join_timeout_s: float = 30.0) -> None:
        """Stop every pump thread (finishing pending work first) and
        shut the shard services down."""
        if self._stopped:
            return
        self._stopped = True
        for shard in self._shards:
            shard.post(("stop",))
        for shard in self._shards:
            shard.thread.join(timeout=join_timeout_s)
            if shard.thread.is_alive():
                print(
                    f"miniclang-serve: warning: shard {shard.index} "
                    "did not stop within the join timeout",
                    file=sys.stderr,
                )

    def snapshot_state(self) -> None:
        """Persist each shard's durable state (post-shutdown no-op:
        :meth:`CompileService.shutdown` already snapshots)."""
        for shard in self._shards:
            if not shard.thread.is_alive():
                shard.service.snapshot_state()

    # ------------------------------------------------------------------
    def merged_metrics(self) -> MetricsRegistry:
        """A fresh registry holding the router registry plus every
        shard registry, merged exactly (element-wise histogram
        addition).  Only exact while the router is quiescent — take the
        authoritative snapshot after :meth:`shutdown`."""
        merged = MetricsRegistry()
        merged.merge(self.metrics.snapshot())
        for shard in self._shards:
            merged.merge(shard.service.metrics.snapshot())
        return merged

    def quarantined(self) -> dict[str, dict]:
        """Union of every shard's quarantined fingerprints."""
        out: dict[str, dict] = {}
        for shard in self._shards:
            out.update(shard.service.quarantined)
        return out

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
