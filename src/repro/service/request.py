"""Request/response types of the compile service.

A :class:`CompileRequest` is one unit of admission: a source buffer plus
the knobs of one ``miniclang`` invocation (action, representation,
optimization, execution parameters) and the service-level controls
(per-attempt deadline, fault-injection specs for chaos testing).  A
:class:`CompileResponse` is the *terminal* answer the service guarantees
for every admitted request — success, degraded success, or a structured
error — never silence.

Everything here is plain picklable data: requests cross the parent →
worker pipe as :class:`WorkPayload` and outcomes come back as
:class:`WorkOutcome` (wrapping :class:`repro.pipeline.RequestOutcome`
fields), so a worker death can never strand unpicklable state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Optional

# ----------------------------------------------------------------------
# Terminal response statuses
# ----------------------------------------------------------------------
#: compiled/ran on the requested representation
STATUS_OK = "ok"
#: succeeded, but on the *other* representation than requested
STATUS_DEGRADED = "degraded"
#: deterministic user failure (diagnostics / guest trap) — not retried
STATUS_ERROR = "error"
#: internal failure persisted through retries and degradation
STATUS_ICE = "ice"
#: every attempt overran its wall-clock deadline
STATUS_TIMEOUT = "timeout"
#: the per-input circuit breaker is open (poison input quarantined)
STATUS_CIRCUIT_OPEN = "circuit-open"
#: shed at admission: the bounded queue is over capacity
STATUS_RESOURCE_EXHAUSTED = "resource-exhausted"

#: every status the service may resolve a request with
TERMINAL_STATUSES = frozenset(
    {
        STATUS_OK,
        STATUS_DEGRADED,
        STATUS_ERROR,
        STATUS_ICE,
        STATUS_TIMEOUT,
        STATUS_CIRCUIT_OPEN,
        STATUS_RESOURCE_EXHAUSTED,
    }
)

#: the two coexisting representations (paper §2 / §3)
MODES = ("shadow", "irbuilder")


def other_mode(mode: str) -> str:
    """The fallback representation for graceful degradation."""
    return "shadow" if mode == "irbuilder" else "irbuilder"


@dataclass
class CompileRequest:
    """One admission unit.  ``deadline_s`` is the *per-attempt*
    wall-clock budget enforced by the parent (a worker that overruns it
    is killed and the attempt retried); ``fault_attempts`` controls on
    how many leading attempts ``inject_faults`` is armed (``-1`` = every
    attempt, the poison-input simulation)."""

    source: str
    filename: str = "<service>"
    action: str = "compile"  # "compile" | "run"
    mode: str = "shadow"  # "shadow" | "irbuilder"
    optimize: bool = False
    num_threads: int = 4
    entry: str = "main"
    defines: dict[str, str] = field(default_factory=dict)
    fuel: Optional[int] = None
    strip_omp_transforms: bool = False
    deadline_s: Optional[float] = None  # None = service default
    #: *total* remaining wall-clock budget across all attempts —
    #: deadline propagation (the gRPC model): a network caller stamps
    #: each hop with what is *left* of its budget, the service clamps
    #: every attempt deadline to it and never schedules a retry that
    #: could not finish inside it.  None = unbounded (per-attempt
    #: ``deadline_s`` still applies).  Not part of the fingerprint:
    #: the budget describes the caller's patience, not the input.
    budget_s: Optional[float] = None
    allow_degraded: bool = True
    inject_faults: tuple[str, ...] = ()
    fault_attempts: int = 1
    request_id: Optional[str] = None
    #: distributed-tracing context: minted at admission when request
    #: tracing is enabled (callers may preset it to join an existing
    #: trace, OpenTelemetry-style)
    trace_id: Optional[str] = None

    def fingerprint(self) -> str:
        """Stable identity of the *input* for the circuit breaker.

        Covers everything that determines how an attempt behaves —
        source, action, representation, execution knobs and the armed
        fault specs (which stand in for input-dependent compiler bugs in
        chaos tests) — so one poison input cannot open the breaker for
        unrelated healthy traffic.
        """
        key = json.dumps(
            [
                self.source,
                self.action,
                self.mode,
                self.optimize,
                self.num_threads,
                self.entry,
                sorted(self.defines.items()),
                self.fuel,
                self.strip_omp_transforms,
                list(self.inject_faults),
                self.fault_attempts,
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def faults_for_attempt(self, attempt: int) -> tuple[str, ...]:
        """The fault specs armed for 0-based attempt index *attempt*."""
        if not self.inject_faults:
            return ()
        if self.fault_attempts < 0 or attempt < self.fault_attempts:
            return self.inject_faults
        return ()


@dataclass
class CompileResponse:
    """The terminal answer for one request."""

    request_id: str
    status: str
    output: str = ""  # IR text (compile) or guest stdout (run)
    exit_code: Optional[int] = None
    diagnostics: str = ""
    detail: str = ""
    mode_used: Optional[str] = None
    degraded: bool = False
    attempts: int = 0
    retries: int = 0
    hedged: bool = False
    duration_s: float = 0.0
    #: admission -> first dispatch (0.0 for rejected/cached requests)
    queue_wait_s: float = 0.0
    #: trace id of the request's merged cross-process trace (None when
    #: request tracing was off)
    trace_id: Optional[str] = None
    reproducer_path: Optional[str] = None
    #: served from the service's response cache (no worker ran)
    cache_hit: bool = False
    #: fanned out from a coalesced single-flight leader's execution
    coalesced: bool = False
    #: compile-stat deltas shipped back from the winning worker
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_DEGRADED)

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "status": self.status,
            "output": self.output,
            "exit_code": self.exit_code,
            "diagnostics": self.diagnostics,
            "detail": self.detail,
            "mode_used": self.mode_used,
            "degraded": self.degraded,
            "attempts": self.attempts,
            "retries": self.retries,
            "hedged": self.hedged,
            "duration_s": round(self.duration_s, 6),
            "queue_wait_s": round(self.queue_wait_s, 6),
            "trace_id": self.trace_id,
            "reproducer_path": self.reproducer_path,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompileResponse":
        """Rebuild a response from :meth:`to_dict` output (the service's
        response-cache wire format); unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(
            **{k: v for k, v in data.items() if k in known}
        )


# ----------------------------------------------------------------------
# The wire format between the service parent and its workers
# ----------------------------------------------------------------------
@dataclass
class WorkPayload:
    """One attempt, as sent to a worker."""

    request_id: str
    attempt: int
    source: str
    filename: str
    action: str
    mode: str
    optimize: bool
    num_threads: int
    entry: str
    defines: dict[str, str]
    fuel: Optional[int]
    strip_omp_transforms: bool
    inject_faults: tuple[str, ...]
    #: directory of the shared on-disk compilation cache; None disables
    #: worker-side artifact caching for this attempt
    cache_dir: Optional[str] = None
    #: fsync cache writes before rename (``-fcache-durable``)
    cache_durable: bool = False
    #: distributed-tracing context propagated across the process
    #: boundary: when ``trace_id`` is set the worker runs the attempt
    #: under a time-trace session and ships the completed spans back,
    #: parented under ``parent_span_id`` (the parent's attempt span)
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None


@dataclass
class WorkOutcome:
    """One attempt's result, as received from a worker."""

    request_id: str
    attempt: int
    kind: str  # RequestOutcome.kind
    output: str = ""
    exit_code: Optional[int] = None
    diagnostics: str = ""
    detail: str = ""
    stats: dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    #: completed pipeline spans (plain dicts, see
    #: :func:`repro.instrument.telemetry.events_to_spans`); empty when
    #: the attempt was not traced
    spans: list[dict] = field(default_factory=list)
    #: the worker's metrics snapshot for this attempt, merged exactly
    #: into the parent registry (fixed-bucket histograms)
    metrics: dict = field(default_factory=dict)
    #: worker OS pid plus its (wall_ns, perf_ns) clock anchor — what
    #: the parent needs to align span timestamps onto its own timeline
    pid: int = 0
    wall_anchor_ns: int = 0
    perf_anchor_ns: int = 0
