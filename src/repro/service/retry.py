"""Retry policy: exponential backoff with bounded jitter.

Pure arithmetic over an injected RNG — no clocks, no sleeping — so the
schedule is a deterministic function of ``(policy, rng seed)`` and unit
tests can assert exact bounds.  The service derives each request's RNG
seed from its fingerprint, which makes retry timing reproducible across
runs of the same batch (the same spirit as the deterministic
``-finject-fault`` windows).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for one request on one representation.

    ``max_attempts`` counts attempts, not retries: 3 means one initial
    attempt plus up to two retries.  Retry *i* (0-based) waits
    ``base_delay_s * multiplier**i`` seconds, capped at ``max_delay_s``,
    then scaled by a uniform jitter factor in ``[1 - jitter, 1 + jitter]``
    to avoid synchronized retry storms.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    # ------------------------------------------------------------------
    def backoff(
        self, retry_index: int, rng: Optional[random.Random] = None
    ) -> float:
        """Delay before 0-based retry *retry_index*."""
        raw = min(
            self.base_delay_s * self.multiplier**retry_index,
            self.max_delay_s,
        )
        if rng is not None and self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw

    def bounds(self, retry_index: int) -> tuple[float, float]:
        """Inclusive ``[lo, hi]`` envelope of :meth:`backoff` for tests
        and capacity planning."""
        raw = min(
            self.base_delay_s * self.multiplier**retry_index,
            self.max_delay_s,
        )
        return raw * (1.0 - self.jitter), raw * (1.0 + self.jitter)

    def schedule(
        self,
        rng: Optional[random.Random] = None,
        budget_s: Optional[float] = None,
    ) -> list[float]:
        """The full delay schedule (one entry per possible retry).

        With *budget_s* the cumulative delay is clamped so that sleeping
        through the whole schedule never exceeds the budget — the
        "retries never exceed the deadline" invariant: a retry that
        cannot fit is dropped (possibly after truncating the last delay
        to the remaining budget).
        """
        delays: list[float] = []
        spent = 0.0
        for i in range(self.max_attempts - 1):
            delay = self.backoff(i, rng)
            if budget_s is not None:
                remaining = budget_s - spent
                if remaining <= 0.0:
                    break
                delay = min(delay, remaining)
            delays.append(delay)
            spent += delay
        return delays
