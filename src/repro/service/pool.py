"""The isolated worker-process pool.

Each worker is one OS process running
:func:`repro.service.worker.worker_main` with a dedicated duplex pipe —
one compile pipeline per worker, so an ICE, OOM kill, or hang is
contained to that process and the parent can always kill-and-restart
without losing other in-flight work (the clangd/distcc worker model).

The pool is deliberately mechanism-only: it spawns, dispatches, waits,
restarts and shuts down.  Policy — deadlines, retries, hedging, circuit
breaking — lives in :mod:`repro.service.service`.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing import connection
from typing import Optional

from repro.instrument.stats import get_statistic
from repro.service.request import WorkPayload
from repro.service.worker import worker_main

_WORKERS_STARTED = get_statistic(
    "service", "workers-started", "Service worker processes started"
)
_WORKER_RESTARTS = get_statistic(
    "service",
    "worker-restarts",
    "Service workers killed and replaced (death, hang, shutdown)",
)


def _pick_start_method(requested: Optional[str]) -> str:
    if requested is not None:
        return requested
    # fork reuses the parent's already-imported pipeline (fast start);
    # spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerHandle:
    """One worker process plus its parent-side pipe endpoint."""

    _next_id = 0

    def __init__(self, ctx) -> None:
        WorkerHandle._next_id += 1
        self.worker_id = WorkerHandle._next_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=worker_main,
            args=(child_conn, self.worker_id),
            daemon=True,
            name=f"miniclang-worker-{self.worker_id}",
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        #: parent-side attempt bookkeeping, owned by the service:
        #: None when idle, else (state, attempt_no, deadline_at)
        self.busy: Optional[tuple] = None
        #: completed attempts (drives --worker-max-requests recycling)
        self.jobs_done = 0
        _WORKERS_STARTED.inc()

    @property
    def idle(self) -> bool:
        return self.busy is None

    def send(self, payload: WorkPayload) -> bool:
        """Dispatch one payload; False when the pipe is already dead
        (the caller restarts the worker and re-dispatches elsewhere)."""
        try:
            self.conn.send(payload)
            return True
        except (BrokenPipeError, OSError):
            return False

    def kill(self) -> None:
        """Hard-stop the process (hangs don't answer sentinels)."""
        try:
            self.proc.kill()
            self.proc.join(timeout=5.0)
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass


class WorkerPool:
    """Fixed-size pool of :class:`WorkerHandle` processes."""

    def __init__(
        self, size: int = 2, start_method: Optional[str] = None
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.ctx = multiprocessing.get_context(
            _pick_start_method(start_method)
        )
        self.workers = [WorkerHandle(self.ctx) for _ in range(size)]
        self._closed = False

    # ------------------------------------------------------------------
    def idle_workers(self) -> list[WorkerHandle]:
        return [w for w in self.workers if w.idle]

    def busy_workers(self) -> list[WorkerHandle]:
        return [w for w in self.workers if not w.idle]

    def wait(
        self, timeout: float, extra_conns=()
    ) -> tuple[list[WorkerHandle], list]:
        """Block until a busy worker has a result (or died) or one of
        *extra_conns* is readable, up to *timeout* seconds.

        Returns ``(ready_workers, ready_extras)``.  *extra_conns* may
        hold anything :func:`multiprocessing.connection.wait` accepts
        (sockets included) — the service's network layer multiplexes
        its inbox wakeup with worker completions through it."""
        busy = self.busy_workers()
        by_conn = {w.conn: w for w in busy}
        conns = list(by_conn) + list(extra_conns)
        if not conns:
            if timeout > 0:
                time.sleep(timeout)
            return [], []
        ready = connection.wait(conns, timeout=timeout)
        workers = [by_conn[c] for c in ready if c in by_conn]
        extras = [c for c in ready if c not in by_conn]
        return workers, extras

    def restart(self, worker: WorkerHandle) -> WorkerHandle:
        """Kill *worker* and replace it in place with a fresh process."""
        worker.kill()
        replacement = WorkerHandle(self.ctx)
        self.workers[self.workers.index(worker)] = replacement
        _WORKER_RESTARTS.inc()
        return replacement

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            if worker.idle:
                try:
                    worker.conn.send(None)  # polite sentinel
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 2.0
        for worker in self.workers:
            worker.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.kill()
            else:
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        self.workers = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
