"""Durable service state: atomic snapshots of the breaker board and
the poison-input quarantine.

Without persistence a restart makes the service forget every lesson it
paid for: a poison input that tripped its breaker and burned
``failure_threshold`` worker attempts gets re-eaten from scratch.
:func:`save_state` writes one ``state.json`` under ``--state-dir`` —
sealed with the same SHA-256 envelope the disk cache uses
(:mod:`repro.cache.integrity`) and committed with the fsync → rename →
directory-fsync ordering SQLite's atomic commit relies on — and
:func:`load_state` restores it on startup.  A corrupt or
foreign-version snapshot is preserved as ``state.json.corrupt`` for
forensics and the service starts fresh: losing the state must degrade
to "relearn", never to "refuse to boot".

Breaker open timestamps are persisted as *ages* (monotonic clocks do
not survive a process), so an OPEN breaker restored after its cooldown
has elapsed immediately presents as HALF_OPEN and re-enters probing —
quarantine is a parole, not a life sentence.
"""

from __future__ import annotations

import datetime
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cache.integrity import IntegrityError, seal, unseal
from repro.instrument.stats import get_statistic

#: bump whenever the snapshot payload changes meaning
STATE_FORMAT_VERSION = 1

STATE_BASENAME = "state.json"

_STATE_SNAPSHOTS = get_statistic(
    "service", "state-snapshots", "Durable state snapshots written"
)
_STATE_RESTORES = get_statistic(
    "service", "state-restores", "Durable state snapshots restored"
)
_STATE_CORRUPT = get_statistic(
    "service",
    "state-corrupt",
    "State snapshots rejected as corrupt or foreign",
)


@dataclass
class ServiceState:
    """One snapshot: breaker board + quarantined fingerprints."""

    #: fingerprint -> CircuitBreaker.export_state() dict
    breakers: dict[str, dict] = field(default_factory=dict)
    #: fingerprint -> quarantine metadata (filename, reproducer, ...)
    quarantined: dict[str, dict] = field(default_factory=dict)
    #: wall-clock write time (informational only)
    saved_at: Optional[str] = None


def state_path(state_dir: str) -> str:
    return os.path.join(state_dir, STATE_BASENAME)


def save_state(state_dir: str, state: ServiceState) -> str:
    """Atomically persist *state*; returns the snapshot path.

    fsync-before-rename plus a directory fsync: after this returns the
    snapshot survives power loss, not just process death.
    """
    os.makedirs(state_dir, exist_ok=True)
    path = state_path(state_dir)
    text = seal(
        {
            "version": STATE_FORMAT_VERSION,
            "saved_at": state.saved_at
            or datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "breakers": state.breakers,
            "quarantined": state.quarantined,
        }
    )
    fd, tmp = tempfile.mkstemp(dir=state_dir, prefix=".tmp-state-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dirfd = os.open(state_dir, os.O_RDONLY)
    except OSError:
        dirfd = None
    if dirfd is not None:
        try:
            os.fsync(dirfd)
        except OSError:
            pass
        finally:
            os.close(dirfd)
    _STATE_SNAPSHOTS.inc()
    return path


def load_state(
    state_dir: str,
    diagnostic: Optional[Callable[[str], None]] = None,
) -> Optional[ServiceState]:
    """Load the snapshot under *state_dir*; None when absent or
    unusable (corrupt snapshots are set aside, never trusted)."""
    path = state_path(state_dir)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return None
    try:
        payload = unseal(data)
        if not isinstance(payload, dict):
            raise IntegrityError("state payload is not an object")
        if payload.get("version") != STATE_FORMAT_VERSION:
            raise IntegrityError(
                f"state version {payload.get('version')!r} != "
                f"{STATE_FORMAT_VERSION}"
            )
    except IntegrityError as err:
        _STATE_CORRUPT.inc()
        quarantined_path = path + ".corrupt"
        try:
            os.replace(path, quarantined_path)
        except OSError:
            quarantined_path = path
        if diagnostic is not None:
            diagnostic(
                f"service state {path} unusable ({err}); starting "
                f"fresh, bad snapshot kept at {quarantined_path}"
            )
        return None
    breakers = payload.get("breakers")
    quarantined = payload.get("quarantined")
    state = ServiceState(
        breakers=breakers if isinstance(breakers, dict) else {},
        quarantined=(
            quarantined if isinstance(quarantined, dict) else {}
        ),
        saved_at=payload.get("saved_at"),
    )
    _STATE_RESTORES.inc()
    return state
