"""The resilient compile service.

Orchestrates the whole robustness stack over the paper's dual
representation:

* **isolation** — every attempt runs in a pool worker process
  (:mod:`repro.service.pool`); a crash, OOM kill, or hang is contained
  to that process;
* **deadlines** — the parent enforces a wall-clock budget per attempt
  and kills overrunning workers (interpreter fuel only guards the
  guest, not a hung compiler);
* **retry** — worker death, timeout, and ICE attempts are retried with
  exponential backoff + deterministic jitter
  (:mod:`repro.service.retry`);
* **hedging** — an attempt outstanding past ``hedge_delay_s`` gets a
  duplicate dispatched to another worker; first terminal answer wins;
* **circuit breaking** — per-input-fingerprint breakers quarantine
  poison inputs after ``breaker_threshold`` failures, writing a PR 3
  style crash reproducer instead of retrying forever
  (:mod:`repro.service.breaker`);
* **load shedding** — a bounded admission queue turns overload into
  structured ``RESOURCE_EXHAUSTED`` responses
  (:mod:`repro.service.queue`);
* **graceful degradation** — a request that keeps failing on the
  IRBuilder path is transparently retried on the shadow-AST path (and
  vice versa): the paper's two independent implementations of the same
  transformations double as fault-tolerance spares.  Degraded successes
  are tagged (``status == "degraded"``, ``mode_used``);
* **response caching** — with a :class:`repro.cache.CompilationCache`
  attached, deterministic terminal responses (ok / error / degraded)
  are memoized per request fingerprint and replayed without running a
  worker; degraded answers live under a ``#degraded``-tagged key and
  nothing is served or stored while the fingerprint's breaker is not
  closed.  Workers additionally share a per-stage artifact cache
  through ``cache_dir`` (:func:`repro.pipeline.compile_source_cached`);
* **single-flight dedup** — concurrent identical fingerprints collapse
  onto one leader execution; followers park and receive copies of the
  leader's terminal response (``coalesced=True``).

The contract: every admitted request receives exactly one terminal
:class:`~repro.service.request.CompileResponse`.  All decisions feed
``service.*`` statistics and per-request time-trace spans.
"""

from __future__ import annotations

import os
import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cache import CompilationCache, InflightTable, degraded_key
from repro.cache.cache import (
    DEGRADED_HITS,
    SINGLE_FLIGHT_COLLAPSES,
)
from repro.core.crash_recovery import crash_context, write_reproducer
from repro.instrument.stats import STATS, get_statistic
from repro.instrument.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    EventLog,
    MetricsRegistry,
    RequestTrace,
    TraceRecorder,
    new_span_id,
    new_trace_id,
)
from repro.instrument.timetrace import active_time_trace
from repro.service.breaker import CLOSED, BreakerBoard
from repro.service.pool import WorkerHandle, WorkerPool
from repro.service.queue import AdmissionQueue
from repro.service.request import (
    STATUS_CIRCUIT_OPEN,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_ICE,
    STATUS_OK,
    STATUS_RESOURCE_EXHAUSTED,
    STATUS_TIMEOUT,
    CompileRequest,
    CompileResponse,
    WorkOutcome,
    WorkPayload,
    other_mode,
)
from repro.service.retry import RetryPolicy
from repro.service.state import ServiceState, load_state, save_state

_REQUESTS = get_statistic(
    "service", "requests", "Requests submitted to the compile service"
)
_RESPONSES = get_statistic(
    "service", "responses", "Terminal responses produced"
)
_OK = get_statistic(
    "service", "ok", "Requests served on the requested representation"
)
_DEGRADED = get_statistic(
    "service",
    "degraded-compiles",
    "Requests served on the fallback representation",
)
_DEGRADED_FALLBACKS = get_statistic(
    "service",
    "degraded-fallbacks",
    "Representation fallbacks attempted (IRBuilder <-> shadow)",
)
_USER_ERRORS = get_statistic(
    "service",
    "user-errors",
    "Terminal responses with user diagnostics / guest failures",
)
_FAILED = get_statistic(
    "service",
    "failed",
    "Terminal internal failures (after retries and degradation)",
)
_RETRIES = get_statistic(
    "service", "retries", "Attempt retries scheduled (with backoff)"
)
_HEDGES = get_statistic(
    "service", "hedges", "Hedged duplicate attempts dispatched"
)
_HEDGE_WINS = get_statistic(
    "service", "hedge-wins", "Requests resolved by the hedged attempt"
)
_TIMEOUTS = get_statistic(
    "service", "timeouts", "Attempts killed at the wall-clock deadline"
)
_WORKER_LOST = get_statistic(
    "service", "worker-lost", "Attempts lost to a dying worker process"
)
_BREAKER_TRIPS = get_statistic(
    "service", "breaker-trips", "Circuit breakers opened (poison inputs)"
)
_BREAKER_REJECTED = get_statistic(
    "service",
    "breaker-rejected",
    "Requests rejected at admission by an open breaker",
)
_SHED = get_statistic(
    "service", "shed", "Requests shed by the bounded admission queue"
)
_QUARANTINED = get_statistic(
    "service", "quarantined", "Poison inputs quarantined with reproducers"
)
_STALE_RESULTS = get_statistic(
    "service",
    "stale-results",
    "Worker results discarded after the request was already resolved",
)
_DRAINS = get_statistic(
    "service", "drains", "Times the service entered drain mode"
)
_DRAIN_REJECTED = get_statistic(
    "service",
    "drain-rejected",
    "Requests rejected at admission while draining",
)
_DRAIN_SHED = get_statistic(
    "service",
    "drain-shed",
    "Unresolved requests shed at the drain deadline",
)
_WORKER_RECYCLED = get_statistic(
    "service",
    "worker-recycled",
    "Workers preemptively recycled at --worker-max-requests",
)
_HEARTBEAT_RESTARTS = get_statistic(
    "service",
    "worker-heartbeat-restarts",
    "Silently-dead idle workers caught by the heartbeat check",
)
_QUARANTINE_RESTORED = get_statistic(
    "service",
    "quarantine-restored",
    "Quarantined fingerprints restored from a state snapshot",
)
_BUDGET_EXPIRED = get_statistic(
    "service",
    "budget-expired",
    "Requests whose propagated deadline budget ran out before an "
    "attempt could start",
)
_BUDGET_SUPPRESSED = get_statistic(
    "service",
    "budget-suppressed-retries",
    "Retries suppressed because the propagated deadline budget could "
    "not fit another attempt",
)


class PoisonInputError(Exception):
    """Exception façade for quarantine reproducers: the input repeatedly
    took down workers and its circuit breaker opened."""


@dataclass
class ServiceConfig:
    """Tuning knobs; defaults favour interactive batches."""

    workers: int = 2
    queue_capacity: int = 256
    #: default per-attempt wall-clock deadline (seconds)
    deadline_s: float = 30.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: dispatch a duplicate attempt after this many seconds without an
    #: answer (None disables hedging)
    hedge_delay_s: Optional[float] = None
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    allow_degraded: bool = True
    quarantine_dir: Optional[str] = field(
        default_factory=lambda: os.environ.get(
            "MINICLANG_QUARANTINE_DIR", "service-quarantine"
        )
    )
    start_method: Optional[str] = None
    #: a :class:`repro.cache.CompilationCache` to memoize terminal
    #: responses in (None disables response caching); built from
    #: ``cache_dir`` when ``enable_cache`` is set and no instance given
    cache: Optional[CompilationCache] = None
    enable_cache: bool = False
    #: shared on-disk cache directory: the parent's response cache and
    #: every worker's artifact cache root here (None = parent-memory
    #: response cache only, no worker-side artifact caching)
    cache_dir: Optional[str] = None
    cache_max_entries: int = 1024
    cache_max_bytes: int = 256 * 1024 * 1024
    #: fsync cache writes before rename (``-fcache-durable``), in the
    #: parent's response cache and every worker's artifact cache
    cache_durable: bool = False
    #: coalesce concurrent identical requests onto one execution
    single_flight: bool = True
    #: directory for durable state snapshots (breaker board + poison
    #: quarantine); None disables persistence
    state_dir: Optional[str] = None
    #: how long drain mode lets in-flight work finish before shedding
    drain_deadline_s: float = 10.0
    #: preemptively recycle a worker after this many completed attempts
    #: (gunicorn's ``max_requests`` leak amnesty); None disables
    worker_max_requests: Optional[int] = None
    #: liveness-check idle workers this often (0 disables)
    heartbeat_interval_s: float = 5.0
    #: build one merged cross-process Chrome trace per request
    #: (``miniclang-serve -ftrace-requests``); implied by ``trace_dir``
    trace_requests: bool = False
    #: directory for per-request ``<request_id>.trace.json`` dumps
    trace_dir: Optional[str] = None
    #: structured JSONL request-lifecycle log (``--log-jsonl``)
    event_log: Optional[EventLog] = None
    #: metrics registry to record into; a private one is created when
    #: None (inject a shared registry to aggregate across services)
    metrics: Optional[MetricsRegistry] = None
    #: keep every terminal response in the ``responses`` map (what
    #: :meth:`CompileService.process_batch` reads back).  Long-lived
    #: callers that consume responses through the ``on_response`` hook
    #: — the network shard router — set this False so a server that
    #: answers millions of requests does not grow an unbounded dict.
    retain_responses: bool = True


class _RequestState:
    """Parent-side lifecycle of one admitted request."""

    def __init__(self, request: CompileRequest, now: float) -> None:
        self.request = request
        self.fingerprint = request.fingerprint()
        # Deterministic per-input jitter: same batch, same timing.
        self.rng = random.Random(int(self.fingerprint, 16))
        self.mode = request.mode
        self.degraded = False
        self.attempts = 0  # total attempts started
        self.mode_attempts = 0  # attempts started on the current mode
        self.outstanding: dict[int, WorkerHandle] = {}
        self.attempt_started_at: dict[int, float] = {}
        self.failures: list[tuple[int, str, str, str]] = []
        self.next_retry_at: Optional[float] = now
        self.hedged = False
        self.hedge_attempt: Optional[int] = None
        self.response: Optional[CompileResponse] = None
        self.admitted_at = now
        #: absolute wall point the propagated deadline budget runs out
        #: (None = no budget attached)
        self.budget_deadline_at: Optional[float] = (
            now + request.budget_s
            if request.budget_s is not None
            else None
        )
        self.start_ns = time.perf_counter_ns()
        #: admission -> first dispatch (stays 0.0 for rejects/replays)
        self.queue_wait_s = 0.0
        #: the request's cross-process trace (None when tracing is off)
        self.trace: Optional[RequestTrace] = None
        #: attempt index -> (span id, start perf_ns) for open attempts
        self.attempt_spans: dict[int, tuple[str, int]] = {}

    @property
    def resolved(self) -> bool:
        return self.response is not None


class CompileService:
    """A persistent pool-backed compile service.

    Use as a context manager, or call :meth:`shutdown` explicitly::

        with CompileService(ServiceConfig(workers=4)) as svc:
            responses = svc.process_batch(requests)
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.pool = WorkerPool(
            self.config.workers, self.config.start_method
        )
        # Explicit None check: an empty injected registry is falsy
        # (``__len__`` == 0) and ``or`` would silently replace it.
        self.metrics = (
            self.config.metrics
            if self.config.metrics is not None
            else MetricsRegistry()
        )
        self.events = self.config.event_log
        self._trace_requests = bool(
            self.config.trace_requests or self.config.trace_dir
        )
        self.tracer = TraceRecorder(directory=self.config.trace_dir)
        self._init_instruments()
        self._queue: AdmissionQueue[_RequestState] = AdmissionQueue(
            self.config.queue_capacity,
            on_change=self._on_queue_change,
        )
        self._breakers = BreakerBoard(
            self.config.breaker_threshold,
            self.config.breaker_cooldown_s,
            on_transition=self._on_breaker_transition,
        )
        self._active: list[_RequestState] = []
        self._responses: dict[str, CompileResponse] = {}
        #: observer called with every terminal CompileResponse, right
        #: after it is recorded — the shard router resolves its
        #: per-request futures here.  Fires synchronously, including
        #: for rejects produced inside :meth:`submit`.
        self.on_response = None
        self._seq = 0
        self._clock = time.monotonic
        self._cache: Optional[CompilationCache] = self.config.cache
        if self._cache is None and self.config.enable_cache:
            self._cache = CompilationCache(
                self.config.cache_dir,
                max_entries=self.config.cache_max_entries,
                max_disk_bytes=self.config.cache_max_bytes,
                durable=self.config.cache_durable,
            )
        self._inflight: InflightTable[_RequestState] = InflightTable()
        #: fingerprint -> quarantine metadata, persisted via state_dir
        self._quarantined: dict[str, dict] = {}
        self._draining = False
        self._drain_deadline_at: Optional[float] = None
        self._last_heartbeat_at = self._clock()
        if self.config.state_dir:
            self._restore_state()

    @property
    def cache(self) -> Optional[CompilationCache]:
        return self._cache

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> dict[str, dict]:
        """Fingerprint -> metadata of currently quarantined inputs."""
        return dict(self._quarantined)

    def _restore_state(self) -> None:
        """Adopt the snapshot under ``state_dir``, if any: OPEN
        breakers come back open (aged past their cooldown they present
        as HALF_OPEN and re-enter probing) and quarantined fingerprints
        are rejected at admission without re-executing anything."""
        loaded = load_state(
            self.config.state_dir,
            diagnostic=lambda msg: print(
                f"miniclang-serve: warning: {msg}", file=sys.stderr
            ),
        )
        if loaded is None:
            return
        restored = self._breakers.restore_state(loaded.breakers)
        self._quarantined = dict(loaded.quarantined)
        _QUARANTINE_RESTORED.inc(len(self._quarantined))
        self._emit(
            "state-restored",
            breakers=restored,
            quarantined=len(self._quarantined),
            saved_at=loaded.saved_at,
        )

    def snapshot_state(self) -> Optional[str]:
        """Persist breakers + quarantine; returns the snapshot path
        (None when no ``state_dir`` is configured or the write failed —
        losing a snapshot never takes the service down with it)."""
        if not self.config.state_dir:
            return None
        state = ServiceState(
            breakers=self._breakers.export_state(),
            quarantined=dict(self._quarantined),
        )
        try:
            path = save_state(self.config.state_dir, state)
        except OSError as err:
            print(
                f"miniclang-serve: warning: state snapshot failed: {err}",
                file=sys.stderr,
            )
            return None
        self._emit(
            "state-snapshot",
            path=path,
            breakers=len(state.breakers),
            quarantined=len(state.quarantined),
        )
        return path

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(
        self, deadline_s: Optional[float] = None
    ) -> None:
        """Enter drain mode: admission closes (new submissions get a
        structured ``resource-exhausted`` answer), in-flight and queued
        work gets until the drain deadline to finish, then is shed.
        Idempotent; the first call starts the deadline clock."""
        if self._draining:
            return
        self._draining = True
        deadline = (
            deadline_s
            if deadline_s is not None
            else self.config.drain_deadline_s
        )
        self._drain_deadline_at = self._clock() + max(0.0, deadline)
        _DRAINS.inc()
        self._emit(
            "drain-begin",
            deadline_s=deadline,
            queued=len(self._queue),
            active=len(self._active),
        )

    def _shed_for_drain(self, now: float) -> None:
        """Drain deadline passed: kill outstanding attempts and give
        every unresolved request a terminal answer — shutting down must
        shed structuredly, never strand silently."""
        while True:
            state = self._queue.pop()
            if state is None:
                break
            self._active.append(state)
        for state in list(self._active):
            if state.resolved:
                continue
            for attempt, worker in list(state.outstanding.items()):
                self.pool.restart(worker)
                self._close_attempt_span(state, attempt, "drain-shed")
            state.outstanding.clear()
            _DRAIN_SHED.inc()
            self._resolve(
                state,
                CompileResponse(
                    request_id=state.request.request_id,
                    status=STATUS_RESOURCE_EXHAUSTED,
                    detail=(
                        "shed at the drain deadline: service shutting "
                        "down; resubmit to a live instance"
                    ),
                    mode_used=None,
                ),
                now,
            )

    def _check_worker_health(self, now: float) -> None:
        """Heartbeat idle workers (a silently-dead process would
        otherwise only surface on its next dispatch) and recycle any
        past the ``worker_max_requests`` amnesty once idle."""
        limit = self.config.worker_max_requests
        if limit:
            for worker in self.pool.idle_workers():
                if worker.jobs_done >= limit:
                    self.pool.restart(worker)
                    _WORKER_RECYCLED.inc()
                    self._emit(
                        "worker-recycled",
                        worker=worker.worker_id,
                        jobs_done=worker.jobs_done,
                    )
        interval = self.config.heartbeat_interval_s
        if not interval or now - self._last_heartbeat_at < interval:
            return
        self._last_heartbeat_at = now
        for worker in self.pool.idle_workers():
            if not worker.proc.is_alive():
                self.pool.restart(worker)
                _HEARTBEAT_RESTARTS.inc()
                self._emit(
                    "worker-heartbeat-restart",
                    worker=worker.worker_id,
                )

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _init_instruments(self) -> None:
        """Register this service's instruments in the metrics registry.

        Histogram buckets are the fixed defaults, so snapshots from any
        service (or worker) merge exactly, bucket by bucket.
        """
        m = self.metrics
        self._m_requests = m.counter(
            "service_requests_total",
            "Requests submitted to the compile service",
        )
        self._m_responses = m.counter(
            "service_responses_total",
            "Terminal responses by status",
            ("status",),
        )
        self._m_latency = m.histogram(
            "service_request_duration_seconds",
            "End-to-end latency by terminal outcome "
            "(ok/degraded/error/.../cached/coalesced/shed)",
            ("outcome",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_queue_wait = m.histogram(
            "service_queue_wait_seconds",
            "Admission-to-first-dispatch wait",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_queue_depth = m.gauge(
            "service_queue_depth", "Requests queued, not yet dispatched"
        )
        self._m_in_flight = m.gauge(
            "service_in_flight", "Requests dispatched, not yet resolved"
        )
        self._m_breakers_open = m.gauge(
            "service_breakers_open",
            "Circuit breakers currently open (quarantined fingerprints)",
        )
        self._m_retries = m.counter(
            "service_retries_total", "Attempt retries scheduled"
        )
        self._m_hedges = m.counter(
            "service_hedges_total", "Hedged duplicate attempts"
        )
        self._m_breaker = m.counter(
            "service_breaker_transitions_total",
            "Circuit-breaker state transitions",
            ("from", "to"),
        )
        self._m_cache_events = m.counter(
            "service_cache_events_total",
            "Response-cache outcomes by tier",
            ("tier",),
        )
        self._m_attempts = m.counter(
            "service_attempts_total",
            "Worker attempts dispatched by mode",
            ("mode",),
        )

    def _emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    def _on_queue_change(self, queued: int, in_flight: int) -> None:
        self._m_queue_depth.set(queued)
        self._m_in_flight.set(in_flight)

    def _on_breaker_transition(
        self, fingerprint: str, old: str, new: str
    ) -> None:
        self._m_breaker.labels(**{"from": old, "to": new}).inc()
        self._m_breakers_open.set(self._breakers.open_count)
        if new == CLOSED:
            # A successful half-open probe is the parole hearing: the
            # input demonstrably works again, lift its quarantine.
            self._quarantined.pop(fingerprint, None)
        self._emit(
            "breaker-transition",
            fingerprint=fingerprint,
            old=old,
            new=new,
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self, request: CompileRequest
    ) -> Optional[CompileResponse]:
        """Admit one request.  Returns a terminal response immediately
        when the request is rejected (open breaker, shed load); None
        when it was queued — drain to get its response."""
        _REQUESTS.inc()
        self._m_requests.inc()
        self._seq += 1
        if request.request_id is None:
            request.request_id = f"r{self._seq:05d}"
        now = self._clock()
        state = _RequestState(request, now)
        if self._draining:
            _DRAIN_REJECTED.inc()
            self._emit(
                "drain-reject", request_id=request.request_id
            )
            return self._reject(
                state,
                STATUS_RESOURCE_EXHAUSTED,
                "service draining: admission closed; resubmit to a "
                "live instance",
            )
        if request.budget_s is not None and request.budget_s <= 0:
            # Propagated-deadline hygiene: a caller whose budget is
            # already spent gets an instant answer instead of burning a
            # worker on a result nobody is waiting for.
            _BUDGET_EXPIRED.inc()
            self._emit(
                "budget-expired",
                request_id=request.request_id,
                stage="admission",
            )
            return self._reject(
                state,
                STATUS_TIMEOUT,
                "deadline budget exhausted before admission "
                f"({request.budget_s:.3f}s remaining)",
            )
        if self._trace_requests:
            # Mint the trace context at admission (or join one the
            # caller pre-set, OpenTelemetry-style); every decision from
            # here on lands in this request's merged trace.
            if request.trace_id is None:
                request.trace_id = new_trace_id()
            state.trace = RequestTrace(
                request.trace_id, request.request_id
            )
        self._emit(
            "submit",
            request_id=request.request_id,
            trace_id=request.trace_id,
            fingerprint=state.fingerprint,
            action=request.action,
            mode=request.mode,
        )
        breaker = self._breakers.get(state.fingerprint)
        # The breaker is consulted before the cache on purpose: a
        # quarantined fingerprint must be rejected, never answered from
        # a cache entry recorded back when it was healthy, and a
        # half-open probe must actually run.
        if breaker.state == CLOSED and self._cache is not None:
            lookup_start = time.perf_counter_ns()
            response = self._serve_from_cache(state)
            if state.trace is not None:
                state.trace.add_span(
                    "cache-lookup",
                    lookup_start,
                    time.perf_counter_ns(),
                    detail="hit" if response is not None else "miss",
                )
            if response is not None:
                return response
        decision_start = time.perf_counter_ns()
        allowed = breaker.allow()
        if state.trace is not None:
            state.trace.add_span(
                "breaker-decision",
                decision_start,
                time.perf_counter_ns(),
                detail=f"state={breaker.state} allowed={allowed}",
            )
        if not allowed:
            _BREAKER_REJECTED.inc()
            self._emit(
                "breaker-reject",
                request_id=request.request_id,
                trace_id=request.trace_id,
                fingerprint=state.fingerprint,
            )
            return self._reject(
                state,
                STATUS_CIRCUIT_OPEN,
                "circuit breaker open for this input fingerprint "
                f"({state.fingerprint}): quarantined as poison",
            )
        if self.config.single_flight:
            # Single-flight: an identical request already in flight
            # makes this one a follower — it parks, runs nothing, and
            # receives a copy of the leader's terminal response.
            if self._inflight.leader(state.fingerprint) is not None:
                self._inflight.follow(state.fingerprint, state)
                SINGLE_FLIGHT_COLLAPSES.inc()
                self._emit(
                    "coalesce-follow",
                    request_id=request.request_id,
                    trace_id=request.trace_id,
                    fingerprint=state.fingerprint,
                )
                return None
        if not self._queue.offer(state):
            _SHED.inc()
            return self._reject(
                state,
                STATUS_RESOURCE_EXHAUSTED,
                "admission queue over capacity "
                f"({self._queue.capacity}); retry later",
            )
        if self.config.single_flight:
            self._inflight.lead(state.fingerprint, state)
        return None

    def _serve_from_cache(
        self, state: _RequestState
    ) -> Optional[CompileResponse]:
        """Replay a memoized terminal response, if one exists.  The
        degraded-tagged key is consulted only as a fallback and only
        when degradation is allowed for this request."""
        assert self._cache is not None
        tier = "response-hit"
        data = self._cache.get_response(state.fingerprint)
        if (
            data is None
            and self.config.allow_degraded
            and state.request.allow_degraded
        ):
            data = self._cache.get_response(
                degraded_key(state.fingerprint)
            )
            if data is not None:
                DEGRADED_HITS.inc()
                tier = "degraded-hit"
        if data is None:
            self._m_cache_events.labels(tier="miss").inc()
            return None
        self._m_cache_events.labels(tier=tier).inc()
        response = CompileResponse.from_dict(data)
        response.request_id = state.request.request_id
        response.cache_hit = True
        # Attempt accounting describes *this* request's serving cost:
        # a replay burned no workers regardless of what the original
        # execution took.
        response.attempts = 0
        response.retries = 0
        response.hedged = False
        response.duration_s = self._clock() - state.admitted_at
        self._record_response(state, response)
        return response

    def _reject(
        self, state: _RequestState, status: str, detail: str
    ) -> CompileResponse:
        response = CompileResponse(
            request_id=state.request.request_id,
            status=status,
            detail=detail,
            mode_used=None,
        )
        self._record_response(state, response)
        return response

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Admitted requests without a terminal response yet."""
        return len(self._queue) + len(self._active)

    @property
    def admission_queue(self) -> AdmissionQueue:
        """The bounded admission queue (observer hook: ``on_change``)."""
        return self._queue

    @property
    def breaker_board(self) -> BreakerBoard:
        """The per-fingerprint breaker board (hook: ``on_transition``)."""
        return self._breakers

    def step(self, extra_conns=()) -> list:
        """One event-loop iteration: health checks, dispatch, one
        bounded wait, deadline and hedge enforcement.

        Returns the members of *extra_conns* that became readable
        during the wait — a long-lived caller (the network shard
        router) hands in its inbox wakeup here so new submissions
        interrupt the worker wait instead of waiting out the poll
        timeout.  Safe to call with nothing pending: it degrades to a
        bounded sleep on *extra_conns*."""
        now = self._clock()
        if (
            self._drain_deadline_at is not None
            and now >= self._drain_deadline_at
        ):
            self._shed_for_drain(now)
            return []
        self._check_worker_health(now)
        self._start_ready(now)
        timeout = self._poll_timeout(self._clock())
        if self._drain_deadline_at is not None:
            timeout = min(
                timeout,
                max(0.0, self._drain_deadline_at - self._clock()),
            )
        ready_workers, ready_extra = self.pool.wait(
            timeout, extra_conns=extra_conns
        )
        for worker in ready_workers:
            self._on_worker_ready(worker)
        now = self._clock()
        self._enforce_deadlines(now)
        self._maybe_hedge(now)
        return ready_extra

    def drain(self) -> None:
        """Run until every admitted request has a terminal response.

        In drain mode (:meth:`begin_drain`) the loop additionally
        enforces the drain deadline: whatever has not resolved by then
        is shed with a structured answer and the loop exits."""
        while self.pending:
            self.step()

    def process_batch(
        self, requests: list[CompileRequest]
    ) -> list[CompileResponse]:
        """Submit *requests*, drain, and return responses in order."""
        order: list[str] = []
        for request in requests:
            self.submit(request)
            order.append(request.request_id)
        self.drain()
        return [self._responses[rid] for rid in order]

    # ------------------------------------------------------------------
    def _start_ready(self, now: float) -> None:
        """Dispatch runnable work onto idle workers."""
        while self.pool.idle_workers():
            state = next(
                (
                    s
                    for s in self._active
                    if not s.resolved
                    and not s.outstanding
                    and s.next_retry_at is not None
                    and s.next_retry_at <= now
                ),
                None,
            )
            if state is None:
                state = self._queue.pop()
                if state is None:
                    return
                state.next_retry_at = now
                self._active.append(state)
            if (
                state.budget_deadline_at is not None
                and now >= state.budget_deadline_at
            ):
                # The budget ran out while the request sat queued (or
                # between retries): answer now, dispatch nothing.
                _BUDGET_EXPIRED.inc()
                self._emit(
                    "budget-expired",
                    request_id=state.request.request_id,
                    stage="dispatch",
                )
                self._resolve(
                    state,
                    CompileResponse(
                        request_id=state.request.request_id,
                        status=STATUS_TIMEOUT,
                        detail=(
                            "deadline budget exhausted before dispatch "
                            f"({state.request.budget_s:.3f}s granted)"
                        ),
                        mode_used=None,
                        degraded=state.degraded,
                    ),
                    now,
                )
                continue
            if not self._dispatch(state, now):
                # The chosen idle worker's pipe was dead; it has been
                # replaced — loop and try again with the fresh worker.
                continue

    def _dispatch(
        self, state: _RequestState, now: float, hedge: bool = False
    ) -> bool:
        idle = self.pool.idle_workers()
        if not idle:
            return False
        worker = idle[0]
        request = state.request
        attempt = state.attempts
        # The attempt span id is allocated *before* dispatch so the
        # worker can parent its pipeline spans under it; the span itself
        # is recorded when the attempt completes (_close_attempt_span).
        attempt_span_id = (
            new_span_id() if state.trace is not None else None
        )
        payload = WorkPayload(
            request_id=request.request_id,
            attempt=attempt,
            source=request.source,
            filename=request.filename,
            action=request.action,
            mode=state.mode,
            optimize=request.optimize,
            num_threads=request.num_threads,
            entry=request.entry,
            defines=dict(request.defines),
            fuel=request.fuel,
            strip_omp_transforms=request.strip_omp_transforms,
            inject_faults=request.faults_for_attempt(attempt),
            cache_dir=(
                self.config.cache_dir
                if self._cache is not None
                else None
            ),
            cache_durable=self.config.cache_durable,
            trace_id=(
                request.trace_id if state.trace is not None else None
            ),
            parent_span_id=attempt_span_id,
        )
        if not worker.send(payload):
            self.pool.restart(worker)
            return False
        deadline = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.deadline_s
        )
        if state.budget_deadline_at is not None:
            # Deadline propagation: no attempt may outlive what is left
            # of the caller's end-to-end budget.
            deadline = min(
                deadline, max(0.0, state.budget_deadline_at - now)
            )
        if attempt == 0:
            state.queue_wait_s = max(0.0, now - state.admitted_at)
            self._m_queue_wait.observe(state.queue_wait_s)
            if state.trace is not None:
                state.trace.add_span(
                    "queue-wait", state.start_ns, time.perf_counter_ns()
                )
        if attempt_span_id is not None:
            state.attempt_spans[attempt] = (
                attempt_span_id,
                time.perf_counter_ns(),
            )
        state.attempts += 1
        state.mode_attempts += 1
        state.outstanding[attempt] = worker
        state.attempt_started_at[attempt] = now
        state.next_retry_at = None
        worker.busy = (state, attempt, now + deadline)
        if hedge:
            state.hedged = True
            state.hedge_attempt = attempt
            _HEDGES.inc()
            self._m_hedges.inc()
        self._m_attempts.labels(mode=state.mode).inc()
        self._emit(
            "dispatch",
            request_id=request.request_id,
            trace_id=request.trace_id,
            attempt=attempt,
            mode=state.mode,
            worker=worker.worker_id,
            hedge=hedge or None,
            faults=list(payload.inject_faults) or None,
        )
        return True

    def _poll_timeout(self, now: float) -> float:
        """Sleep budget until the next timed decision is due."""
        candidates: list[float] = []
        for worker in self.pool.busy_workers():
            candidates.append(worker.busy[2])  # attempt deadline
        # Retry/hedge timers only matter while a worker is free to take
        # the dispatch; otherwise the wake-up signal is a result or a
        # deadline, both covered above (avoids a busy-poll when a due
        # retry has nowhere to run).
        if self.pool.idle_workers():
            hedge_delay = self.config.hedge_delay_s
            for state in self._active:
                if state.resolved:
                    continue
                if (
                    state.next_retry_at is not None
                    and not state.outstanding
                ):
                    candidates.append(state.next_retry_at)
                if (
                    hedge_delay is not None
                    and state.outstanding
                    and not state.hedged
                ):
                    earliest = min(
                        state.attempt_started_at[a]
                        for a in state.outstanding
                    )
                    candidates.append(earliest + hedge_delay)
        if not candidates:
            return 0.05
        return min(max(min(candidates) - now, 0.0), 0.5)

    # ------------------------------------------------------------------
    # Attempt completion
    # ------------------------------------------------------------------
    def _close_attempt_span(
        self,
        state: _RequestState,
        attempt: int,
        detail: str,
        outcome: Optional[WorkOutcome] = None,
    ) -> None:
        """Record the attempt span opened at dispatch and, when the
        worker shipped pipeline spans back, align them onto the parent
        timeline and adopt them under it."""
        entry = state.attempt_spans.pop(attempt, None)
        if entry is None or state.trace is None:
            return
        span_id, started_ns = entry
        end_ns = time.perf_counter_ns()
        state.trace.add_span(
            f"attempt-{attempt}",
            started_ns,
            end_ns,
            detail=detail,
            span_id=span_id,
        )
        if outcome is not None and outcome.spans:
            state.trace.merge_worker_spans(
                outcome.spans,
                (outcome.wall_anchor_ns, outcome.perf_anchor_ns),
                span_id,
                started_ns,
                end_ns,
            )

    def _absorb_worker_telemetry(self, outcome: WorkOutcome) -> None:
        """Fold a worker's compile-stat deltas and metrics snapshot into
        the parent registries.  Runs for EVERY received outcome — failed
        and stale attempts did real compiler work too; dropping their
        counters made parent-side -print-stats systematically undercount
        (the bug this fixes)."""
        for key, value in outcome.stats.items():
            owner, _, name = key.partition(".")
            STATS.get(owner, name).inc(value)
        if outcome.metrics:
            self.metrics.merge(outcome.metrics)

    def _on_worker_ready(self, worker: WorkerHandle) -> None:
        state, attempt, _deadline = worker.busy
        now = self._clock()
        died = False
        outcome: Optional[WorkOutcome] = None
        try:
            outcome = worker.conn.recv()
            worker.busy = None
            worker.jobs_done += 1
        except (EOFError, OSError):
            self.pool.restart(worker)
            died = True
        state.outstanding.pop(attempt, None)
        if outcome is not None:
            self._absorb_worker_telemetry(outcome)
            self._emit(
                "attempt-complete",
                request_id=state.request.request_id,
                trace_id=state.request.trace_id,
                attempt=attempt,
                kind=outcome.kind,
                duration_s=round(outcome.duration_s, 6),
                worker_pid=outcome.pid or None,
                stale=state.resolved or None,
            )
        if state.resolved:
            _STALE_RESULTS.inc()
            return
        if died:
            _WORKER_LOST.inc()
            self._close_attempt_span(state, attempt, "worker-lost")
            self._emit(
                "worker-lost",
                request_id=state.request.request_id,
                trace_id=state.request.trace_id,
                attempt=attempt,
            )
            self._attempt_failed(
                state,
                attempt,
                "worker-lost",
                "worker process died unexpectedly (broken pipe)",
                now,
            )
            return
        assert outcome is not None
        self._close_attempt_span(state, attempt, outcome.kind, outcome)
        if outcome.kind == "ok":
            self._attempt_succeeded(state, attempt, outcome, now)
        elif outcome.kind in ("compile-error", "guest-error", "timeout"):
            # Deterministic user-side failures: terminal, never retried
            # — they would fail identically on every worker and mode.
            # "timeout" here is the *guest* guardrail (fuel / in-guest
            # wall clock), a property of the program; only the parent's
            # per-attempt deadline (_enforce_deadlines) is retryable
            # infrastructure trouble.
            if outcome.kind == "timeout":
                _TIMEOUTS.inc()
                status = STATUS_TIMEOUT
            else:
                _USER_ERRORS.inc()
                status = STATUS_ERROR
            self._resolve(
                state,
                CompileResponse(
                    request_id=state.request.request_id,
                    status=status,
                    exit_code=outcome.exit_code,
                    diagnostics=outcome.diagnostics,
                    detail=outcome.detail,
                    mode_used=state.mode,
                    degraded=state.degraded,
                ),
                now,
            )
        else:  # "ice"
            self._attempt_failed(
                state,
                attempt,
                outcome.kind,
                outcome.detail or outcome.diagnostics,
                now,
            )

    def _attempt_succeeded(
        self,
        state: _RequestState,
        attempt: int,
        outcome: WorkOutcome,
        now: float,
    ) -> None:
        if state.hedged and attempt == state.hedge_attempt:
            _HEDGE_WINS.inc()
        # (The worker's compile-stat deltas were already folded into the
        # parent registry by _absorb_worker_telemetry, which runs for
        # every received outcome, not just successes.)
        self._breakers.get(state.fingerprint).record_success()
        if state.degraded:
            _DEGRADED.inc()
            status = STATUS_DEGRADED
            detail = (
                f"degraded: fell back from {state.request.mode} to "
                f"{state.mode} after "
                f"{len(state.failures)} failed attempt(s)"
            )
        else:
            _OK.inc()
            status = STATUS_OK
            detail = ""
        self._resolve(
            state,
            CompileResponse(
                request_id=state.request.request_id,
                status=status,
                output=outcome.output,
                exit_code=outcome.exit_code,
                diagnostics=outcome.diagnostics,
                detail=detail,
                mode_used=state.mode,
                degraded=state.degraded,
                stats=outcome.stats,
            ),
            now,
        )

    def _attempt_failed(
        self,
        state: _RequestState,
        attempt: int,
        kind: str,
        detail: str,
        now: float,
    ) -> None:
        state.failures.append((attempt, state.mode, kind, detail))
        breaker = self._breakers.get(state.fingerprint)
        if breaker.record_failure():
            _BREAKER_TRIPS.inc()
            self._quarantine(state, now)
            return
        if state.outstanding:
            return  # a sibling (hedge) attempt may still win
        retry = self.config.retry
        can_degrade = (
            self.config.allow_degraded
            and state.request.allow_degraded
            and not state.degraded
        )
        # While a representation fallback is still available, reserve
        # the last slot of the attempt budget for it: a mode-specific
        # deterministic failure must reach the other representation
        # *before* the circuit breaker (threshold == max_attempts by
        # default) writes the input off as poison.
        budget = (
            max(1, retry.max_attempts - 1)
            if can_degrade
            else retry.max_attempts
        )
        delay = retry.backoff(state.mode_attempts - 1, state.rng)
        # Deadline propagation: a retry whose backoff alone would land
        # past the caller's remaining budget is pointless work — the
        # caller has given up by then.  Suppress it and fall through to
        # degradation (an immediate dispatch may still fit) or the
        # terminal answer.
        budget_blocked = (
            state.budget_deadline_at is not None
            and now + delay >= state.budget_deadline_at
        )
        if state.mode_attempts < budget and budget_blocked:
            _BUDGET_SUPPRESSED.inc()
            self._emit(
                "budget-suppressed-retry",
                request_id=state.request.request_id,
                trace_id=state.request.trace_id,
                attempt=attempt,
                delay_s=round(delay, 6),
            )
        if state.mode_attempts < budget and not budget_blocked:
            state.next_retry_at = now + delay
            _RETRIES.inc()
            self._m_retries.inc()
            self._emit(
                "retry",
                request_id=state.request.request_id,
                trace_id=state.request.trace_id,
                attempt=attempt,
                kind=kind,
                delay_s=round(delay, 6),
            )
            return
        if can_degrade:
            # Graceful degradation: the other representation of the
            # same transformations serves as the fallback implementation.
            state.degraded = True
            from_mode = state.mode
            state.mode = other_mode(state.mode)
            state.mode_attempts = 0
            state.next_retry_at = now
            _DEGRADED_FALLBACKS.inc()
            self._emit(
                "degrade",
                request_id=state.request.request_id,
                trace_id=state.request.trace_id,
                from_mode=from_mode,
                to_mode=state.mode,
            )
            return
        _FAILED.inc()
        budget_cut = budget_blocked and state.mode_attempts < budget
        status = (
            STATUS_TIMEOUT
            if kind == "timeout" or budget_cut
            else STATUS_ICE
        )
        summary = "; ".join(
            f"attempt {a} [{mode}] {k}" for a, mode, k, _ in state.failures
        )
        if budget_cut:
            summary += "; remaining retries suppressed by deadline budget"
        self._resolve(
            state,
            CompileResponse(
                request_id=state.request.request_id,
                status=status,
                detail=f"{detail}\nfailure history: {summary}",
                mode_used=state.mode,
                degraded=state.degraded,
            ),
            now,
        )

    # ------------------------------------------------------------------
    # Deadlines and hedging
    # ------------------------------------------------------------------
    def _enforce_deadlines(self, now: float) -> None:
        for worker in self.pool.busy_workers():
            state, attempt, deadline_at = worker.busy
            if now < deadline_at:
                continue
            self.pool.restart(worker)
            state.outstanding.pop(attempt, None)
            if state.resolved:
                continue  # straggler of an already-resolved request
            _TIMEOUTS.inc()
            self._close_attempt_span(state, attempt, "deadline-killed")
            self._emit(
                "deadline-kill",
                request_id=state.request.request_id,
                trace_id=state.request.trace_id,
                attempt=attempt,
            )
            self._attempt_failed(
                state,
                attempt,
                "timeout",
                f"attempt {attempt} exceeded its "
                f"{deadline_at - state.attempt_started_at[attempt]:.1f}s "
                "wall-clock deadline (worker killed)",
                now,
            )

    def _maybe_hedge(self, now: float) -> None:
        hedge_delay = self.config.hedge_delay_s
        if hedge_delay is None:
            return
        for state in self._active:
            if (
                state.resolved
                or state.hedged
                or len(state.outstanding) != 1
            ):
                continue
            started = min(
                state.attempt_started_at[a] for a in state.outstanding
            )
            if now - started < hedge_delay:
                continue
            if not self.pool.idle_workers():
                return
            self._dispatch(state, now, hedge=True)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _quarantine(self, state: _RequestState, now: float) -> None:
        """Stop retrying a poison input: write a reproducer, answer
        ``circuit-open``."""
        request = state.request
        reproducer: Optional[str] = None
        history = "".join(
            f"attempt {a} [{mode}] {kind}: {detail}\n"
            for a, mode, kind, detail in state.failures
        )
        if self.config.quarantine_dir:
            flags = []
            if request.mode == "irbuilder":
                flags.append("-fopenmp-enable-irbuilder")
            if request.optimize:
                flags.append("-O")
            if request.action == "run":
                flags.append("--run")
            invocation = (
                "miniclang " + " ".join(flags + ["repro.c"])
                + "  # quarantined poison input "
                + f"(fingerprint {state.fingerprint})"
            )
            exc = PoisonInputError(
                f"input {state.fingerprint} failed "
                f"{len(state.failures)} attempt(s); breaker opened"
            )
            with crash_context(
                request.source,
                request.filename,
                invocation,
                self.config.quarantine_dir,
            ):
                reproducer = write_reproducer(
                    "service-quarantine", exc, history
                )
        _QUARANTINED.inc()
        self._quarantined[state.fingerprint] = {
            "filename": request.filename,
            "failures": len(state.failures),
            "reproducer": reproducer,
        }
        self._emit(
            "quarantine",
            request_id=request.request_id,
            trace_id=request.trace_id,
            fingerprint=state.fingerprint,
            failures=len(state.failures),
            reproducer=reproducer,
        )
        self._resolve(
            state,
            CompileResponse(
                request_id=request.request_id,
                status=STATUS_CIRCUIT_OPEN,
                detail=(
                    "circuit breaker opened after "
                    f"{len(state.failures)} failed attempt(s); "
                    "input quarantined\n" + history.rstrip("\n")
                ),
                mode_used=state.mode,
                degraded=state.degraded,
                reproducer_path=reproducer,
            ),
            now,
        )

    def _resolve(
        self,
        state: _RequestState,
        response: CompileResponse,
        now: float,
    ) -> None:
        response.attempts = state.attempts
        response.retries = max(
            0, state.attempts - 1 - (1 if state.hedged else 0)
        )
        response.hedged = state.hedged
        response.duration_s = now - state.admitted_at
        self._queue.release()
        self._active.remove(state)
        self._record_response(state, response)
        self._maybe_cache_store(state, response)
        if self.config.single_flight:
            for follower in self._inflight.resolve(
                state.fingerprint, state
            ):
                fanned = replace(
                    response,
                    request_id=follower.request.request_id,
                    coalesced=True,
                    # the follower itself burned no attempts: the
                    # leader's execution cost is on the leader's row
                    attempts=0,
                    retries=0,
                    hedged=False,
                    duration_s=now - follower.admitted_at,
                )
                self._record_response(follower, fanned)

    #: terminal statuses worth memoizing: deterministic answers a
    #: byte-identical future request would reproduce anyway
    _CACHEABLE_STATUSES = frozenset(
        {STATUS_OK, STATUS_ERROR, STATUS_DEGRADED}
    )

    def _maybe_cache_store(
        self, state: _RequestState, response: CompileResponse
    ) -> None:
        """Memoize a terminal response under the request fingerprint.

        Never caches while the fingerprint's breaker is not CLOSED (a
        quarantined input must stay quarantined, a half-open probe's
        answer must not short-circuit the recovery protocol), never
        caches infrastructure failures (ice/timeout/circuit-open —
        transient by definition), and files degraded results under the
        degraded-tagged key so they can never shadow a primary result.
        """
        if self._cache is None or response.cache_hit:
            return
        if response.status not in self._CACHEABLE_STATUSES:
            return
        if self._breakers.get(state.fingerprint).state != CLOSED:
            return
        key = state.fingerprint
        if response.status == STATUS_DEGRADED:
            key = degraded_key(key)
        self._cache.put_response(key, response.to_dict())
        self._m_cache_events.labels(tier="store").inc()

    @staticmethod
    def _outcome_label(response: CompileResponse) -> str:
        """Latency-histogram outcome: serving path wins over status —
        a replayed or coalesced answer has its own latency profile."""
        if response.cache_hit:
            return "cached"
        if response.coalesced:
            return "coalesced"
        if response.status == STATUS_RESOURCE_EXHAUSTED:
            return "shed"
        return response.status

    def _record_response(
        self, state: _RequestState, response: CompileResponse
    ) -> None:
        """The single choke point every terminal response passes through
        (resolutions, rejects, cache replays, coalesced fan-outs):
        metrics, the JSONL event, and trace finalization happen here, so
        requests-in == sum of terminal outcomes by construction."""
        _RESPONSES.inc()
        response.queue_wait_s = state.queue_wait_s
        outcome = self._outcome_label(response)
        self._m_responses.labels(status=response.status).inc()
        self._m_latency.labels(outcome=outcome).observe(
            response.duration_s
        )
        if state.trace is not None:
            response.trace_id = state.trace.trace_id
            state.trace.close(
                "ServiceRequest",
                state.start_ns,
                time.perf_counter_ns(),
                detail=f"{response.request_id}: {response.status}",
            )
            self.tracer.record(state.trace)
        self._emit(
            "response",
            request_id=response.request_id,
            trace_id=response.trace_id,
            status=response.status,
            outcome=outcome,
            duration_s=round(response.duration_s, 6),
            queue_wait_s=round(response.queue_wait_s, 6),
            attempts=response.attempts,
            retries=response.retries,
            hedged=response.hedged or None,
            cache_hit=response.cache_hit or None,
            coalesced=response.coalesced or None,
        )
        if self.config.retain_responses:
            self._responses[response.request_id] = response
        state.response = response
        profiler = active_time_trace()
        if profiler is not None:
            profiler.add_complete_event(
                "ServiceRequest",
                f"{response.request_id}: {response.status}",
                state.start_ns,
                time.perf_counter_ns(),
            )
        if self.on_response is not None:
            self.on_response(response)

    # ------------------------------------------------------------------
    @property
    def responses(self) -> dict[str, CompileResponse]:
        return dict(self._responses)

    def shutdown(self) -> None:
        self.snapshot_state()
        self.pool.shutdown()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
