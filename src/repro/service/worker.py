"""The worker-process side of the compile service.

``worker_main`` is the child entry point: a loop that receives
:class:`~repro.service.request.WorkPayload` objects over a pipe,
executes them through the request-scoped pipeline entry point
(:func:`repro.pipeline.execute_request`) and ships a
:class:`~repro.service.request.WorkOutcome` back.  One pipeline per
worker, one request at a time — crash isolation comes from the process
boundary, not from shared-state discipline.

Per-payload fault arming: the parent decides which ``-finject-fault``
specs apply to each attempt and the worker arms exactly those around the
execution, so chaos failures are a deterministic function of
``(request, attempt)`` even across worker restarts.  Three service-level
sites are interpreted here rather than inside the pipeline:

* ``service-worker-exit`` — ``os._exit``: a hard death the parent sees
  as a broken pipe (the OOM-kill / segfault simulation);
* ``service-worker-hang`` — sleep far past any deadline, forcing the
  parent's wall-clock enforcement to kill and retry;
* ``service-irbuilder`` / ``service-shadow`` — representation-specific
  failures, the deterministic trigger for graceful degradation;
* ``service-worker`` — a mode-independent ICE (the poison-input stand-in).
"""

from __future__ import annotations

import os
import time

from repro.instrument.faultinject import FAULTS, InjectedFault
from repro.instrument.telemetry import (
    MetricsRegistry,
    clock_anchor,
    events_to_spans,
)
from repro.instrument.timetrace import (
    disable_time_trace,
    enable_time_trace,
)
from repro.service.request import WorkOutcome, WorkPayload

#: how long a "hung" worker sleeps — effectively forever next to any
#: realistic per-attempt deadline
_HANG_SLEEP_S = 3600.0

#: per-process compilation caches, one per cache directory.  Workers
#: share the *disk* tier through the directory; the memory tier (and
#: the live-module memo) is private to each worker process.
_CACHES: dict = {}


def _cache_for(cache_dir, durable: bool = False):
    if cache_dir is None:
        return None
    cache = _CACHES.get((cache_dir, durable))
    if cache is None:
        from repro.cache import CompilationCache

        cache = CompilationCache(cache_dir, durable=durable)
        _CACHES[(cache_dir, durable)] = cache
    return cache


def _attempt_cache(payload: WorkPayload):
    """The cache this attempt compiles through.

    A fault-armed attempt must really run the pipeline — an
    artifact-cache hit would skip the armed site entirely — *except*
    when every armed site is a ``storage`` one: those live inside the
    disk tier, so bypassing the cache would be bypassing the fault.
    """
    if payload.inject_faults:
        sites = (spec.partition(":")[0] for spec in payload.inject_faults)
        if any(FAULTS.scope_of(site) != "storage" for site in sites):
            return None
    return _cache_for(
        getattr(payload, "cache_dir", None),
        getattr(payload, "cache_durable", False),
    )


def _finalize(payload: WorkPayload, outcome: WorkOutcome) -> WorkOutcome:
    """Attach the telemetry sidecar to an outgoing outcome: this
    worker's pid and clock anchor (for span alignment in the parent),
    any captured pipeline spans, and the per-attempt metrics snapshot
    the parent merges exactly (fixed-bucket histograms)."""
    outcome.pid = os.getpid()
    outcome.wall_anchor_ns, outcome.perf_anchor_ns = clock_anchor()
    metrics = MetricsRegistry()
    metrics.histogram(
        "worker_attempt_duration_seconds",
        "Per-attempt wall time inside the worker process",
        ("kind", "mode"),
    ).labels(kind=outcome.kind, mode=payload.mode).observe(
        outcome.duration_s
    )
    metrics.counter(
        "worker_attempts_total",
        "Attempts executed by worker processes",
        ("kind",),
    ).labels(kind=outcome.kind).inc()
    outcome.metrics = metrics.snapshot()
    return outcome


def execute_payload(payload: WorkPayload) -> WorkOutcome:
    """Run one attempt in this process and classify the outcome."""
    from repro.pipeline import execute_request

    FAULTS.disarm_all()
    for spec in payload.inject_faults:
        FAULTS.arm_spec(spec)
    started = time.perf_counter()
    try:
        try:
            FAULTS.hit("service-worker-exit")
        except InjectedFault:
            os._exit(9)  # simulate SIGKILL (OOM killer)
        try:
            FAULTS.hit("service-worker-hang")
        except InjectedFault:
            time.sleep(_HANG_SLEEP_S)
        try:
            FAULTS.hit("service-worker")
            FAULTS.hit(
                "service-irbuilder"
                if payload.mode == "irbuilder"
                else "service-shadow"
            )
        except InjectedFault as exc:
            return _finalize(
                payload,
                WorkOutcome(
                    request_id=payload.request_id,
                    attempt=payload.attempt,
                    kind="ice",
                    detail=str(exc),
                    duration_s=time.perf_counter() - started,
                ),
            )
        # Distributed tracing: with a propagated trace context, run the
        # whole attempt under a fresh time-trace session and ship the
        # completed pipeline spans back alongside the result.
        traced = payload.trace_id is not None
        if traced:
            disable_time_trace()  # defensive: never inherit a session
            profiler = enable_time_trace()
        try:
            outcome = execute_request(
                payload.source,
                filename=payload.filename,
                action=payload.action,
                mode=payload.mode,
                optimize=payload.optimize,
                num_threads=payload.num_threads,
                entry=payload.entry,
                defines=payload.defines,
                fuel=payload.fuel,
                strip_omp_transforms=payload.strip_omp_transforms,
                cache=_attempt_cache(payload),
            )
        finally:
            spans: list[dict] = []
            if traced:
                disable_time_trace()
                spans = [
                    span.to_dict()
                    for span in events_to_spans(
                        profiler.events,
                        payload.trace_id,
                        payload.parent_span_id,
                    )
                ]
        result = WorkOutcome(
            request_id=payload.request_id,
            attempt=payload.attempt,
            kind=outcome.kind,
            output=outcome.output,
            exit_code=outcome.exit_code,
            diagnostics=outcome.diagnostics,
            detail=outcome.detail,
            stats=outcome.stats,
            duration_s=time.perf_counter() - started,
        )
        result.spans = spans
        return _finalize(payload, result)
    finally:
        FAULTS.disarm_all()


def worker_main(conn, worker_id: int) -> None:
    """Child-process request loop.  Exits on the ``None`` sentinel, a
    closed pipe, or a hard injected death."""
    try:
        while True:
            try:
                payload = conn.recv()
            except (EOFError, KeyboardInterrupt):
                break
            if payload is None:
                break
            outcome = execute_payload(payload)
            try:
                conn.send(outcome)
            except (BrokenPipeError, OSError):
                break
    finally:
        conn.close()
