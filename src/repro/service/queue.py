"""Bounded admission queue (load shedding).

A fixed-capacity FIFO over the requests the service has accepted but not
yet resolved.  When an ``offer`` would exceed capacity the request is
*shed* — the caller turns that into a structured ``RESOURCE_EXHAUSTED``
response immediately, which keeps tail latency bounded under overload
instead of letting an unbounded backlog grow (the same admission-control
stance as a clangd daemon refusing new requests while saturated).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class AdmissionQueue(Generic[T]):
    """FIFO with a hard capacity on *unresolved* work.

    ``capacity`` bounds ``len(queue) + in_flight``: the caller reports
    completions via :meth:`release` so that work handed to a worker
    still counts against the backpressure threshold until it resolves.
    """

    def __init__(
        self,
        capacity: int,
        on_change: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: deque[T] = deque()
        self._in_flight = 0
        #: total offers rejected over capacity
        self.shed_count = 0
        #: observer called as ``on_change(queued, in_flight)`` after
        #: every accepted mutation (telemetry gauges hook in here)
        self.on_change = on_change

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change(len(self._items), self._in_flight)

    # ------------------------------------------------------------------
    @property
    def load(self) -> int:
        """Unresolved work: queued plus in flight."""
        return len(self._items) + self._in_flight

    def offer(self, item: T) -> bool:
        """Admit *item*, or return False (shed) when over capacity."""
        if self.load >= self.capacity:
            self.shed_count += 1
            return False
        self._items.append(item)
        self._notify()
        return True

    def pop(self) -> Optional[T]:
        """Take the next queued item, moving it to in-flight."""
        if not self._items:
            return None
        self._in_flight += 1
        item = self._items.popleft()
        self._notify()
        return item

    def requeue(self, item: T) -> None:
        """Return an in-flight item to the queue head (retry path);
        does not change the load, so it can never shed."""
        self._in_flight -= 1
        self._items.appendleft(item)
        self._notify()

    def release(self) -> None:
        """Mark one in-flight item resolved."""
        if self._in_flight <= 0:
            raise RuntimeError("release() without matching pop()")
        self._in_flight -= 1
        self._notify()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)
