"""Per-input-fingerprint circuit breaker.

Guards the worker pool against *poison inputs*: a request that keeps
crashing or hanging workers gets ``failure_threshold`` chances, then its
fingerprint's breaker opens and further identical traffic is rejected
instantly (the service writes a quarantine reproducer instead of burning
workers on it forever).  After ``cooldown_s`` the breaker half-opens and
admits exactly one probe: success closes it, failure re-opens it for
another cooldown.

The clock is injected (``clock=time.monotonic`` by default) so state
transitions are testable with a fake clock, no sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Breaker for one input fingerprint."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_granted_at: Optional[float] = None
        #: times the breaker transitioned CLOSED/HALF_OPEN -> OPEN
        self.trips = 0
        #: observer called as ``on_transition(old, new)`` on every real
        #: state *mutation* (the lazy OPEN -> HALF_OPEN view in
        #: :attr:`state` does not fire it; the grant in :meth:`allow`
        #: that commits it does)
        self.on_transition = on_transition

    def _move(self, new_state: str) -> None:
        old = self._state
        self._state = new_state
        if old != new_state and self.on_transition is not None:
            self.on_transition(old, new_state)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, accounting for cooldown expiry lazily."""
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            return HALF_OPEN
        return self._state

    @property
    def is_open(self) -> bool:
        return self.state == OPEN

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May an attempt be dispatched now?

        In the half-open window the *first* caller is granted the single
        probe (the breaker moves to HALF_OPEN internally); subsequent
        callers are rejected until the probe reports back.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and (
            self._state == OPEN  # cooldown just expired: first caller
            or (
                # A granted probe that never reported back (e.g. the
                # request was shed at admission) is re-granted after
                # another cooldown, so the breaker cannot strand.
                self._probe_granted_at is not None
                and self._clock() - self._probe_granted_at
                >= self.cooldown_s
            )
        ):
            self._move(HALF_OPEN)
            self._probe_granted_at = self._clock()
            return True
        return False

    def record_failure(self) -> bool:
        """Count one infrastructure failure; returns True when this
        failure *tripped* the breaker (closed/half-open -> open)."""
        self._consecutive_failures += 1
        if self._state == HALF_OPEN or (
            self._state == CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._move(OPEN)
            self._opened_at = self._clock()
            self._probe_granted_at = None
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._move(CLOSED)
        self._opened_at = None
        self._probe_granted_at = None

    # -- durable state -------------------------------------------------
    def export_state(self) -> Optional[dict]:
        """Snapshot for :mod:`repro.service.state`; None when there is
        nothing worth persisting (CLOSED with no failure streak).

        The open timestamp is persisted as an *age* — monotonic clock
        readings mean nothing across processes — so a restored breaker
        keeps its place in the cooldown: an entry older than
        ``cooldown_s`` immediately presents as HALF_OPEN and re-enters
        probing.
        """
        if self._state == CLOSED and self._consecutive_failures == 0:
            return None
        state = {
            "state": self._state,
            "consecutive_failures": self._consecutive_failures,
            "trips": self.trips,
        }
        if self._opened_at is not None:
            state["opened_age_s"] = round(
                self._clock() - self._opened_at, 3
            )
        return state

    def restore_state(self, data: dict) -> None:
        """Adopt a snapshot produced by :meth:`export_state`."""
        state = data.get("state")
        if state not in (CLOSED, OPEN, HALF_OPEN):
            return
        self._state = state
        self._consecutive_failures = max(
            0, int(data.get("consecutive_failures", 0))
        )
        self.trips = max(0, int(data.get("trips", 0)))
        self._probe_granted_at = None
        if state == CLOSED:
            self._opened_at = None
        else:
            age = float(data.get("opened_age_s", 0.0))
            self._opened_at = self._clock() - max(0.0, age)


class BreakerBoard:
    """Fingerprint -> :class:`CircuitBreaker` map with shared settings."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[
            Callable[[str, str, str], None]
        ] = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        #: observer called as ``on_transition(fingerprint, old, new)``
        self.on_transition = on_transition

    def get(self, fingerprint: str) -> CircuitBreaker:
        breaker = self._breakers.get(fingerprint)
        if breaker is None:
            observer = None
            if self.on_transition is not None:
                board_hook = self.on_transition

                def observer(old: str, new: str, _fp=fingerprint) -> None:
                    board_hook(_fp, old, new)

            breaker = CircuitBreaker(
                self.failure_threshold,
                self.cooldown_s,
                self._clock,
                on_transition=observer,
            )
            self._breakers[fingerprint] = breaker
        return breaker

    def __len__(self) -> int:
        return len(self._breakers)

    @property
    def open_count(self) -> int:
        return sum(1 for b in self._breakers.values() if b.is_open)

    # -- durable state -------------------------------------------------
    def export_state(self) -> dict[str, dict]:
        """Fingerprint -> breaker snapshot, non-trivial entries only."""
        exported: dict[str, dict] = {}
        for fingerprint, breaker in self._breakers.items():
            state = breaker.export_state()
            if state is not None:
                exported[fingerprint] = state
        return exported

    def restore_state(self, data: dict[str, dict]) -> int:
        """Recreate breakers from a snapshot (observers attached as
        usual via :meth:`get`); returns how many were restored."""
        restored = 0
        for fingerprint, state in data.items():
            if not isinstance(fingerprint, str) or not isinstance(
                state, dict
            ):
                continue
            self.get(fingerprint).restore_state(state)
            restored += 1
        return restored
