"""Resilient compile service: worker-pool isolation, deadlines, retry
with backoff, hedging, circuit breaking, load shedding, and shadow-AST
<-> IRBuilder graceful degradation.

Public surface::

    from repro.service import (
        CompileService, ServiceConfig, CompileRequest, CompileResponse,
    )
    with CompileService(ServiceConfig(workers=4)) as svc:
        [resp] = svc.process_batch([CompileRequest(source)])

``shared_service()`` hands out a lazily created process-wide instance
(for the fuzzer oracle and other callers that want service semantics
without owning a pool); it is shut down at interpreter exit.
"""

from __future__ import annotations

import atexit
from typing import Optional

from repro.service.breaker import CircuitBreaker
from repro.service.queue import AdmissionQueue
from repro.service.request import (
    MODES,
    STATUS_CIRCUIT_OPEN,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_ICE,
    STATUS_OK,
    STATUS_RESOURCE_EXHAUSTED,
    STATUS_TIMEOUT,
    TERMINAL_STATUSES,
    CompileRequest,
    CompileResponse,
    other_mode,
)
from repro.service.retry import RetryPolicy
from repro.service.service import (
    CompileService,
    PoisonInputError,
    ServiceConfig,
)
from repro.service.state import (
    ServiceState,
    load_state,
    save_state,
    state_path,
)

__all__ = [
    "AdmissionQueue",
    "CircuitBreaker",
    "CompileRequest",
    "CompileResponse",
    "CompileService",
    "MODES",
    "PoisonInputError",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceState",
    "STATUS_CIRCUIT_OPEN",
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_ICE",
    "STATUS_OK",
    "STATUS_RESOURCE_EXHAUSTED",
    "STATUS_TIMEOUT",
    "TERMINAL_STATUSES",
    "load_state",
    "other_mode",
    "save_state",
    "shared_service",
    "state_path",
]

_shared: Optional[CompileService] = None


def shared_service() -> CompileService:
    """The lazily created process-wide service (2 workers, quarantine
    disabled — shared callers don't want reproducer directories strewn
    around the cwd)."""
    global _shared
    if _shared is None:
        _shared = CompileService(
            ServiceConfig(workers=2, quarantine_dir=None)
        )
        atexit.register(_shutdown_shared)
    return _shared


def _shutdown_shared() -> None:
    global _shared
    if _shared is not None:
        _shared.shutdown()
        _shared = None
