"""Chaos harness for the compile service: ``python -m repro.service.chaos``.

Builds a batch of real tile/unroll compile+run requests, deliberately
poisons a fraction of it with deterministic ``-finject-fault`` specs —
hard worker deaths (``service-worker-exit``), hangs past the deadline
(``service-worker-hang``), and *poison inputs* that fail on every
attempt (``service-worker`` with ``fault_attempts=-1``) — then asserts
the service's whole contract:

* **zero lost requests** — every submitted request has exactly one
  terminal response;
* transient kills and hangs are *absorbed*: those requests still end in
  ``ok``/``degraded``;
* every poison input trips its circuit breaker within the failure
  threshold, is quarantined with a written reproducer, and a resubmit
  is rejected at admission (``circuit-open``);
* the ``service.*`` statistics account for every retry, timeout,
  worker loss, trip and response.

Exit code 0 when every invariant holds, 1 otherwise — this is the CI
smoke batch and the acceptance harness in one.
"""

from __future__ import annotations

import argparse
import sys

from repro.instrument.stats import STATS
from repro.service import (
    STATUS_CIRCUIT_OPEN,
    CompileRequest,
    CompileService,
    RetryPolicy,
    ServiceConfig,
)

#: every chaos request is a real program: tile+unroll, compiled and run
_SOURCE_TEMPLATE = """\
// chaos request {index}{tag}
int printf(const char *fmt, ...);
int main() {{
  int sum = 0;
  #pragma omp tile sizes({tile})
  for (int i = 0; i < 12; i += 1)
    sum += i * {index};
  #pragma omp unroll partial(2)
  for (int j = 0; j < 4; j += 1)
    sum += j;
  printf("chaos {index}: %d\\n", sum);
  return 0;
}}
"""


def _make_source(index: int, tag: str = "") -> str:
    return _SOURCE_TEMPLATE.format(
        index=index, tag=tag, tile=2 + index % 3
    )


def build_batch(args) -> tuple[list[CompileRequest], dict[str, list[int]]]:
    """The deterministic chaos batch plus the index sets per category."""
    requests: list[CompileRequest] = []
    plan: dict[str, list[int]] = {
        "clean": [],
        "kill": [],
        "hang": [],
        "poison": [],
    }
    poison_every = (
        max(1, args.count // args.poison) if args.poison else 0
    )
    poisoned = 0
    for i in range(args.count):
        faults: tuple[str, ...] = ()
        fault_attempts = 1
        category = "clean"
        if (
            poison_every
            and i % poison_every == poison_every - 1
            and poisoned < args.poison
        ):
            # Unique source per poison input -> distinct fingerprints,
            # so each one trips its *own* breaker.
            faults = ("service-worker",)
            fault_attempts = -1
            category = "poison"
            poisoned += 1
        elif args.kill_every and i % args.kill_every == 1:
            faults = ("service-worker-exit",)
            category = "kill"
        elif args.hang_every and i % args.hang_every == 2:
            faults = ("service-worker-hang",)
            category = "hang"
        requests.append(
            CompileRequest(
                source=_make_source(i, f" [{category}]"),
                filename=f"chaos-{i}.c",
                action="run",
                mode="irbuilder" if i % 2 else "shadow",
                deadline_s=args.deadline,
                inject_faults=faults,
                fault_attempts=fault_attempts,
            )
        )
        plan[category].append(i)
    return requests, plan


def run_chaos(args) -> int:
    requests, plan = build_batch(args)
    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=max(args.count + 8, 16),
        deadline_s=args.deadline,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.1
        ),
        hedge_delay_s=args.hedge_delay,
        breaker_threshold=3,
        quarantine_dir=args.quarantine_dir or None,
    )
    stats_before = STATS.snapshot()
    with CompileService(config) as service:
        responses = service.process_batch(requests)
        # Poison resubmission: the breaker must now reject at admission.
        rejects = []
        for i in plan["poison"]:
            resubmit = CompileRequest(
                source=requests[i].source,
                filename=requests[i].filename,
                action=requests[i].action,
                mode=requests[i].mode,
                deadline_s=args.deadline,
                inject_faults=requests[i].inject_faults,
                fault_attempts=requests[i].fault_attempts,
            )
            rejects.append(service.submit(resubmit))
        service.drain()
        metrics_snapshot = service.metrics.snapshot()
    delta = STATS.delta_since(stats_before)
    stats = {
        key: value
        for key, value in delta.items()
        if key.startswith("service.")
    }

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    # -- zero lost requests: one terminal response per submission ------
    check(
        len(responses) == args.count,
        f"lost requests: {len(responses)}/{args.count} responses",
    )
    for i, response in enumerate(responses):
        check(
            response is not None and response.status,
            f"request {i} has no terminal response",
        )

    # -- transient faults absorbed -------------------------------------
    for category in ("clean", "kill", "hang"):
        for i in plan[category]:
            response = responses[i]
            check(
                response.ok,
                f"{category} request {i} not served: "
                f"{response.status} ({response.detail.splitlines()[0] if response.detail else ''})",
            )
    for i in plan["kill"] + plan["hang"]:
        check(
            responses[i].attempts >= 2,
            f"faulted request {i} resolved in "
            f"{responses[i].attempts} attempt(s) — fault not armed?",
        )

    # -- poison: breaker trip within threshold + quarantine ------------
    for i in plan["poison"]:
        response = responses[i]
        check(
            response.status == STATUS_CIRCUIT_OPEN,
            f"poison request {i} ended {response.status}, "
            "expected circuit-open",
        )
        check(
            response.attempts <= config.breaker_threshold,
            f"poison request {i} took {response.attempts} attempts, "
            f"breaker threshold is {config.breaker_threshold}",
        )
        if args.quarantine_dir:
            check(
                bool(response.reproducer_path),
                f"poison request {i} quarantined without a reproducer",
            )
    for i, reject in zip(plan["poison"], rejects):
        check(
            reject is not None
            and reject.status == STATUS_CIRCUIT_OPEN,
            f"poison resubmit {i} was not rejected at admission",
        )

    # -- statistics account for everything -----------------------------
    n_poison = len(plan["poison"])
    check(
        stats.get("service.requests", 0) == args.count + n_poison,
        f"service.requests={stats.get('service.requests')} != "
        f"{args.count + n_poison}",
    )
    check(
        stats.get("service.responses", 0) == args.count + n_poison,
        "service.responses != submissions: "
        f"{stats.get('service.responses')}",
    )
    check(
        stats.get("service.breaker-trips", 0) == n_poison,
        f"service.breaker-trips={stats.get('service.breaker-trips')} "
        f"!= poison count {n_poison}",
    )
    check(
        stats.get("service.quarantined", 0) == n_poison,
        f"service.quarantined={stats.get('service.quarantined')}",
    )
    check(
        stats.get("service.breaker-rejected", 0) == n_poison,
        f"service.breaker-rejected={stats.get('service.breaker-rejected')}",
    )
    check(
        stats.get("service.timeouts", 0) >= len(plan["hang"]),
        f"service.timeouts={stats.get('service.timeouts')} < "
        f"hangs {len(plan['hang'])}",
    )
    check(
        stats.get("service.worker-lost", 0) >= len(plan["kill"]),
        f"service.worker-lost={stats.get('service.worker-lost')} < "
        f"kills {len(plan['kill'])}",
    )
    check(
        stats.get("service.shed", 0) == 0,
        f"service.shed={stats.get('service.shed')} != 0 "
        "(queue sized for the batch)",
    )

    # -- metrics registry agrees with the ground truth -----------------
    # Every submission (batch + poison resubmits) must be observed in
    # the latency histogram exactly once — kills, hangs, and breaker
    # rejects included.  "requests in == sum of terminal statuses" is
    # the accounting identity the metrics export is trusted for.
    submissions = args.count + n_poison
    lat = metrics_snapshot["service_request_duration_seconds"]
    observed = sum(row["count"] for row in lat["series"])
    check(
        observed == submissions,
        f"latency histogram lost observations: "
        f"{observed} != {submissions}",
    )
    for row in lat["series"]:
        check(
            sum(row["buckets"]) == row["count"],
            "latency bucket counts disagree with series total for "
            f"outcome {row['labels'].get('outcome')}",
        )
    requests_in = metrics_snapshot["service_requests_total"][
        "series"
    ][0]["value"]
    responses_out = sum(
        row["value"]
        for row in metrics_snapshot["service_responses_total"]["series"]
    )
    check(
        requests_in == submissions,
        f"service_requests_total={requests_in} != {submissions}",
    )
    check(
        responses_out == submissions,
        "requests in != sum of terminal statuses: "
        f"{requests_in} vs {responses_out}",
    )
    breaker_opens = sum(
        row["value"]
        for row in metrics_snapshot[
            "service_breaker_transitions_total"
        ]["series"]
        if row["labels"].get("to") == "open"
    )
    check(
        breaker_opens == n_poison,
        f"breaker open transitions {breaker_opens} != poison "
        f"{n_poison}",
    )
    for row in sorted(
        lat["series"], key=lambda r: r["labels"].get("outcome", "")
    ):
        print(
            f"chaos: latency[{row['labels'].get('outcome')}]: "
            f"n={row['count']} p50={row['p50']}s p95={row['p95']}s "
            f"p99={row['p99']}s"
        )
    if args.metrics_json:
        import json

        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(metrics_snapshot, fh, indent=1)
            fh.write("\n")

    print(
        f"chaos: {args.count} requests "
        f"({len(plan['kill'])} kills, {len(plan['hang'])} hangs, "
        f"{n_poison} poison) on {args.workers} workers: "
        f"{sum(1 for r in responses if r.ok)} served, "
        f"{n_poison} quarantined, "
        f"{stats.get('service.retries', 0)} retries, "
        f"{stats.get('service.worker-restarts', 0)} worker restarts"
    )
    if args.print_stats or failures:
        print(STATS.render_text(delta), file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos: all invariants hold")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description="chaos/acceptance harness for the compile service",
    )
    parser.add_argument("--count", type=int, default=50)
    parser.add_argument(
        "--kill-every",
        type=int,
        default=10,
        metavar="K",
        help="hard-kill the worker on the first attempt of every K-th "
        "request (0 = none)",
    )
    parser.add_argument(
        "--hang-every",
        type=int,
        default=0,
        metavar="M",
        help="hang the worker past the deadline on the first attempt "
        "of every M-th request (0 = none)",
    )
    parser.add_argument(
        "--poison",
        type=int,
        default=2,
        metavar="P",
        help="number of poison inputs (fail on every attempt)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--deadline", type=float, default=5.0, metavar="SECONDS"
    )
    parser.add_argument(
        "--hedge-delay", type=float, default=None, metavar="SECONDS"
    )
    parser.add_argument(
        "--quarantine-dir", default="service-quarantine", metavar="DIR"
    )
    parser.add_argument(
        "--print-stats", action="store_true", dest="print_stats"
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        dest="metrics_json",
        metavar="FILE",
        help="write the service metrics snapshot (per-outcome latency "
        "histograms included) as JSON",
    )
    args = parser.parse_args(argv)
    return run_chaos(args)


if __name__ == "__main__":
    sys.exit(main())
