"""Chaos harness for the compile service: ``python -m repro.service.chaos``.

Builds a batch of real tile/unroll compile+run requests, deliberately
poisons a fraction of it with deterministic ``-finject-fault`` specs —
hard worker deaths (``service-worker-exit``), hangs past the deadline
(``service-worker-hang``), and *poison inputs* that fail on every
attempt (``service-worker`` with ``fault_attempts=-1``) — then asserts
the service's whole contract:

* **zero lost requests** — every submitted request has exactly one
  terminal response;
* transient kills and hangs are *absorbed*: those requests still end in
  ``ok``/``degraded``;
* every poison input trips its circuit breaker within the failure
  threshold, is quarantined with a written reproducer, and a resubmit
  is rejected at admission (``circuit-open``);
* the ``service.*`` statistics account for every retry, timeout,
  worker loss, trip and response.

Exit code 0 when every invariant holds, 1 otherwise — this is the CI
smoke batch and the acceptance harness in one.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.instrument.stats import STATS
from repro.instrument.telemetry.metrics import MetricsRegistry
from repro.service import (
    STATUS_CIRCUIT_OPEN,
    CompileRequest,
    CompileService,
    RetryPolicy,
    ServiceConfig,
    load_state,
    state_path,
)

#: every chaos request is a real program: tile+unroll, compiled and run
_SOURCE_TEMPLATE = """\
// chaos request {index}{tag}
int printf(const char *fmt, ...);
int main() {{
  int sum = 0;
  #pragma omp tile sizes({tile})
  for (int i = 0; i < 12; i += 1)
    sum += i * {index};
  #pragma omp unroll partial(2)
  for (int j = 0; j < 4; j += 1)
    sum += j;
  printf("chaos {index}: %d\\n", sum);
  return 0;
}}
"""


def _make_source(index: int, tag: str = "") -> str:
    return _SOURCE_TEMPLATE.format(
        index=index, tag=tag, tile=2 + index % 3
    )


def build_batch(args) -> tuple[list[CompileRequest], dict[str, list[int]]]:
    """The deterministic chaos batch plus the index sets per category."""
    requests: list[CompileRequest] = []
    plan: dict[str, list[int]] = {
        "clean": [],
        "kill": [],
        "hang": [],
        "poison": [],
    }
    poison_every = (
        max(1, args.count // args.poison) if args.poison else 0
    )
    poisoned = 0
    for i in range(args.count):
        faults: tuple[str, ...] = ()
        fault_attempts = 1
        category = "clean"
        if (
            poison_every
            and i % poison_every == poison_every - 1
            and poisoned < args.poison
        ):
            # Unique source per poison input -> distinct fingerprints,
            # so each one trips its *own* breaker.
            faults = ("service-worker",)
            fault_attempts = -1
            category = "poison"
            poisoned += 1
        elif args.kill_every and i % args.kill_every == 1:
            faults = ("service-worker-exit",)
            category = "kill"
        elif args.hang_every and i % args.hang_every == 2:
            faults = ("service-worker-hang",)
            category = "hang"
        requests.append(
            CompileRequest(
                source=_make_source(i, f" [{category}]"),
                filename=f"chaos-{i}.c",
                action="run",
                mode="irbuilder" if i % 2 else "shadow",
                deadline_s=args.deadline,
                inject_faults=faults,
                fault_attempts=fault_attempts,
            )
        )
        plan[category].append(i)
    return requests, plan


def run_chaos(args) -> int:
    requests, plan = build_batch(args)
    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=max(args.count + 8, 16),
        deadline_s=args.deadline,
        retry=RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.1
        ),
        hedge_delay_s=args.hedge_delay,
        breaker_threshold=3,
        quarantine_dir=args.quarantine_dir or None,
    )
    stats_before = STATS.snapshot()
    with CompileService(config) as service:
        responses = service.process_batch(requests)
        # Poison resubmission: the breaker must now reject at admission.
        rejects = []
        for i in plan["poison"]:
            resubmit = CompileRequest(
                source=requests[i].source,
                filename=requests[i].filename,
                action=requests[i].action,
                mode=requests[i].mode,
                deadline_s=args.deadline,
                inject_faults=requests[i].inject_faults,
                fault_attempts=requests[i].fault_attempts,
            )
            rejects.append(service.submit(resubmit))
        service.drain()
        metrics_snapshot = service.metrics.snapshot()
    delta = STATS.delta_since(stats_before)
    stats = {
        key: value
        for key, value in delta.items()
        if key.startswith("service.")
    }

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    # -- zero lost requests: one terminal response per submission ------
    check(
        len(responses) == args.count,
        f"lost requests: {len(responses)}/{args.count} responses",
    )
    for i, response in enumerate(responses):
        check(
            response is not None and response.status,
            f"request {i} has no terminal response",
        )

    # -- transient faults absorbed -------------------------------------
    for category in ("clean", "kill", "hang"):
        for i in plan[category]:
            response = responses[i]
            check(
                response.ok,
                f"{category} request {i} not served: "
                f"{response.status} ({response.detail.splitlines()[0] if response.detail else ''})",
            )
    for i in plan["kill"] + plan["hang"]:
        check(
            responses[i].attempts >= 2,
            f"faulted request {i} resolved in "
            f"{responses[i].attempts} attempt(s) — fault not armed?",
        )

    # -- poison: breaker trip within threshold + quarantine ------------
    for i in plan["poison"]:
        response = responses[i]
        check(
            response.status == STATUS_CIRCUIT_OPEN,
            f"poison request {i} ended {response.status}, "
            "expected circuit-open",
        )
        check(
            response.attempts <= config.breaker_threshold,
            f"poison request {i} took {response.attempts} attempts, "
            f"breaker threshold is {config.breaker_threshold}",
        )
        if args.quarantine_dir:
            check(
                bool(response.reproducer_path),
                f"poison request {i} quarantined without a reproducer",
            )
    for i, reject in zip(plan["poison"], rejects):
        check(
            reject is not None
            and reject.status == STATUS_CIRCUIT_OPEN,
            f"poison resubmit {i} was not rejected at admission",
        )

    # -- statistics account for everything -----------------------------
    n_poison = len(plan["poison"])
    check(
        stats.get("service.requests", 0) == args.count + n_poison,
        f"service.requests={stats.get('service.requests')} != "
        f"{args.count + n_poison}",
    )
    check(
        stats.get("service.responses", 0) == args.count + n_poison,
        "service.responses != submissions: "
        f"{stats.get('service.responses')}",
    )
    check(
        stats.get("service.breaker-trips", 0) == n_poison,
        f"service.breaker-trips={stats.get('service.breaker-trips')} "
        f"!= poison count {n_poison}",
    )
    check(
        stats.get("service.quarantined", 0) == n_poison,
        f"service.quarantined={stats.get('service.quarantined')}",
    )
    check(
        stats.get("service.breaker-rejected", 0) == n_poison,
        f"service.breaker-rejected={stats.get('service.breaker-rejected')}",
    )
    check(
        stats.get("service.timeouts", 0) >= len(plan["hang"]),
        f"service.timeouts={stats.get('service.timeouts')} < "
        f"hangs {len(plan['hang'])}",
    )
    check(
        stats.get("service.worker-lost", 0) >= len(plan["kill"]),
        f"service.worker-lost={stats.get('service.worker-lost')} < "
        f"kills {len(plan['kill'])}",
    )
    check(
        stats.get("service.shed", 0) == 0,
        f"service.shed={stats.get('service.shed')} != 0 "
        "(queue sized for the batch)",
    )

    # -- metrics registry agrees with the ground truth -----------------
    # Every submission (batch + poison resubmits) must be observed in
    # the latency histogram exactly once — kills, hangs, and breaker
    # rejects included.  "requests in == sum of terminal statuses" is
    # the accounting identity the metrics export is trusted for.
    submissions = args.count + n_poison
    lat = metrics_snapshot["service_request_duration_seconds"]
    observed = sum(row["count"] for row in lat["series"])
    check(
        observed == submissions,
        f"latency histogram lost observations: "
        f"{observed} != {submissions}",
    )
    for row in lat["series"]:
        check(
            sum(row["buckets"]) == row["count"],
            "latency bucket counts disagree with series total for "
            f"outcome {row['labels'].get('outcome')}",
        )
    requests_in = metrics_snapshot["service_requests_total"][
        "series"
    ][0]["value"]
    responses_out = sum(
        row["value"]
        for row in metrics_snapshot["service_responses_total"]["series"]
    )
    check(
        requests_in == submissions,
        f"service_requests_total={requests_in} != {submissions}",
    )
    check(
        responses_out == submissions,
        "requests in != sum of terminal statuses: "
        f"{requests_in} vs {responses_out}",
    )
    breaker_opens = sum(
        row["value"]
        for row in metrics_snapshot[
            "service_breaker_transitions_total"
        ]["series"]
        if row["labels"].get("to") == "open"
    )
    check(
        breaker_opens == n_poison,
        f"breaker open transitions {breaker_opens} != poison "
        f"{n_poison}",
    )
    for row in sorted(
        lat["series"], key=lambda r: r["labels"].get("outcome", "")
    ):
        print(
            f"chaos: latency[{row['labels'].get('outcome')}]: "
            f"n={row['count']} p50={row['p50']}s p95={row['p95']}s "
            f"p99={row['p99']}s"
        )
    if args.metrics_json:
        import json

        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(metrics_snapshot, fh, indent=1)
            fh.write("\n")

    print(
        f"chaos: {args.count} requests "
        f"({len(plan['kill'])} kills, {len(plan['hang'])} hangs, "
        f"{n_poison} poison) on {args.workers} workers: "
        f"{sum(1 for r in responses if r.ok)} served, "
        f"{n_poison} quarantined, "
        f"{stats.get('service.retries', 0)} retries, "
        f"{stats.get('service.worker-restarts', 0)} worker restarts"
    )
    if args.print_stats or failures:
        print(STATS.render_text(delta), file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos: all invariants hold")
    return 0


# ======================================================================
# Storage chaos: fault-armed shared disk cache + kill-and-restart
# ======================================================================

#: the deterministic I/O fault family inside the disk tier
_STORAGE_SITES = (
    "storage-write-torn",
    "storage-write-enospc",
    "storage-read-corrupt",
    "storage-rename-fail",
    "storage-fsync-fail",
)

#: distinct cacheable programs the storage campaign rotates through —
#: repetition is the point: later requests must be able to *hit* what
#: earlier (possibly torn) writes stored
_N_STORAGE_SOURCES = 8


def _storage_mode(src: int) -> str:
    return "irbuilder" if src % 2 else "shadow"


def _storage_request(
    src: int,
    deadline: float,
    faults: tuple[str, ...] = (),
    fault_attempts: int = 1,
    tag: str = " [storage]",
) -> CompileRequest:
    return CompileRequest(
        source=_make_source(src, tag),
        filename=f"storage-{src}.c",
        action="compile",
        mode=_storage_mode(src),
        deadline_s=deadline,
        inject_faults=faults,
        fault_attempts=fault_attempts,
    )


def _poison_request(p: int, deadline: float) -> CompileRequest:
    # Unique source per poison input -> distinct fingerprints, so each
    # trips (and persists) its own breaker.
    return CompileRequest(
        source=_make_source(900 + p, " [poison]"),
        filename=f"storage-poison-{p}.c",
        action="compile",
        mode="shadow",
        deadline_s=deadline,
        inject_faults=("service-worker",),
        fault_attempts=-1,
    )


def build_storage_phases(
    args,
) -> tuple[list, list, dict[str, list[int]], dict[str, list[int]]]:
    """Two request batches (before / after the restart) plus per-phase
    category index sets.

    Phase A opens with a clean warm-up covering every source (so the
    disk cache holds known-good entries before anything is torn), then
    interleaves storage-fault-armed requests, worker kills, and poison
    inputs.  Phase B — served by a *fresh* service on the same cache
    and state directories — replays the sources with cold memory tiers,
    arming ``storage-read-corrupt`` on the first visit to each source
    so corruption detection is exercised deterministically.
    """
    half = max(16, args.count // 2)
    phase_a: list[CompileRequest] = []
    plan_a: dict[str, list[int]] = {
        "clean": [],
        "storage": [],
        "kill": [],
        "poison": [],
    }
    warmup = max(_N_STORAGE_SOURCES, half // 4)
    poison_slots = {
        warmup + 1 + p * 3: p for p in range(args.poison)
    }
    for i in range(half):
        src = i % _N_STORAGE_SOURCES
        if i < warmup:
            phase_a.append(_storage_request(src, args.deadline))
            plan_a["clean"].append(i)
        elif i in poison_slots:
            phase_a.append(
                _poison_request(poison_slots[i], args.deadline)
            )
            plan_a["poison"].append(i)
        elif args.kill_every and i % args.kill_every == 0:
            # Unique tag (an IR-invisible comment) -> unique
            # fingerprint, so repeated kills are really executed
            # instead of replayed from the response cache.
            phase_a.append(
                _storage_request(
                    src,
                    args.deadline,
                    ("service-worker-exit",),
                    tag=f" [storage kill {i}]",
                )
            )
            plan_a["kill"].append(i)
        else:
            site = _STORAGE_SITES[i % len(_STORAGE_SITES)]
            phase_a.append(
                _storage_request(
                    src, args.deadline, (site,), fault_attempts=-1
                )
            )
            plan_a["storage"].append(i)

    rest = max(_N_STORAGE_SOURCES, args.count - half)
    phase_b: list[CompileRequest] = []
    plan_b: dict[str, list[int]] = {"clean": [], "read-corrupt": []}
    for j in range(rest):
        src = j % _N_STORAGE_SOURCES
        if j < _N_STORAGE_SOURCES:
            # First visit to each source after the restart: the memory
            # tiers are cold, so the disk read happens — and the armed
            # fault corrupts it in flight.  The tier must detect, heal,
            # and recompile; serving torn bytes would be the bug.
            phase_b.append(
                _storage_request(
                    src, args.deadline, ("storage-read-corrupt",)
                )
            )
            plan_b["read-corrupt"].append(j)
        else:
            phase_b.append(_storage_request(src, args.deadline))
            plan_b["clean"].append(j)
    return phase_a, phase_b, plan_a, plan_b


def run_storage_chaos(args) -> int:
    from repro.pipeline import execute_request

    phase_a, phase_b, plan_a, plan_b = build_storage_phases(args)
    n_poison = len(plan_a["poison"])

    # Uncached oracle: the byte-identity reference for every rotating
    # source, computed before any cache or fault is in play.
    oracle: dict[int, str] = {}
    for src in range(_N_STORAGE_SOURCES):
        outcome = execute_request(
            _make_source(src, " [storage]"),
            filename=f"storage-{src}.c",
            action="compile",
            mode=_storage_mode(src),
            cache=None,
        )
        if outcome.kind != "ok":
            print(
                f"chaos: oracle compile of source {src} failed: "
                f"{outcome.kind}",
                file=sys.stderr,
            )
            return 1
        oracle[src] = outcome.output

    metrics = MetricsRegistry()

    def config() -> ServiceConfig:
        return ServiceConfig(
            workers=args.workers,
            queue_capacity=max(args.count + 8, 16),
            deadline_s=args.deadline,
            retry=RetryPolicy(
                max_attempts=3, base_delay_s=0.01, max_delay_s=0.1
            ),
            breaker_threshold=3,
            # Long cooldown: restored OPEN breakers must still be OPEN
            # when phase B resubmits the poison inputs.
            breaker_cooldown_s=600.0,
            quarantine_dir=args.quarantine_dir or None,
            enable_cache=True,
            cache_dir=args.cache_dir,
            cache_durable=args.durable,
            state_dir=args.state_dir,
            metrics=metrics,
        )

    stats_before = STATS.snapshot()

    # -- phase A: faulted traffic, then a *restart* --------------------
    with CompileService(config()) as service_a:
        responses_a = service_a.process_batch(phase_a)
    # service_a's shutdown snapshotted its breaker board + quarantine.

    snapshot_file = state_path(args.state_dir)
    mid_state = load_state(args.state_dir)

    # -- phase B: a fresh instance on the same cache + state dirs ------
    with CompileService(config()) as service_b:
        restored = dict(service_b.quarantined)
        responses_b = service_b.process_batch(phase_b)
        rejects = []
        for i in plan_a["poison"]:
            original = phase_a[i]
            rejects.append(
                service_b.submit(
                    CompileRequest(
                        source=original.source,
                        filename=original.filename,
                        action=original.action,
                        mode=original.mode,
                        deadline_s=args.deadline,
                        inject_faults=original.inject_faults,
                        fault_attempts=original.fault_attempts,
                    )
                )
            )
        service_b.drain()
        metrics_snapshot = service_b.metrics.snapshot()

    delta = STATS.delta_since(stats_before)
    stats = {
        key: value
        for key, value in delta.items()
        if key.startswith(("service.", "cache."))
    }

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    # -- zero lost requests across the restart -------------------------
    check(
        len(responses_a) == len(phase_a),
        f"phase A lost requests: {len(responses_a)}/{len(phase_a)}",
    )
    check(
        len(responses_b) == len(phase_b),
        f"phase B lost requests: {len(responses_b)}/{len(phase_b)}",
    )
    for tag, responses in (("A", responses_a), ("B", responses_b)):
        for i, response in enumerate(responses):
            check(
                response is not None and bool(response.status),
                f"phase {tag} request {i} has no terminal response",
            )

    # -- zero corrupt payloads served: byte-identity vs the oracle -----
    def check_output(tag: str, requests, responses, indices) -> None:
        for i in indices:
            response = responses[i]
            check(
                response.ok,
                f"phase {tag} request {i} not served: "
                f"{response.status}",
            )
            if not response.ok:
                continue
            src = int(requests[i].filename.split("-")[1].split(".")[0])
            check(
                response.output == oracle[src],
                f"phase {tag} request {i} served bytes that differ "
                f"from the uncached oracle for source {src} — "
                "corrupt payload escaped the integrity check",
            )

    check_output(
        "A",
        phase_a,
        responses_a,
        plan_a["clean"] + plan_a["storage"] + plan_a["kill"],
    )
    check_output(
        "B",
        phase_b,
        responses_b,
        plan_b["clean"] + plan_b["read-corrupt"],
    )
    for i in plan_a["kill"]:
        check(
            responses_a[i].attempts >= 2,
            f"kill request {i} resolved in "
            f"{responses_a[i].attempts} attempt(s) — fault not armed?",
        )

    # -- corruption was actually detected (not silently served) --------
    check(
        stats.get("cache.corrupt-entries", 0) > 0,
        "cache.corrupt-entries == 0: the campaign never detected "
        "corruption — the read-corrupt arm did not reach the disk tier",
    )

    # -- poison quarantine survives the restart ------------------------
    poison_fingerprints = {
        phase_a[i].fingerprint() for i in plan_a["poison"]
    }
    for i in plan_a["poison"]:
        check(
            responses_a[i].status == STATUS_CIRCUIT_OPEN,
            f"poison request {i} ended {responses_a[i].status}",
        )
    check(
        mid_state is not None,
        f"no usable state snapshot at {snapshot_file} after phase A",
    )
    if mid_state is not None:
        check(
            poison_fingerprints
            <= set(mid_state.quarantined.keys()),
            "phase A snapshot lost quarantined fingerprints",
        )
    check(
        poison_fingerprints <= set(restored.keys()),
        "restarted service did not restore the quarantine",
    )
    for i, reject in zip(plan_a["poison"], rejects):
        check(
            reject is not None
            and reject.status == STATUS_CIRCUIT_OPEN,
            f"poison resubmit {i} was not rejected after restart",
        )
        check(
            reject is not None and reject.attempts == 0,
            f"poison resubmit {i} burned {reject.attempts} worker "
            "attempt(s) — quarantine must reject without re-executing",
        )
    check(
        stats.get("service.quarantine-restored", 0) == n_poison,
        f"service.quarantine-restored="
        f"{stats.get('service.quarantine-restored')} != {n_poison}",
    )
    check(
        stats.get("service.state-restores", 0) >= 1,
        "restart never restored a state snapshot",
    )
    final_state = load_state(args.state_dir)
    check(
        final_state is not None
        and poison_fingerprints
        <= set(final_state.quarantined.keys()),
        "final state snapshot is unusable or lost the quarantine",
    )

    # -- metrics accounting is exact across both instances -------------
    submissions = len(phase_a) + len(phase_b) + n_poison
    check(
        stats.get("service.requests", 0) == submissions,
        f"service.requests={stats.get('service.requests')} != "
        f"{submissions}",
    )
    check(
        stats.get("service.responses", 0) == submissions,
        f"service.responses={stats.get('service.responses')} != "
        f"{submissions}",
    )
    lat = metrics_snapshot["service_request_duration_seconds"]
    observed = sum(row["count"] for row in lat["series"])
    check(
        observed == submissions,
        "shared latency histogram lost observations across the "
        f"restart: {observed} != {submissions}",
    )
    requests_in = metrics_snapshot["service_requests_total"]["series"][
        0
    ]["value"]
    responses_out = sum(
        row["value"]
        for row in metrics_snapshot["service_responses_total"]["series"]
    )
    check(
        requests_in == submissions,
        f"service_requests_total={requests_in} != {submissions}",
    )
    check(
        responses_out == submissions,
        "requests in != sum of terminal statuses: "
        f"{requests_in} vs {responses_out}",
    )

    if args.metrics_json:
        import json

        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(metrics_snapshot, fh, indent=1)
            fh.write("\n")

    served = sum(1 for r in responses_a if r.ok) + sum(
        1 for r in responses_b if r.ok
    )
    print(
        f"storage-chaos: {len(phase_a)}+{len(phase_b)} requests "
        f"({len(plan_a['storage'])} storage-faulted, "
        f"{len(plan_b['read-corrupt'])} read-corrupt, "
        f"{len(plan_a['kill'])} kills, {n_poison} poison) "
        f"across one restart: {served} served, "
        f"{stats.get('cache.corrupt-entries', 0)} corrupt entries "
        f"detected+healed, "
        f"{stats.get('cache.disk-disabled', 0)} disk degradations, "
        f"state snapshot at {snapshot_file}"
    )
    if args.print_stats or failures:
        print(STATS.render_text(delta), file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"storage-chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("storage-chaos: all invariants hold")
    return 0


# ======================================================================
# Network chaos: the TCP front door under hostile clients
# ======================================================================

#: deterministic junk that contains no ``MAGIC`` byte sequence, so the
#: decoder's resync scan is exercised without accidentally framing
_GARBAGE = bytes([0x00, 0x01, 0x7F, 0xFE, 0xFD, 0x42, 0x03, 0xF0]) * 8


def _recv_events(sock, max_frame_bytes=None, timeout_s=5.0):
    """Read frames off *sock* until EOF or *timeout_s*; decoded events."""
    import socket as socketlib
    import time

    from repro.service.net.protocol import FrameDecoder

    decoder = (
        FrameDecoder(max_frame_bytes)
        if max_frame_bytes
        else FrameDecoder()
    )
    events: list = []
    sock.settimeout(timeout_s)
    deadline = time.monotonic() + timeout_s
    try:
        while time.monotonic() < deadline:
            data = sock.recv(65536)
            if not data:
                break
            events.extend(decoder.feed(data))
    except (socketlib.timeout, OSError):
        pass
    return events


def _sigterm_drain_scenario(args, check) -> None:
    """Spawn a real ``miniclang-serve --listen`` subprocess, serve one
    request over TCP, SIGTERM it, and assert the structured drain:
    exit code 0 and the ``drained`` banner."""
    import os as oslib
    import signal
    import subprocess
    import sys as syslib
    import tempfile
    import threading

    import repro
    from repro.service.net import NetClient

    src_root = oslib.path.dirname(
        oslib.path.dirname(oslib.path.abspath(repro.__file__))
    )
    env = dict(oslib.environ)
    env["PYTHONPATH"] = (
        src_root + oslib.pathsep + env.get("PYTHONPATH", "")
    )
    with tempfile.TemporaryDirectory(prefix="net-chaos-") as tmp:
        proc = subprocess.Popen(
            [
                syslib.executable,
                "-m",
                "repro.driver.serve",
                "--listen",
                "127.0.0.1:0",
                "--shards",
                "2",
                "--workers",
                "1",
                "--state-dir",
                oslib.path.join(tmp, "state"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner_box: list = []

            # The operational banner goes to stderr (stdout is
            # reserved for compile output).
            def read_banner() -> None:
                banner_box.append(proc.stderr.readline())

            reader = threading.Thread(target=read_banner, daemon=True)
            reader.start()
            reader.join(timeout=60.0)
            banner = banner_box[0] if banner_box else ""
            check(
                "listening on " in banner,
                f"serve subprocess printed no banner: {banner!r}",
            )
            if "listening on " not in banner:
                proc.kill()
                proc.wait(timeout=10)
                return
            address = banner.split("listening on ")[1].split(" ")[0]
            client = NetClient(address, deadline_s=30.0)
            response = client.request(
                CompileRequest(
                    source=_make_source(7, " [drain]"),
                    filename="net-drain.c",
                    action="run",
                    mode="shadow",
                    deadline_s=args.deadline,
                )
            )
            check(
                response.ok,
                "subprocess server did not serve the pre-drain "
                f"request: {response.status}",
            )
            proc.send_signal(signal.SIGTERM)
            try:
                stdout, stderr = proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                stdout, stderr = proc.communicate()
                check(False, "SIGTERM drain hung past 60s")
                return
            check(
                proc.returncode == 0,
                f"SIGTERM drain exited {proc.returncode}, expected 0 "
                f"(stderr: {stderr.strip()[:200]})",
            )
            check(
                "drained:" in stderr,
                "drain did not print the structured summary line",
            )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def run_net_chaos(args) -> int:
    """The ``--net`` campaign: an in-process sharded TCP server under
    concurrent well-behaved load *and* every misbehaving client the
    protocol defends against — disconnects mid-request, garbage bytes,
    truncated and half-written frames, oversized frames, slow loris,
    shard-worker kills — then the exact-accounting audit: zero lost
    requests, zero double-answered requests, requests admitted ==
    terminal responses on the merged shard ledgers.  Ends with a real
    ``miniclang-serve`` subprocess draining cleanly on SIGTERM."""
    import socket
    import struct
    import threading
    import time

    from repro.service.net import (
        DEFAULT_MAX_FRAME_BYTES,
        NetClient,
        NetServerConfig,
        NetServerThread,
    )
    from repro.service.net.protocol import (
        FrameError,
        encode_frame,
        ping_message,
        request_message,
    )

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    def net_request(index: int, faults=()) -> CompileRequest:
        return CompileRequest(
            source=_make_source(index, " [net]"),
            filename=f"net-{index}.c",
            action="run",
            mode="irbuilder" if index % 2 else "shadow",
            deadline_s=args.deadline,
            inject_faults=tuple(faults),
            fault_attempts=1,
        )

    shard_configs = [
        ServiceConfig(
            workers=args.workers,
            queue_capacity=max(args.count + 8, 16),
            deadline_s=args.deadline,
            retry=RetryPolicy(
                max_attempts=3, base_delay_s=0.01, max_delay_s=0.1
            ),
            breaker_threshold=3,
            retain_responses=False,
        )
        for _ in range(args.shards)
    ]
    net_config = NetServerConfig(
        frame_timeout_s=1.0,
        idle_timeout_s=60.0,
        write_timeout_s=5.0,
        drain_deadline_s=10.0,
    )
    stats_before = STATS.snapshot()
    host = NetServerThread(shard_configs, net_config)
    host.start()
    address = host.address

    def raw_socket(timeout_s: float = 5.0) -> socket.socket:
        sock = socket.create_connection(address, timeout=timeout_s)
        sock.settimeout(timeout_s)
        return sock

    try:
        # -- health round ----------------------------------------------
        probe = NetClient(address, deadline_s=args.deadline)
        check(probe.ping(), "initial health ping failed")

        # -- well-behaved concurrent load (with shard-worker kills) ----
        per_client = max(2, args.count // max(1, args.clients))
        clients: list[NetClient] = []
        load: dict[int, list[tuple[bool, object]]] = {}

        def client_load(tag: int) -> None:
            # One client hedges cross-shard; the rest retry plainly.
            client = NetClient(
                address,
                deadline_s=max(20.0, args.deadline * 4),
                retry=RetryPolicy(
                    max_attempts=3, base_delay_s=0.05, max_delay_s=0.5
                ),
                hedge_delay_s=2.0 if tag == 0 else None,
            )
            clients.append(client)
            results = []
            for k in range(per_client):
                kill = bool(
                    args.kill_every and k % args.kill_every == 1
                )
                request = net_request(
                    tag * 10000 + k,
                    faults=("service-worker-exit",) if kill else (),
                )
                results.append((kill, client.request(request)))
            load[tag] = results

        threads = [
            threading.Thread(
                target=client_load, args=(tag,), daemon=True
            )
            for tag in range(args.clients)
        ]
        for thread in threads:
            thread.start()

        # -- client disconnect mid-request (RST before the answer) -----
        for i in range(2):
            sock = raw_socket()
            sock.sendall(
                encode_frame(
                    request_message(
                        f"gone{i:02d}",
                        net_request(20000 + i),
                        deadline_s=args.deadline,
                    )
                )
            )
            # SO_LINGER(0) turns close() into an immediate RST: the
            # server sees the connection die while the compile is still
            # in flight and must orphan the answer, not crash or lose
            # the ledger entry.
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            sock.close()

        # -- garbage bytes, then a valid frame: decoder must resync ----
        sock = raw_socket()
        sock.sendall(_GARBAGE + encode_frame(ping_message("after-junk")))
        events = _recv_events(sock, timeout_s=5.0)
        sock.close()
        check(
            any(
                isinstance(e, dict)
                and e.get("type") == "error"
                and e.get("code") == "bad-magic"
                for e in events
            ),
            f"garbage bytes drew no bad-magic error frame: {events!r}",
        )
        check(
            any(
                isinstance(e, dict)
                and e.get("type") == "pong"
                and e.get("id") == "after-junk"
                for e in events
            ),
            "server failed to resync to the valid frame after garbage",
        )

        # -- truncated frame, peer closes mid-frame --------------------
        frame = encode_frame(
            request_message(
                "trunc01", net_request(20100), deadline_s=args.deadline
            )
        )
        sock = raw_socket()
        sock.sendall(frame[: len(frame) // 2])
        sock.close()  # server reads EOF mid-frame; must just drop it

        # -- half-written frame, completed within the window -----------
        frame = encode_frame(
            request_message(
                "half01", net_request(20200), deadline_s=args.deadline
            )
        )
        sock = raw_socket(timeout_s=args.deadline + 10.0)
        sock.sendall(frame[:10])
        time.sleep(0.3)  # inside frame_timeout_s=1.0
        sock.sendall(frame[10:])
        events = _recv_events(sock, timeout_s=args.deadline + 10.0)
        sock.close()
        half_responses = [
            e
            for e in events
            if isinstance(e, dict)
            and e.get("type") == "response"
            and e.get("id") == "half01"
        ]
        check(
            len(half_responses) == 1
            and half_responses[0]["response"].get("status") == "ok",
            "half-written-then-completed frame was not served: "
            f"{events!r}",
        )

        # -- oversized frame: fatal structured error, not a crash ------
        sock = raw_socket()
        sock.sendall(
            struct.pack(
                ">2sBBI", b"MC", 1, 0, DEFAULT_MAX_FRAME_BYTES + 1
            )
        )
        events = _recv_events(sock, timeout_s=5.0)
        sock.close()
        check(
            any(
                isinstance(e, dict)
                and e.get("type") == "error"
                and e.get("code") == "oversized-frame"
                for e in events
            ),
            f"oversized frame drew no oversized-frame error: {events!r}",
        )

        # -- slow loris: start a frame, stall, get evicted -------------
        sock = raw_socket(timeout_s=net_config.frame_timeout_s + 5.0)
        sock.sendall(frame[:12])  # header + 4 payload bytes, then stall
        events = _recv_events(
            sock, timeout_s=net_config.frame_timeout_s + 5.0
        )
        sock.close()
        check(
            any(
                isinstance(e, dict)
                and e.get("type") == "error"
                and e.get("code") == "slow-client"
                for e in events
            ),
            f"slow-loris connection was not evicted: {events!r}",
        )

        for thread in threads:
            thread.join(timeout=120.0)
            check(not thread.is_alive(), "a load client thread hung")

        # -- the server survived all of it -----------------------------
        check(probe.ping(), "health ping failed after the campaign")
    finally:
        host.stop(drain_deadline_s=10.0)

    delta = STATS.delta_since(stats_before)
    merged = host.router.merged_metrics().snapshot()

    # -- zero lost, zero double-answered requests ----------------------
    expected_load = args.clients * per_client
    responses = [item for results in load.values() for item in results]
    check(
        len(responses) == expected_load,
        f"load lost requests: {len(responses)}/{expected_load}",
    )
    kills = 0
    for kill, response in responses:
        check(
            response is not None and bool(response.status),
            "a load request has no terminal response",
        )
        if response is None:
            continue
        check(
            response.ok,
            f"load request not served: {response.status} "
            f"({(response.detail or '').splitlines()[0] if response.detail else ''})",
        )
        if kill:
            kills += 1
            check(
                response.attempts >= 2,
                f"worker-kill request resolved in {response.attempts} "
                "attempt(s) — fault not armed?",
            )
    duplicates = sum(c.duplicate_responses for c in clients)
    duplicates += probe.duplicate_responses
    check(
        duplicates == 0,
        f"{duplicates} double-answered request frame(s) observed",
    )

    # -- exact accounting: admitted == terminal, sent + orphaned -------
    admitted = delta.get("net.requests", 0)
    sent = delta.get("net.responses-sent", 0)
    orphaned = delta.get("net.responses-orphaned", 0)
    check(admitted > 0, "no requests were admitted over the wire")
    check(
        admitted == sent + orphaned,
        f"wire ledger leak: {admitted} admitted != "
        f"{sent} sent + {orphaned} orphaned",
    )
    requests_in = merged["service_requests_total"]["series"][0]["value"]
    responses_out = sum(
        row["value"]
        for row in merged["service_responses_total"]["series"]
    )
    check(
        requests_in == admitted,
        f"service_requests_total={requests_in} != admitted {admitted}",
    )
    check(
        responses_out == admitted,
        "requests in != sum of terminal statuses: "
        f"{admitted} vs {responses_out}",
    )
    routed = sum(
        row["value"] for row in merged["router_requests_total"]["series"]
    )
    check(
        routed == admitted,
        f"router_requests_total={routed} != admitted {admitted}",
    )
    if expected_load >= args.shards * 4:
        for row in merged["router_requests_total"]["series"]:
            check(
                row["value"] > 0,
                f"shard {row['labels'].get('shard')} never saw a "
                "request — least-depth routing is not spreading load",
            )
    for gauge in ("service_shard_queue_depth", "service_shard_in_flight"):
        for row in merged[gauge]["series"]:
            check(
                row["value"] == 0,
                f"{gauge}{{shard={row['labels'].get('shard')}}}="
                f"{row['value']} after drain, expected 0",
            )
    check(
        delta.get("net.slow-loris-evictions", 0) >= 1,
        "slow-loris eviction was not counted",
    )
    check(
        delta.get("net.frame-errors", 0) >= 2,
        f"net.frame-errors={delta.get('net.frame-errors')} < 2 "
        "(garbage + oversized)",
    )

    # -- structured SIGTERM drain of a real subprocess -----------------
    _sigterm_drain_scenario(args, check)

    if args.metrics_json:
        import json

        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=1)
            fh.write("\n")

    print(
        f"net-chaos: {expected_load} requests over TCP "
        f"({args.clients} clients, {args.shards} shards, "
        f"{kills} worker kills) + 2 disconnects, garbage, truncated, "
        f"half-written, oversized, slow-loris: "
        f"{admitted} admitted, {sent} answered, {orphaned} orphaned, "
        f"{duplicates} duplicates"
    )
    if args.print_stats or failures:
        print(STATS.render_text(delta), file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"net-chaos: FAIL: {failure}", file=sys.stderr)
        return 1
    print("net-chaos: all invariants hold")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description="chaos/acceptance harness for the compile service",
    )
    parser.add_argument("--count", type=int, default=50)
    parser.add_argument(
        "--kill-every",
        type=int,
        default=10,
        metavar="K",
        help="hard-kill the worker on the first attempt of every K-th "
        "request (0 = none)",
    )
    parser.add_argument(
        "--hang-every",
        type=int,
        default=0,
        metavar="M",
        help="hang the worker past the deadline on the first attempt "
        "of every M-th request (0 = none)",
    )
    parser.add_argument(
        "--poison",
        type=int,
        default=2,
        metavar="P",
        help="number of poison inputs (fail on every attempt)",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--deadline", type=float, default=5.0, metavar="SECONDS"
    )
    parser.add_argument(
        "--hedge-delay", type=float, default=None, metavar="SECONDS"
    )
    parser.add_argument(
        "--quarantine-dir", default="service-quarantine", metavar="DIR"
    )
    parser.add_argument(
        "--print-stats", action="store_true", dest="print_stats"
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        dest="metrics_json",
        metavar="FILE",
        help="write the service metrics snapshot (per-outcome latency "
        "histograms included) as JSON",
    )
    parser.add_argument(
        "--storage",
        action="store_true",
        help="run the storage campaign instead: fault-armed shared "
        "disk cache, mid-campaign service restart, durable "
        "quarantine; asserts zero corrupt payloads served",
    )
    parser.add_argument(
        "--cache-dir",
        default="storage-chaos-cache",
        dest="cache_dir",
        metavar="DIR",
        help="shared disk cache directory for --storage",
    )
    parser.add_argument(
        "--state-dir",
        default="storage-chaos-state",
        dest="state_dir",
        metavar="DIR",
        help="durable service state directory for --storage",
    )
    parser.add_argument(
        "--durable",
        action="store_true",
        help="fsync cache writes before rename (-fcache-durable)",
    )
    parser.add_argument(
        "--net",
        action="store_true",
        help="run the network campaign instead: sharded TCP server "
        "under hostile clients (disconnects, garbage, truncated/"
        "half-written/oversized frames, slow loris, worker kills); "
        "asserts zero lost and zero double-answered requests plus "
        "a clean SIGTERM drain of a real serve subprocess",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker-pool shards behind the TCP server (--net)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        help="concurrent well-behaved load clients (--net)",
    )
    args = parser.parse_args(argv)
    if args.net:
        return run_net_chaos(args)
    if args.storage:
        return run_storage_chaos(args)
    return run_chaos(args)


if __name__ == "__main__":
    sys.exit(main())
