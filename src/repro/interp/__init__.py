"""IR interpreter: executes :class:`repro.ir.Module` programs.

Stands in for the CPU so the reproduction can *run* compiled programs and
check the semantic-equivalence claims (original loop vs shadow-AST
transformed vs OpenMPIRBuilder-generated).  Key properties:

* flat byte-addressable memory with C layout (LP64),
* a *stepping* execution engine: one instruction per :meth:`step` call,
  which lets the simulated OpenMP runtime interleave team threads
  deterministically (round-robin) and implement real barriers,
* native hooks for the ``__kmpc_*`` runtime (:mod:`repro.runtime`) and a
  small libc subset (printf, abort, malloc, ...).
"""

from repro.interp.memory import Memory, MemoryError_, MemoryLimitExceeded
from repro.interp.interpreter import (
    DeadlockError,
    ExecutionContext,
    ExecutionTimeout,
    Interpreter,
    InterpreterError,
    SchedulerSnapshot,
    ThreadSnapshot,
    Trap,
    scheduler_snapshot,
)

__all__ = [
    "DeadlockError",
    "ExecutionContext",
    "ExecutionTimeout",
    "Interpreter",
    "InterpreterError",
    "Memory",
    "MemoryError_",
    "MemoryLimitExceeded",
    "SchedulerSnapshot",
    "ThreadSnapshot",
    "Trap",
    "scheduler_snapshot",
]
